"""Behavioural analysis with the Slips-style IPS on Stratosphere IoT.

Runs the evidence-accumulation IPS over the Stratosphere emulation and
prints what a Slips operator would see: per-profile evidence, alerts,
and the behavioural letter strings of the flagged conversations.

Usage::

    python examples/slips_behavioural_analysis.py [--scale 0.15]
"""

from __future__ import annotations

import argparse
from collections import defaultdict

import numpy as np

from repro import SlipsIDS, generate_dataset
from repro.core.metrics import compute_metrics
from repro.ids.slips.markov import encode_letters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Generating the Stratosphere IoT emulation ...")
    dataset = generate_dataset("Stratosphere", seed=args.seed,
                               scale=args.scale)
    flows = dataset.flows()
    labels = np.array([f.label for f in flows])
    print(f"  {len(flows)} flows ({labels.mean():.1%} attack)")

    ids = SlipsIDS()
    print(f"\nRunning Slips ({ids.describe()}, window "
          f"{ids.window_width:.0f}s, threshold {ids.alert_threshold}) ...")
    scores = ids.anomaly_scores(flows, np.zeros((len(flows), 1)))

    print(f"\nEvidence collected ({len(ids.last_evidence)} items):")
    by_kind = defaultdict(list)
    for evidence in ids.last_evidence:
        by_kind[evidence.kind.value].append(evidence)
    for kind, items in sorted(by_kind.items()):
        total = sum(e.weight for e in items)
        print(f"  {kind:28s} x{len(items):3d}  total weight {total:6.2f}")
        print(f"      e.g. {items[0].description}")

    print(f"\nAlerts raised ({len(ids.last_alerts)}):")
    for profile_ip, window_index, total in ids.last_alerts:
        print(f"  profile {profile_ip:15s} window {window_index:3d} "
              f"accumulated threat {total:.2f}")

    # Show the behavioural letters of one flagged C2 conversation.
    flagged = [f for f, s in zip(flows, scores) if s > 0 and f.label]
    by_conversation = defaultdict(list)
    for flow in flagged:
        by_conversation[(flow.src_ip, flow.dst_ip, flow.dst_port)].append(flow)
    beacon_groups = [g for g in by_conversation.values() if len(g) >= 6]
    if beacon_groups:
        group = max(beacon_groups, key=len)
        letters = encode_letters(group)
        f0 = group[0]
        print(f"\nBehavioural letters of {f0.src_ip} -> "
              f"{f0.dst_ip}:{f0.dst_port} ({len(group)} flows):")
        print(f"  {letters}")
        print("  (uppercase = strongly periodic; a run of periodic small "
              "flows is the C2 beaconing signature)")

    metrics = compute_metrics(labels, (scores > 0).astype(int))
    print(f"\nFlow-level metrics: acc={metrics.accuracy:.4f} "
          f"prec={metrics.precision:.4f} rec={metrics.recall:.4f} "
          f"f1={metrics.f1:.4f}")
    print("Stratosphere is Slips' best dataset in the paper's Table IV — "
          "these behaviours are what its modules were built around.")


if __name__ == "__main__":
    main()
