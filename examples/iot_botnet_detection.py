"""IoT botnet detection: watch Kitsune catch a Mirai infection live.

Generates the Mirai-capture emulation, trains Kitsune on the clean
benign prefix (as the paper's methodology prescribes), then streams the
infection and prints an anomaly-score timeline around the outbreak —
the scenario the Kitsune paper was built for.

Also demonstrates pcap persistence: the capture is written to and
re-read from a real libpcap file on the way in.

Usage::

    python examples/iot_botnet_detection.py [--scale 0.15]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import Kitsune, generate_dataset
from repro.net.pcap import read_pcap, write_pcap


def score_timeline(timestamps, scores, labels, buckets: int = 24) -> None:
    """Print a coarse text timeline of median anomaly score per bucket."""
    t0, t1 = timestamps[0], timestamps[-1]
    edges = np.linspace(t0, t1, buckets + 1)
    print(f"{'window':>18s}  {'median score':>12s}  {'attack%':>8s}  ")
    for i in range(buckets):
        mask = (timestamps >= edges[i]) & (timestamps < edges[i + 1])
        if not mask.any():
            continue
        med = float(np.median(scores[mask]))
        attack_pct = 100.0 * float(np.mean(labels[mask]))
        bar = "#" * min(int(med * 40), 60)
        print(f"[{edges[i]:7.0f}s,{edges[i+1]:7.0f}s)  {med:12.4f}  "
              f"{attack_pct:7.1f}%  {bar}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Generating the Mirai capture emulation ...")
    dataset = generate_dataset("Mirai", seed=args.seed, scale=args.scale)
    print(f"  {len(dataset)} packets, attack prevalence "
          f"{dataset.attack_prevalence:.1%}")

    # Round-trip through a real pcap file, like consuming the public trace.
    with tempfile.TemporaryDirectory() as tmp:
        pcap_path = Path(tmp) / "mirai.pcap"
        dataset.to_pcap(pcap_path)
        replayed = read_pcap(pcap_path)
        print(f"  wrote and re-read {len(replayed)} packets via "
              f"{pcap_path.name} (labels do not survive pcap — we keep "
              f"the originals for ground truth)")

    train = dataset.benign_prefix()
    test = dataset.packets[len(train):]
    print(f"\nTraining Kitsune on the benign prefix "
          f"({len(train)} packets) ...")
    fm = max(100, len(train) // 10)
    ids = Kitsune(fm_grace=fm, ad_grace=max(100, len(train) - fm),
                  seed=args.seed)
    ids.fit(train)

    print(f"Scoring the remaining {len(test)} packets ...\n")
    scores = ids.anomaly_scores(test)
    timestamps = np.array([p.timestamp for p in test])
    labels = np.array([p.label for p in test])
    score_timeline(timestamps, scores, labels)

    benign_scores = scores[labels == 0]
    attack_scores = scores[labels == 1]
    if benign_scores.size:
        print(f"\nmedian benign score : {np.median(benign_scores):.4f}")
    print(f"median attack score : {np.median(attack_scores):.4f}")
    print("\nThe score step-change tracks the scan -> infection -> flood "
          "phases: this is the plug-and-play behaviour that earns Kitsune "
          "its strong IoT rows in the paper's Table IV.")


if __name__ == "__main__":
    main()
