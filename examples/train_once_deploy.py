"""Train once, deploy later: persisting a trained Kitsune detector.

Production IDSs are trained once and executed for weeks across process
restarts. This example trains KitNET on benign IoT traffic, saves it to
a single ``.npz``, restores it in a "new process", and shows that the
restored detector makes the same calls — then exports the evaluation as
JSON/markdown for CI archival.

Usage::

    python examples/train_once_deploy.py [--scale 0.1]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import generate_dataset
from repro.core.export import results_to_json, results_to_markdown
from repro.core.pipeline import IDSAnalysisPipeline
from repro.features.netstat import NetStat
from repro.ids.kitsune.kitnet import KitNET
from repro.ids.persistence import load_kitnet, save_kitnet
from repro.utils.rng import SeededRNG


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = generate_dataset("BoT-IoT", seed=args.seed, scale=args.scale)
    benign = dataset.benign_prefix()
    attack_tail = [p for p in dataset.packets if p.label][:1500]
    print(f"BoT-IoT emulation: {len(benign)} benign training packets, "
          f"{len(attack_tail)} attack packets held for the demo")

    # --- day 0: train --------------------------------------------------
    netstat = NetStat()
    features = [netstat.update(p) for p in benign]
    fm = max(50, len(features) // 10)
    kitnet = KitNET(netstat.feature_count, fm_grace=fm,
                    ad_grace=max(50, len(features) - fm),
                    rng=SeededRNG(args.seed, "deploy"))
    for row in features:
        kitnet.process(row)
    print(f"trained KitNET: {len(kitnet.ensemble)} ensemble autoencoders")

    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "kitnet-botiot.npz"
        save_kitnet(kitnet, model_path)
        print(f"saved model: {model_path.name} "
              f"({model_path.stat().st_size / 1024:.1f} KiB)")

        # --- day N: restore in a fresh process and execute -------------
        # The restored detector is execute-only, so whole micro-batches
        # go through the packed batched engine (bit-identical to the
        # per-packet loop, dozens of times faster).
        restored = load_kitnet(model_path)
        fresh_netstat = NetStat()  # stream state rebuilds online
        scores = restored.process_batch(
            fresh_netstat.extract_all(attack_tail)
        )
        # Skip the stream warm-up packets when summarising.
        steady = scores[200:]
        print(f"restored detector scored the flood at median "
              f"{np.median(steady):.3f} (training-time benign scores "
              f"sit well below 1.0)")

    # --- export an evaluation for CI archival ---------------------------
    pipeline = IDSAnalysisPipeline(
        seed=args.seed, scale=max(args.scale, 0.08),
        ids_names=("Slips",), dataset_names=("Stratosphere",),
    )
    pipeline.run_all()
    print("\nJSON export (truncated):")
    print(results_to_json(pipeline)[:400] + " ...")
    print("\nMarkdown export:")
    print(results_to_markdown(pipeline))


if __name__ == "__main__":
    main()
