"""Plugging a custom IDS into the evaluation pipeline.

The pipeline's point is standardised comparison, so adding a fifth
system should be (and is) a ~30-line exercise: subclass
:class:`repro.ids.base.PacketIDS`, implement ``fit`` and
``anomaly_scores``, and reuse the shared adaptation + threshold +
metrics machinery.

The custom system here is a deliberately simple per-source rate
detector — it embarrasses itself on everything except floods, which is
exactly the kind of insight the paper's cross-dataset methodology is
designed to surface.

Usage::

    python examples/evaluate_custom_ids.py [--scale 0.1]
"""

from __future__ import annotations

import argparse
from typing import Sequence

import numpy as np

from repro.core.metrics import compute_metrics
from repro.core.preprocessing import prepare_packet_experiment
from repro.core.thresholds import standard_threshold
from repro.datasets import USED_DATASETS, generate_dataset
from repro.ids.base import PacketIDS
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG
from repro.utils.tables import TextTable


class RateThresholdIDS(PacketIDS):
    """Scores each packet by its source's recent packet rate.

    Keeps an exponentially-decaying packet counter per source IP; the
    anomaly score is that counter normalised by the maximum seen during
    training. No ML, one parameter — a useful floor for any comparison.
    """

    name = "RateThreshold"
    supervised = False

    def __init__(self, *, half_life: float = 1.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self._counters: dict[str, tuple[float, float]] = {}
        self._train_max = 1e-9

    def _bump(self, packet: Packet) -> float:
        source = packet.src_ip or "?"
        count, last = self._counters.get(source, (0.0, packet.timestamp))
        dt = max(packet.timestamp - last, 0.0)
        count = count * 0.5 ** (dt / self.half_life) + 1.0
        self._counters[source] = (count, packet.timestamp)
        return count

    def fit(self, packets: Sequence[Packet]) -> None:
        for packet in packets:
            self._train_max = max(self._train_max, self._bump(packet))

    def anomaly_scores(self, packets: Sequence[Packet]) -> np.ndarray:
        return np.array([self._bump(p) / self._train_max for p in packets])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    table = TextTable(["Dataset", "Acc.", "Prec.", "Rec.", "F1"])
    f1_by_dataset = {}
    for name in USED_DATASETS:
        dataset = generate_dataset(name, seed=args.seed, scale=args.scale)
        data = prepare_packet_experiment(
            dataset, SeededRNG(args.seed, f"custom/{name}"),
            max_test_packets=6000, max_train_packets=4000,
        )
        ids = RateThresholdIDS()
        ids.fit(data.train_packets)
        scores = ids.anomaly_scores(data.test_packets)
        threshold = standard_threshold(data.y_true, scores,
                                       strategy="fpr-budget", max_fpr=0.05)
        metrics = compute_metrics(data.y_true, scores >= threshold)
        f1_by_dataset[name] = metrics.f1
        table.add_row([name, *metrics.row()])

    print("IDS: RateThreshold (custom plug-in)")
    print(table.render())
    best = max(f1_by_dataset, key=lambda k: f1_by_dataset[k])
    print(f"\nBest dataset: {best} — rate counting catches floods, and "
          "nothing else. Cross-dataset evaluation makes that one-trick "
          "profile impossible to hide, which is the methodology's point.")


if __name__ == "__main__":
    main()
