"""Quickstart: reproduce a slice of the paper's Table IV in a minute.

Runs the full IDS analysis pipeline for two IDSs on two datasets at a
small scale and prints the paper-style results table plus the
qualitative shape checks.

Usage::

    python examples/quickstart.py [--scale 0.15] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import IDSAnalysisPipeline, render_table4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15,
                        help="dataset generation scale (1.0 = bench size)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    pipeline = IDSAnalysisPipeline(
        seed=args.seed,
        scale=args.scale,
        ids_names=("DNN", "Slips"),
        dataset_names=("BoT-IoT", "Stratosphere", "Mirai"),
    )
    print(f"Running {len(pipeline.ids_names) * len(pipeline.dataset_names)} "
          f"experiment cells at scale {args.scale} ...\n")
    pipeline.run_all(verbose=True)

    print("\n" + render_table4(pipeline))
    print("\nInterpretation: the DNN's recall of ~1.0 with accuracy equal "
          "to the attack prevalence is the paper's all-positive collapse; "
          "Slips only scores on Stratosphere, its home-turf behaviours.")


if __name__ == "__main__":
    main()
