"""Dataset explorer: the compositions behind Tables II and IV.

Generates all five evaluated datasets and prints the statistics the
paper's analysis keeps returning to — protocol mix, attack families,
class balance, benign-profile narrowness — plus each dataset's provided
flow-feature schema (the preprocessing-impact variable).

Usage::

    python examples/dataset_explorer.py [--scale 0.1]
"""

from __future__ import annotations

import argparse
from collections import Counter

import numpy as np

from repro.datasets import USED_DATASETS, generate_dataset
from repro.utils.tables import TextTable


def benign_narrowness(dataset) -> float:
    """Coefficient of variation of benign packet sizes — low means a
    narrow, learnable benign profile (the IoT datasets)."""
    sizes = [p.wire_len for p in dataset.packets if not p.label]
    if len(sizes) < 2:
        return float("nan")
    return float(np.std(sizes) / np.mean(sizes))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    table = TextTable([
        "Dataset", "Packets", "Flows", "Attack%", "Protocols",
        "Benign size CV", "Features provided",
    ])
    details = []
    for name in USED_DATASETS:
        dataset = generate_dataset(name, seed=args.seed, scale=args.scale)
        flows = dataset.flows()
        protocols = Counter(p.protocol_name for p in dataset.packets)
        proto_mix = "/".join(
            f"{proto}:{count * 100 // len(dataset)}%"
            for proto, count in protocols.most_common(3)
        )
        table.add_row([
            name,
            len(dataset),
            len(flows),
            f"{dataset.attack_prevalence:.1%}",
            proto_mix,
            f"{benign_narrowness(dataset):.2f}",
            len(dataset.provided_flow_features),
        ])
        families = Counter()
        for packet in dataset.packets:
            if packet.label:
                families[packet.attack_type] += 1
        details.append((name, families))

    print(table.render())
    print("\nAttack family breakdown (packets):")
    for name, families in details:
        print(f"  {name}:")
        for family, count in families.most_common():
            print(f"    {family:22s} {count:7d}")

    print("\nReading guide: the IoT datasets pair a low benign-size CV "
          "(narrow profile) with volumetric attacks — easy mode for "
          "anomaly IDSs. The enterprise sets pair a wide benign profile "
          "with content-style attacks — the regime where Table IV's "
          "scores collapse.")


if __name__ == "__main__":
    main()
