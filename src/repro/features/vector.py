"""Vectorized AfterImage: a structure-of-arrays damped-statistics engine.

:class:`VectorIncStatDB` replaces the per-stream ``IncStat`` object
graph of :class:`repro.features.afterimage.IncStatDB` with three flat
NumPy tables::

    state: (capacity, 3, D) float64   # [weight | linear_sum | squared_sum]
    last:  (capacity,)      float64   # shared last-update time per stream
    seq:   (capacity,)      int64     # insertion sequence (prune ties)

where ``D`` is the number of decay factors. One row holds *all* decay
horizons of a stream, so decaying a stream is a single vectorized
multiply instead of ``D`` attribute-walking Python calls. Covariance
accumulators reuse the same row shape (``weight | sum_residual | —``),
which lets one packet's whole working set live in eight rows:
``[mac, ip, ch_ab, sk_ab, cov_ch, cov_sk, ch_ba, sk_ba]``.

Keys are interned once — :class:`repro.features.netstat.NetStat` caches
the interned row ids per (MAC, IPs, ports) tuple, so the steady-state
packet path performs no f-string key construction and no string-dict
lookups. Pruning uses amortized partial selection (``np.argpartition``)
instead of a full sort, with insertion-order tie-breaking identical to
the reference implementation's ``heapq.nsmallest``.

**Parity contract.** Every float operation runs in the same order as
the scalar reference (:class:`~repro.features.incstat.IncStat` /
:class:`~repro.features.incstat.IncStatCov`), so outputs are
bit-for-bit identical — enforced by ``tests/test_features_parity.py``.
Two interchangeable kernels drive the arrays:

* ``numpy`` — portable row-wise ufunc kernel;
* ``native`` — a small C kernel (see :mod:`repro.features._native`)
  compiled on demand, ~10x faster because it removes per-call ufunc
  dispatch overhead. Falls back to ``numpy`` when no compiler exists.
* ``native-mt`` — the same C kernel driven batch-at-a-time with the
  four aggregation groups (MAC, IP, channel, socket) dispatched to a
  thread pool. ctypes releases the GIL around each call and the groups
  touch disjoint rows and output columns, so the result stays
  bit-identical to the single-thread kernel.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache

import numpy as np

from repro.features import _native
from repro.utils.validation import check_positive

_POW = math.pow
_HYPOT = math.hypot

#: Batches smaller than this skip the thread-pool dispatch — the 4-way
#: submit/sync overhead would dominate the kernel time.
_MT_MIN_BATCH = 32

_mt_pool_instance: ThreadPoolExecutor | None = None


def mt_thread_count() -> int:
    """Workers in the shared group-parallel pool (one per group)."""
    return _native.MT_GROUPS


def _mt_pool() -> ThreadPoolExecutor:
    """Process-wide pool for group-parallel kernel dispatch.

    Shared across all ``native-mt`` databases: the kernel calls are
    pure compute on caller-owned buffers, so a common pool just bounds
    total thread count.
    """
    global _mt_pool_instance
    if _mt_pool_instance is None:
        _mt_pool_instance = ThreadPoolExecutor(
            max_workers=mt_thread_count(),
            thread_name_prefix="afterimage-mt",
        )
    return _mt_pool_instance


#: Override for :func:`measured_mt_speedup`: ``off``/``0``/``false``
#: disables the probe (no measurement signal), a float fakes its result
#: (deterministic tests, pre-measured hosts).
MT_PROBE_ENV = "REPRO_MT_PROBE"


@lru_cache(maxsize=1)
def measured_mt_speedup() -> float | None:
    """Measured ``native-mt`` / ``native`` batch-kernel speedup here.

    A core count says whether group-parallel dispatch *can* win, not
    whether it *does* — a 0.93x result on a loaded 2-core host must
    demote the MT backend in auto ranking (see
    ``repro.backends.registry``). Returns ``None`` when the native
    kernel is unavailable or the probe is disabled; cached for the
    process lifetime (~tens of milliseconds once).
    """
    override = os.environ.get(MT_PROBE_ENV, "").strip().lower()
    if override in ("off", "0", "false", "no"):
        return None
    if override:
        try:
            return float(override)
        except ValueError:
            pass
    if _native.load_kernel() is None:
        return None
    return _probe_mt_speedup()


def _probe_mt_speedup(n: int = 1024, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock ratio on a synthetic batch."""
    import time

    def best(kernel: str) -> float:
        db = VectorIncStatDB((5.0, 3.0, 1.0, 0.1, 0.01), kernel=kernel)
        entries = [
            db.packet_entry(
                f"02:00:00:00:00:{i:02x}", f"10.0.{i}.1", "10.0.0.2",
                1000 + i, 80, 0.0,
            )
            for i in range(64)
        ]
        batch = [entries[i % 64] for i in range(n)]
        values = np.ones(n)
        stamps = np.arange(n) * 1e-3
        out = np.empty((n, db.feature_count))
        elapsed = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            db.update_packet_batch(batch, values, stamps, out)
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    return best("native") / best("native-mt")


class _PacketEntry:
    """Interned row ids for one (mac, src, dst, ports) packet shape."""

    __slots__ = ("epoch", "rows", "rows_arr", "rows_ptr")

    def __init__(self, epoch: int, rows: tuple[int, ...]) -> None:
        self.epoch = epoch
        self.rows = rows
        self.rows_arr = np.array(rows, dtype=np.int64)
        # ctypes pointer materialization costs ~2x the array build, and
        # batch callers never touch it — filled on first per-packet use.
        self.rows_ptr: int | None = None


class VectorIncStatDB:
    """Structure-of-arrays drop-in for :class:`IncStatDB`.

    Parameters
    ----------
    decays:
        Decay factors; one table column block per factor.
    max_streams:
        Soft bound on tracked keys; the stalest half is evicted past it
        (identical eviction set to the scalar reference).
    kernel:
        ``"auto"`` (native when available), ``"numpy"``, ``"native"``,
        or ``"native-mt"`` (the latter two raise if the native kernel
        cannot be built).
    """

    def __init__(
        self,
        decays: tuple[float, ...] = (5.0, 3.0, 1.0, 0.1, 0.01),
        *,
        max_streams: int = 100_000,
        kernel: str = "auto",
        capacity: int = 1024,
    ) -> None:
        if not decays:
            raise ValueError("at least one decay factor is required")
        for decay in decays:
            check_positive("decay", decay)
        if kernel not in ("auto", "numpy", "native", "native-mt"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.decays = tuple(float(d) for d in decays)
        self.max_streams = max_streams
        self.kernel = kernel
        self._d = len(self.decays)
        self._capacity = max(int(capacity), 8)
        self._size = 0
        self._state = np.zeros((self._capacity, 3, self._d))
        self._last = np.zeros(self._capacity)
        self._seq = np.zeros(self._capacity, dtype=np.int64)
        self._next_seq = 0
        self._keys: dict[str, int] = {}
        self._cov_keys: dict[str, int] = {}
        self._cov_pair: dict[str, str] = {}
        self._free: list[int] = []
        #: Bumped whenever rows are freed; cached entries re-resolve.
        self.epoch = 0
        self._build_layout()
        self._init_kernel()

    # -- construction helpers -------------------------------------------
    def _build_layout(self) -> None:
        d = self._d
        self._block_1d = tuple(
            tuple(slice(base + offset, base + 3 * d, 3) for offset in range(3))
            for base in (0, 3 * d)
        )
        self._block_2d = tuple(
            tuple(slice(base + offset, base + 7 * d, 7) for offset in range(7))
            for base in (6 * d, 13 * d)
        )
        # The channel and socket blocks are adjacent with the same
        # stride, so one strided slice covers the magnitude (and one
        # the radius) slots of *both* blocks.
        self._mag_slice = slice(6 * d + 3, 20 * d, 7)
        self._rad_slice = slice(6 * d + 4, 20 * d, 7)

    def _init_kernel(self) -> None:
        self._decays_arr = np.array(self.decays)
        self._decays_ptr = self._decays_arr.ctypes.data
        self._factor_buf = np.empty(self._d)
        self._aux = np.empty(8 * self._d)
        self._aux_ptr = self._aux.ctypes.data
        self._native_fn = None
        self._native_batch_fn = None
        if self.kernel != "numpy" and self._d <= _native.MAX_DECAYS:
            library = _native.load_kernel()
            if library is not None:
                self._native_fn = library.afterimage_update_packet
                self._native_batch_fn = library.afterimage_update_batch
        if self.kernel in ("native", "native-mt") and self._native_fn is None:
            raise RuntimeError(
                "native AfterImage kernel unavailable (no C compiler, "
                "REPRO_DISABLE_NATIVE set, or too many decay factors)"
            )
        self._refresh_pointers()

    def _refresh_pointers(self) -> None:
        self._state_ptr = self._state.ctypes.data
        self._last_ptr = self._last.ctypes.data

    @property
    def kernel_name(self) -> str:
        """Which kernel actually drives ``update_packet``."""
        if self._native_fn is None:
            return "numpy"
        return "native-mt" if self.kernel == "native-mt" else "native"

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def feature_count(self) -> int:
        return 20 * self._d

    # -- row allocation --------------------------------------------------
    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        state = np.zeros((new_capacity, 3, self._d))
        state[: self._size] = self._state[: self._size]
        last = np.zeros(new_capacity)
        last[: self._size] = self._last[: self._size]
        seq = np.zeros(new_capacity, dtype=np.int64)
        seq[: self._size] = self._seq[: self._size]
        self._state, self._last, self._seq = state, last, seq
        self._capacity = new_capacity
        self._refresh_pointers()

    def _alloc_row(self, exclude: set[int]) -> int:
        free = self._free
        if free:
            # Rows referenced by the packet being resolved must not be
            # recycled mid-packet — the scalar path keeps evicted
            # streams alive as locals until its update completes.
            skipped: list[int] = []
            row = -1
            while free:
                candidate = free.pop()
                if candidate in exclude:
                    skipped.append(candidate)
                else:
                    row = candidate
                    break
            free.extend(skipped)
            if row >= 0:
                # Recycled rows keep their evicted values until here
                # (freed-but-in-flight packets still read them); fresh
                # rows from growth are already zero.
                self._state[row] = 0.0
                self._last[row] = 0.0
                return row
        if self._size == self._capacity:
            self._grow()
        row = self._size
        self._size += 1
        return row

    def _intern(
        self,
        key,
        timestamp: float,
        pending: dict[int, float],
        exclude: set[int],
    ) -> int:
        row = self._keys.get(key)
        if row is not None:
            return row
        row = self._alloc_row(exclude)
        exclude.add(row)
        self._last[row] = timestamp
        self._seq[row] = self._next_seq
        self._next_seq += 1
        self._keys[key] = row
        if len(self._keys) > self.max_streams:
            self._prune(pending)
        return row

    def _intern_cov(self, key_ab, key_ba, exclude: set[int]) -> int:
        row = self._cov_keys.get(key_ab)
        if row is not None:
            return row
        row = self._alloc_row(exclude)
        exclude.add(row)
        # IncStatCov starts its clock at zero; _alloc_row hands out
        # zeroed rows, so no further initialisation is needed.
        self._cov_keys[key_ab] = row
        self._cov_pair[key_ab] = key_ba
        return row

    def _prune(self, pending: dict[int, float]) -> None:
        """Evict the stalest half of the streams by last update time.

        ``pending`` maps row → virtual timestamp for streams the current
        packet has conceptually already updated (the scalar path updates
        group by group, so a later group's creation sees earlier groups
        at the packet timestamp). Partial selection via
        ``np.argpartition`` with insertion-order tie-breaking reproduces
        ``heapq.nsmallest`` exactly without a full sort.
        """
        cutoff = len(self._keys) // 2
        if cutoff == 0:
            return
        keys_list = list(self._keys)
        rows_arr = np.fromiter(
            self._keys.values(), dtype=np.int64, count=len(keys_list)
        )
        saved = [(row, self._last[row]) for row in pending]
        for row, ts in pending.items():
            self._last[row] = ts
        stale_times = self._last[rows_arr]
        for row, value in saved:
            self._last[row] = value
        kth = cutoff - 1
        partition = np.argpartition(stale_times, kth)
        boundary = stale_times[partition[kth]]
        below = np.nonzero(stale_times < boundary)[0]
        ties = np.nonzero(stale_times == boundary)[0][: cutoff - below.size]
        evicted = {keys_list[i] for i in below.tolist()}
        evicted.update(keys_list[i] for i in ties.tolist())
        for key in evicted:
            self._free.append(self._keys.pop(key))
        dead_covs = [
            key_ab
            for key_ab, key_ba in self._cov_pair.items()
            if key_ab in evicted or key_ba in evicted
        ]
        for key_ab in dead_covs:
            self._free.append(self._cov_keys.pop(key_ab))
            del self._cov_pair[key_ab]
        self.epoch += 1

    # -- row-wise primitives (NumPy kernel + compat API) -----------------
    def _decay_factors(self, dt: float) -> np.ndarray:
        # math.pow matches the scalar reference bit-for-bit; NumPy's
        # exp2/power differ in the last ulp on some platforms. The
        # buffer is consumed immediately by the caller's multiply.
        factors = self._factor_buf
        factors[:] = [_POW(2.0, -decay * dt) for decay in self.decays]
        return factors

    def _insert_row(self, row: int, value: float, timestamp: float):
        stats = self._state[row]
        dt = timestamp - float(self._last[row])
        if dt > 0.0:
            stats *= self._decay_factors(dt)
            self._last[row] = timestamp
        weight = stats[0]
        weight += 1.0
        linear = stats[1]
        linear += value
        squared = stats[2]
        squared += value * value
        mean = linear / weight
        variance = np.abs(squared / weight - mean * mean)
        return weight, mean, variance, np.sqrt(variance)

    def _read_row(self, row: int):
        stats = self._state[row]
        weight = stats[0]
        # Stored weights are exactly 0 (never inserted => sums are 0
        # too) or >= 1, so dividing by max(weight, 1) reproduces the
        # scalar `weight > 0` guards bit-for-bit without branching.
        safe = np.maximum(weight, 1.0)
        mean = stats[1] / safe
        variance = np.abs(stats[2] / safe - mean * mean)
        return mean, variance, np.sqrt(variance)

    def _update_cov_row(
        self, row, value, timestamp, mean_a, std_a, std_b
    ):
        stats = self._state[row]
        last = float(self._last[row])
        dt = timestamp - last
        if dt > 0.0:
            accum = stats[:2]
            accum *= self._decay_factors(dt)
            self._last[row] = timestamp
        elif last == 0.0:
            self._last[row] = timestamp
        residual = (value - mean_a) * std_b
        sum_residual = stats[1]
        sum_residual += residual
        weight = stats[0]
        weight += 1.0
        covariance = sum_residual / weight
        denominator = std_a * std_b
        correlation = np.zeros(self._d)
        np.divide(covariance, denominator, out=correlation,
                  where=denominator > 0.0)
        np.minimum(correlation, 1.0, out=correlation)
        np.maximum(correlation, -1.0, out=correlation)
        return covariance, correlation

    # -- IncStatDB-compatible API ----------------------------------------
    def update_get_1d(
        self, key: str, value: float, timestamp: float
    ) -> list[float]:
        """Update stream ``key``; return ``3 * D`` floats like the
        scalar reference: (weight, mean, std) per decay."""
        row = self._intern(key, timestamp, {}, set())
        weight, mean, _, std = self._insert_row(row, value, timestamp)
        out = np.empty(3 * self._d)
        out[0::3] = weight
        out[1::3] = mean
        out[2::3] = std
        return out.tolist()

    def update_get_2d(
        self, key_ab: str, key_ba: str, value: float, timestamp: float
    ) -> list[float]:
        """Update the A→B channel direction; return ``7 * D`` floats."""
        exclude: set[int] = set()
        row_ab = self._intern(key_ab, timestamp, {}, exclude)
        row_ba = self._intern(key_ba, timestamp, {}, exclude)
        row_cov = self._intern_cov(key_ab, key_ba, exclude)
        weight, mean, variance, std = self._insert_row(
            row_ab, value, timestamp
        )
        mean_b, var_b, std_b = self._read_row(row_ba)
        covariance, correlation = self._update_cov_row(
            row_cov, value, timestamp, mean, std, std_b
        )
        out = np.empty(7 * self._d)
        out[0::7] = weight
        out[1::7] = mean
        out[2::7] = std
        out[3::7] = [
            _HYPOT(a, b) for a, b in zip(mean.tolist(), mean_b.tolist())
        ]
        out[4::7] = [
            _HYPOT(a, b) for a, b in zip(variance.tolist(), var_b.tolist())
        ]
        out[5::7] = covariance
        out[6::7] = correlation
        return out.tolist()

    # -- packet fast path ------------------------------------------------
    def packet_entry(
        self,
        src_mac: str,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        timestamp: float,
        pending: dict[int, float] | None = None,
        exclude: set[int] | None = None,
    ) -> _PacketEntry:
        """Intern one packet's eight rows (creating streams as needed).

        Keys are component tuples (``("ch", src, dst)``) rather than
        formatted strings — interning happens once per distinct packet
        shape, and the hot path never builds key strings at all.
        Creation order and prune timing replicate the scalar path:
        MAC, IP, channel a→b/b→a (+cov), socket a→b/b→a (+cov), with
        earlier groups' streams presented to the pruner at the packet
        timestamp (``pending``) because the scalar path has already
        updated them by the time a later group's creation prunes.

        Batch callers (:meth:`update_packet_batch` via ``NetStat``)
        pass shared ``pending``/``exclude`` spanning every in-flight
        packet: their row updates are deferred until the batched
        compute, so a mid-batch prune must both see those rows at
        their conceptual update times and keep them out of the free
        list until the batch completes.
        """
        mac_key = ("mac", src_mac, src_ip)
        ip_key = ("ip", src_ip)
        ch_ab = ("ch", src_ip, dst_ip)
        ch_ba = ("ch", dst_ip, src_ip)
        sk_ab = ("sk", src_ip, src_port, dst_ip, dst_port)
        sk_ba = ("sk", dst_ip, dst_port, src_ip, src_port)
        epoch_before = self.epoch
        if pending is None:
            pending = {}
        if exclude is None:
            exclude = set()
        r_mac = self._intern(mac_key, timestamp, pending, exclude)
        exclude.add(r_mac)
        pending[r_mac] = timestamp
        r_ip = self._intern(ip_key, timestamp, pending, exclude)
        exclude.add(r_ip)
        pending[r_ip] = timestamp
        r_ch_ab = self._intern(ch_ab, timestamp, pending, exclude)
        exclude.add(r_ch_ab)
        r_ch_ba = self._intern(ch_ba, timestamp, pending, exclude)
        exclude.add(r_ch_ba)
        r_cov_ch = self._intern_cov(ch_ab, ch_ba, exclude)
        exclude.add(r_cov_ch)
        pending[r_ch_ab] = timestamp
        r_sk_ab = self._intern(sk_ab, timestamp, pending, exclude)
        exclude.add(r_sk_ab)
        r_sk_ba = self._intern(sk_ba, timestamp, pending, exclude)
        exclude.add(r_sk_ba)
        r_cov_sk = self._intern_cov(sk_ab, sk_ba, exclude)
        rows = (r_mac, r_ip, r_ch_ab, r_sk_ab, r_cov_ch, r_cov_sk,
                r_ch_ba, r_sk_ba)
        epoch = self.epoch
        if epoch != epoch_before:
            # A prune ran mid-resolution; if it evicted any of this
            # packet's own rows the entry is single-use (the scalar
            # path would recreate those streams on the next packet).
            alive = (
                self._keys.get(mac_key) == r_mac
                and self._keys.get(ip_key) == r_ip
                and self._keys.get(ch_ab) == r_ch_ab
                and self._keys.get(ch_ba) == r_ch_ba
                and self._keys.get(sk_ab) == r_sk_ab
                and self._keys.get(sk_ba) == r_sk_ba
                and self._cov_keys.get(ch_ab) == r_cov_ch
                and self._cov_keys.get(sk_ab) == r_cov_sk
            )
            if not alive:
                epoch = -1
        return _PacketEntry(epoch, rows)

    def _new_row_unguarded(self, key, timestamp: float) -> int:
        if self._size == self._capacity:
            self._grow()
        row = self._size
        self._size += 1
        self._last[row] = timestamp
        self._seq[row] = self._next_seq
        self._next_seq += 1
        self._keys[key] = row
        return row

    def _new_cov_unguarded(self, key_ab, key_ba) -> int:
        if self._size == self._capacity:
            self._grow()
        row = self._size
        self._size += 1
        self._cov_keys[key_ab] = row
        self._cov_pair[key_ab] = key_ba
        return row

    def packet_entry_unguarded(
        self,
        src_mac: str,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        timestamp: float,
    ) -> _PacketEntry:
        """:meth:`packet_entry` minus the prune/recycle bookkeeping.

        Caller contract: the free list is empty AND interning up to
        eight new streams cannot push ``len(self._keys)`` past
        ``max_streams`` (so no prune can fire and ``_alloc_row`` would
        only ever extend the table). Under that contract the
        ``pending``/``exclude`` tracking is dead weight — this variant
        skips it while allocating rows in the exact same order, so the
        resulting entry is bit-identical to the guarded path. The
        columnar ingest resolver (``NetStat._resolve_flow_entries``)
        checks the contract before every batch and falls back to the
        guarded path otherwise.
        """
        keys = self._keys
        mac_key = ("mac", src_mac, src_ip)
        r_mac = keys.get(mac_key)
        if r_mac is None:
            r_mac = self._new_row_unguarded(mac_key, timestamp)
        ip_key = ("ip", src_ip)
        r_ip = keys.get(ip_key)
        if r_ip is None:
            r_ip = self._new_row_unguarded(ip_key, timestamp)
        ch_ab = ("ch", src_ip, dst_ip)
        r_ch_ab = keys.get(ch_ab)
        if r_ch_ab is None:
            r_ch_ab = self._new_row_unguarded(ch_ab, timestamp)
        ch_ba = ("ch", dst_ip, src_ip)
        r_ch_ba = keys.get(ch_ba)
        if r_ch_ba is None:
            r_ch_ba = self._new_row_unguarded(ch_ba, timestamp)
        r_cov_ch = self._cov_keys.get(ch_ab)
        if r_cov_ch is None:
            r_cov_ch = self._new_cov_unguarded(ch_ab, ch_ba)
        sk_ab = ("sk", src_ip, src_port, dst_ip, dst_port)
        r_sk_ab = keys.get(sk_ab)
        if r_sk_ab is None:
            r_sk_ab = self._new_row_unguarded(sk_ab, timestamp)
        sk_ba = ("sk", dst_ip, dst_port, src_ip, src_port)
        r_sk_ba = keys.get(sk_ba)
        if r_sk_ba is None:
            r_sk_ba = self._new_row_unguarded(sk_ba, timestamp)
        r_cov_sk = self._cov_keys.get(sk_ab)
        if r_cov_sk is None:
            r_cov_sk = self._new_cov_unguarded(sk_ab, sk_ba)
        return _PacketEntry(
            self.epoch,
            (r_mac, r_ip, r_ch_ab, r_sk_ab, r_cov_ch, r_cov_sk,
             r_ch_ba, r_sk_ba),
        )

    def update_packet(
        self,
        entry: _PacketEntry,
        value: float,
        timestamp: float,
        out: np.ndarray,
        out_ptr: int | None = None,
    ) -> None:
        """Fold one packet into all eight rows; write ``20 * D``
        features into ``out`` (a preallocated contiguous buffer).
        ``out_ptr`` lets batch callers skip the per-row pointer lookup
        when ``out`` is a view into a preallocated matrix."""
        if self._native_fn is not None:
            rows_ptr = entry.rows_ptr
            if rows_ptr is None:
                rows_ptr = entry.rows_ptr = entry.rows_arr.ctypes.data
            self._native_fn(
                self._state_ptr, self._last_ptr, rows_ptr,
                timestamp, value, self._decays_ptr, self._d,
                out.ctypes.data if out_ptr is None else out_ptr,
                self._aux_ptr,
            )
            self._fill_hypot(out, self._aux.tolist())
            return
        rows = entry.rows
        for index in (0, 1):
            weight, mean, _, std = self._insert_row(
                rows[index], value, timestamp
            )
            block = self._block_1d[index]
            out[block[0]] = weight
            out[block[1]] = mean
            out[block[2]] = std
        mean_a: list[float] = []
        var_a: list[float] = []
        mean_b: list[float] = []
        var_b: list[float] = []
        for group in (0, 1):
            weight, mean, variance, std = self._insert_row(
                rows[2 + group], value, timestamp
            )
            rev_mean, rev_var, rev_std = self._read_row(rows[6 + group])
            covariance, correlation = self._update_cov_row(
                rows[4 + group], value, timestamp, mean, std, rev_std
            )
            block = self._block_2d[group]
            out[block[0]] = weight
            out[block[1]] = mean
            out[block[2]] = std
            out[block[5]] = covariance
            out[block[6]] = correlation
            mean_a += mean.tolist()
            var_a += variance.tolist()
            mean_b += rev_mean.tolist()
            var_b += rev_var.tolist()
        self._fill_hypot(out, mean_a + var_a + mean_b + var_b)

    def update_packet_batch(
        self,
        entries: list[_PacketEntry],
        values: np.ndarray,
        timestamps: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Fold ``n`` packets into the tables in one batched pass.

        ``out`` must be a C-contiguous ``(n, 20 * D)`` matrix. Entries
        must have been resolved with a shared ``pending``/``exclude``
        (see :meth:`packet_entry`); compute happens here, after all
        interning, so the state pointers survive any mid-batch growth.

        The native kernel takes one call for the whole batch; under
        ``native-mt`` the four aggregation groups are dispatched to a
        worker pool (disjoint rows and output columns keep the result
        bit-identical). The NumPy kernel falls back to the per-packet
        loop, which is already parity-exact.
        """
        n = len(entries)
        if n == 0:
            return
        if self._native_batch_fn is None:
            base = out.ctypes.data
            stride = out.shape[1] * out.itemsize
            for i, entry in enumerate(entries):
                self.update_packet(
                    entry, float(values[i]), float(timestamps[i]),
                    out[i], base + i * stride,
                )
            return
        rows = np.empty((n, 8), dtype=np.int64)
        for i, entry in enumerate(entries):
            rows[i] = entry.rows_arr
        self._dispatch_native_batch(rows, values, timestamps, out)

    def update_packet_batch_indexed(
        self,
        flow_entries: list[_PacketEntry],
        inverse: np.ndarray,
        values: np.ndarray,
        timestamps: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Batched update with per-flow entries plus an inverse index.

        ``flow_entries[inverse[i]]`` is packet ``i``'s entry. Columnar
        ingest resolves one entry per unique flow; gathering the row-id
        matrix with one fancy index beats the per-packet Python loop in
        :meth:`update_packet_batch` whenever flows repeat within the
        batch. Results are identical to expanding the entries per
        packet and calling :meth:`update_packet_batch`.
        """
        n = len(inverse)
        if n == 0:
            return
        if self._native_batch_fn is None:
            self.update_packet_batch(
                [flow_entries[j] for j in inverse.tolist()],
                values, timestamps, out,
            )
            return
        k = len(flow_entries)
        flow_rows = np.empty((k, 8), dtype=np.int64)
        for j, entry in enumerate(flow_entries):
            flow_rows[j] = entry.rows_arr
        rows = flow_rows.take(inverse, axis=0)
        self._dispatch_native_batch(rows, values, timestamps, out)

    def _dispatch_native_batch(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        timestamps: np.ndarray,
        out: np.ndarray,
    ) -> None:
        n = rows.shape[0]
        d = self._d
        ts = np.ascontiguousarray(timestamps, dtype=np.float64)
        v = np.ascontiguousarray(values, dtype=np.float64)
        aux = np.empty((n, 8 * d))
        fn = self._native_batch_fn
        shared = (
            self._state_ptr, self._last_ptr, rows.ctypes.data,
            ts.ctypes.data, v.ctypes.data, n, self._decays_ptr, d,
        )
        if self.kernel == "native-mt" and n >= _MT_MIN_BATCH:
            pool = _mt_pool()
            futures = [
                pool.submit(
                    fn, *shared, group, out.ctypes.data, aux.ctypes.data
                )
                for group in range(_native.MT_GROUPS)
            ]
            for future in futures:
                future.result()
        else:
            fn(*shared, -1, out.ctypes.data, aux.ctypes.data)
        self._fill_hypot_batch(out, aux)

    def _fill_hypot_batch(self, out: np.ndarray, aux: np.ndarray) -> None:
        """Batched ``math.hypot`` post-pass (same contract as
        :meth:`_fill_hypot`, amortised over the whole batch)."""
        d2 = 2 * self._d
        n = out.shape[0]
        count = n * d2
        mag = np.fromiter(
            map(_HYPOT,
                aux[:, :d2].ravel().tolist(),
                aux[:, 2 * d2:3 * d2].ravel().tolist()),
            dtype=np.float64, count=count,
        )
        out[:, self._mag_slice] = mag.reshape(n, d2)
        rad = np.fromiter(
            map(_HYPOT,
                aux[:, d2:2 * d2].ravel().tolist(),
                aux[:, 3 * d2:].ravel().tolist()),
            dtype=np.float64, count=count,
        )
        out[:, self._rad_slice] = rad.reshape(n, d2)

    def _fill_hypot(self, out: np.ndarray, aux: list[float]) -> None:
        """Fill the magnitude/radius slots with ``math.hypot``.

        CPython's hypot is more accurate than libm's, so both kernels
        defer these two derived statistics to this shared Python pass —
        keeping them bit-identical to the scalar reference. ``aux`` is
        operand-major: ``[mean_a | var_a | mean_b | var_b]``, each of
        length ``2 * D`` (channel then socket block).
        """
        d2 = 2 * self._d
        out[self._mag_slice] = list(
            map(_HYPOT, aux[:d2], aux[2 * d2:3 * d2])
        )
        out[self._rad_slice] = list(
            map(_HYPOT, aux[d2:2 * d2], aux[3 * d2:])
        )

    # -- pickling --------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for transient in ("_native_fn", "_native_batch_fn",
                          "_decays_arr", "_decays_ptr",
                          "_factor_buf", "_aux", "_aux_ptr",
                          "_state_ptr", "_last_ptr"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_kernel()
