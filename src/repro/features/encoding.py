"""Encoding flow-feature dictionaries into model-ready matrices.

The paper's central practical finding is that adapting a dataset to an
IDS's expected input format is lossy: when a dataset does not provide a
feature an IDS was built around, evaluators zero-fill or drop it. The
:class:`FlowVectorEncoder` models that explicitly — it encodes against
a *canonical* feature order and a per-dataset ``available`` mask, so
experiments can quantify the "preprocessing impact" of Section V-5.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


class FlowVectorEncoder:
    """Encodes feature dicts to fixed-order numeric vectors.

    Parameters
    ----------
    feature_names:
        Canonical ordered feature names (the IDS's expected schema).
    available:
        Optional subset of names the source dataset actually provides.
        Missing names are zero-filled, reproducing the data-wrangling
        loss the paper describes.
    log_scale:
        Apply ``log1p`` to magnitude-like features (any name containing
        ``bytes``, ``packets``, ``rate``, ``load`` or ``_per_s``) to tame
        heavy tails before standardisation.
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        *,
        available: Iterable[str] | None = None,
        log_scale: bool = True,
    ) -> None:
        if not feature_names:
            raise ValueError("feature_names must not be empty")
        self.feature_names = tuple(feature_names)
        self.available = (
            set(self.feature_names) if available is None else set(available)
        )
        self.log_scale = log_scale
        self._log_mask = np.array(
            [self._is_magnitude(name) for name in self.feature_names], dtype=bool
        )

    @staticmethod
    def _is_magnitude(name: str) -> bool:
        lowered = name.lower()
        return any(
            token in lowered
            for token in ("bytes", "packets", "rate", "load", "_per_s", "pkts")
        )

    @property
    def dim(self) -> int:
        return len(self.feature_names)

    @property
    def missing_features(self) -> tuple[str, ...]:
        """Schema features the dataset does not provide (zero-filled)."""
        return tuple(n for n in self.feature_names if n not in self.available)

    def encode_one(self, features: Mapping[str, float]) -> np.ndarray:
        row = np.zeros(self.dim, dtype=np.float64)
        for i, name in enumerate(self.feature_names):
            if name in self.available:
                row[i] = float(features.get(name, 0.0))
        if self.log_scale:
            magnitudes = row[self._log_mask]
            row[self._log_mask] = np.sign(magnitudes) * np.log1p(np.abs(magnitudes))
        # Guard against inf/NaN from degenerate flows.
        return np.nan_to_num(row, nan=0.0, posinf=0.0, neginf=0.0)

    def encode(self, feature_dicts: Iterable[Mapping[str, float]]) -> np.ndarray:
        rows = [self.encode_one(d) for d in feature_dicts]
        if not rows:
            return np.empty((0, self.dim), dtype=np.float64)
        return np.vstack(rows)
