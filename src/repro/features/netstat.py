"""NetStat: the 100-dimensional Kitsune per-packet feature vector.

For every packet, four traffic aggregations are updated and queried
across five decay factors (Mirsky et al., NDSS 2018, Table I):

* **SrcMAC-IP** — bandwidth of packets from this MAC+IP pair
  (3 stats x 5 decays = 15 features);
* **SrcIP** — bandwidth from this source IP (15 features);
* **Channel** — src IP → dst IP conversation, with joint statistics
  against the reverse direction (7 stats x 5 decays = 35 features);
* **Socket** — src IP:port → dst IP:port conversation, joint as well
  (35 features).

Total: 100 features per packet, computed in O(1) amortised time.

Two engines implement the same semantics bit-for-bit:

* ``engine="scalar"`` — the reference path over per-stream
  :class:`~repro.features.incstat.IncStat` objects;
* ``engine="vector"`` (default) — the structure-of-arrays
  :class:`~repro.features.vector.VectorIncStatDB`, which interns the
  four stream keys per (MAC, IPs, ports) tuple once and then updates
  all decay factors of a packet's working set with vectorized kernels
  (``"vector-numpy"`` / ``"vector-native"`` / ``"vector-native-mt"``
  pin a specific kernel; see :mod:`repro.backends` for discovery).

See ``docs/PERFORMANCE.md`` for the layout and the parity contract.
"""

from __future__ import annotations

import numpy as np

from repro.features.afterimage import DEFAULT_DECAYS, IncStatDB
from repro.features.vector import VectorIncStatDB
from repro.net.columnar import ColumnBatch
from repro.net.packet import Packet

#: Dimensionality of the exported vector.
KITSUNE_FEATURE_COUNT = 100

#: ``engine`` argument → VectorIncStatDB kernel choice.
_VECTOR_ENGINES = {
    "vector": "auto",
    "vector-numpy": "numpy",
    "vector-native": "native",
    "vector-native-mt": "native-mt",
}

#: VectorIncStatDB kernel → registered backend name (see
#: :mod:`repro.backends`).
_KERNEL_BACKENDS = {
    "numpy": "vector-numpy",
    "native": "vector-native",
    "native-mt": "vector-native-mt",
}

#: Upper bound on cached (mac, ips, ports) → interned-rows entries.
_ENTRY_CACHE_LIMIT = 1 << 17


class NetStat:
    """Stateful per-packet feature extractor.

    Feed packets in timestamp order via :meth:`update`; each call
    returns the feature vector for that packet.
    """

    def __init__(
        self,
        decays: tuple[float, ...] = DEFAULT_DECAYS,
        *,
        max_streams: int = 100_000,
        engine: str = "vector",
    ) -> None:
        self.decays = tuple(decays)
        self.engine = engine
        if engine == "scalar":
            self._db = IncStatDB(self.decays, max_streams=max_streams)
        elif engine in _VECTOR_ENGINES:
            self._db = VectorIncStatDB(
                self.decays,
                max_streams=max_streams,
                kernel=_VECTOR_ENGINES[engine],
            )
        else:
            known = ", ".join(["scalar", *_VECTOR_ENGINES])
            raise ValueError(f"unknown engine {engine!r}; known: {known}")
        self._entries: dict[tuple, object] = {}
        self.packets_seen = 0

    @property
    def feature_count(self) -> int:
        """20 features per decay factor (3 + 3 + 7 + 7)."""
        return 20 * len(self.decays)

    @property
    def backend(self) -> str:
        """The resolved compute backend actually driving extraction.

        Unlike :attr:`engine` (which may be the ``"vector"`` auto
        alias), this reports the concrete registered backend name —
        e.g. ``"vector-native"`` after auto-selection found a compiler.
        """
        if self.engine == "scalar":
            return "scalar"
        return _KERNEL_BACKENDS[self._db.kernel_name]

    def update(self, packet: Packet) -> np.ndarray:
        """Update all aggregations with ``packet``; return its features.

        Non-IP packets (ARP) still exercise the MAC aggregation; missing
        fields contribute zero-keyed streams, mirroring how Kitsune's
        packet parser degrades on unusual frames.
        """
        if self.engine == "scalar":
            return self._update_scalar(packet)
        out = np.empty(self.feature_count)
        self._update_into(packet, out)
        return out

    def _update_scalar(self, packet: Packet) -> np.ndarray:
        self.packets_seen += 1
        timestamp = packet.timestamp
        size = float(packet.wire_len)

        src_mac = packet.ether.src_mac if packet.ether is not None else "??"
        src_ip = packet.src_ip or "0.0.0.0"
        dst_ip = packet.dst_ip or "0.0.0.0"
        src_port = packet.src_port if packet.src_port is not None else 0
        dst_port = packet.dst_port if packet.dst_port is not None else 0

        features: list[float] = []
        # 1) Source MAC-IP bandwidth.
        features.extend(
            self._db.update_get_1d(f"mac:{src_mac}|{src_ip}", size, timestamp)
        )
        # 2) Source IP bandwidth.
        features.extend(self._db.update_get_1d(f"ip:{src_ip}", size, timestamp))
        # 3) Channel: src IP -> dst IP with reverse-direction joint stats.
        features.extend(
            self._db.update_get_2d(
                f"ch:{src_ip}>{dst_ip}", f"ch:{dst_ip}>{src_ip}", size, timestamp
            )
        )
        # 4) Socket: src IP:port -> dst IP:port.
        features.extend(
            self._db.update_get_2d(
                f"sk:{src_ip}:{src_port}>{dst_ip}:{dst_port}",
                f"sk:{dst_ip}:{dst_port}>{src_ip}:{src_port}",
                size,
                timestamp,
            )
        )
        return np.asarray(features, dtype=np.float64)

    def _update_into(
        self, packet: Packet, out: np.ndarray, out_ptr: int | None = None
    ) -> None:
        """Vector fast path: write ``packet``'s features into ``out``."""
        timestamp = packet.timestamp
        size = float(packet.wire_len)
        ether = packet.ether
        src_mac = ether.src_mac if ether is not None else "??"
        src_ip = packet.src_ip or "0.0.0.0"
        dst_ip = packet.dst_ip or "0.0.0.0"
        src_port = packet.src_port
        if src_port is None:
            src_port = 0
        dst_port = packet.dst_port
        if dst_port is None:
            dst_port = 0

        db = self._db
        cache_key = (src_mac, src_ip, dst_ip, src_port, dst_port)
        entry = self._entries.get(cache_key)
        if entry is None or entry.epoch != db.epoch:
            entry = db.packet_entry(
                src_mac, src_ip, dst_ip, src_port, dst_port, timestamp
            )
            if len(self._entries) >= _ENTRY_CACHE_LIMIT:
                self._entries.clear()
            self._entries[cache_key] = entry
        db.update_packet(entry, size, timestamp, out, out_ptr)
        self.packets_seen += 1

    def update_batch(self, packets) -> np.ndarray:
        """Batched fast path: fold ``packets`` in one pass, return the
        ``(n, feature_count)`` matrix — bit-identical to ``n``
        :meth:`update` calls.

        The vector engines resolve every packet's interned rows first
        (so key interning, cache lookups and prune bookkeeping happen
        once per batch-shape, not interleaved with compute), then hand
        the whole batch to the kernel in one call. Row updates are
        deferred until that compute, so entry resolution threads a
        batch-wide ``pending``/``exclude`` through the database: a
        mid-batch prune sees in-flight rows at their conceptual update
        times and cannot recycle them under an earlier packet.

        Accepts a :class:`~repro.net.columnar.ColumnBatch` in place of
        a packet sequence: the columnar ingest fast path, which skips
        per-packet attribute access entirely (see
        :meth:`_update_columns`).
        """
        if isinstance(packets, ColumnBatch):
            return self._update_columns(packets)
        packets = list(packets)
        if self.engine == "scalar":
            rows = [self.update(packet) for packet in packets]
            if not rows:
                return np.empty((0, self.feature_count), dtype=np.float64)
            return np.vstack(rows)
        n = len(packets)
        out = np.empty((n, self.feature_count))
        if n == 0:
            return out
        db = self._db
        cache = self._entries
        entries = []
        values = np.empty(n)
        stamps = np.empty(n)
        pending: dict[int, float] = {}
        exclude: set[int] = set()
        for index, packet in enumerate(packets):
            timestamp = packet.timestamp
            ether = packet.ether
            src_mac = ether.src_mac if ether is not None else "??"
            src_ip = packet.src_ip or "0.0.0.0"
            dst_ip = packet.dst_ip or "0.0.0.0"
            src_port = packet.src_port
            if src_port is None:
                src_port = 0
            dst_port = packet.dst_port
            if dst_port is None:
                dst_port = 0
            cache_key = (src_mac, src_ip, dst_ip, src_port, dst_port)
            entry = cache.get(cache_key)
            if entry is None or entry.epoch != db.epoch:
                entry = db.packet_entry(
                    src_mac, src_ip, dst_ip, src_port, dst_port,
                    timestamp, pending=pending, exclude=exclude,
                )
                if len(cache) >= _ENTRY_CACHE_LIMIT:
                    cache.clear()
                cache[cache_key] = entry
            # The stat rows (mac, ip, ch_ab, sk_ab) are conceptually
            # updated at this packet's time even though the compute is
            # deferred; a later packet's prune must judge them by it.
            stat_rows = entry.rows
            pending[stat_rows[0]] = timestamp
            pending[stat_rows[1]] = timestamp
            pending[stat_rows[2]] = timestamp
            pending[stat_rows[3]] = timestamp
            exclude.update(stat_rows)
            entries.append(entry)
            values[index] = float(packet.wire_len)
            stamps[index] = timestamp
        db.update_packet_batch(entries, values, stamps, out)
        self.packets_seen += n
        return out

    def _update_columns(self, cols) -> np.ndarray:
        """Batched update straight from ingest columns.

        Bit-identical to feeding the hydrated packets through
        :meth:`update_batch`; the speed comes from resolving keys once
        per *unique flow* (via the batch's flow table) instead of once
        per packet, and from an optimistic no-bookkeeping path when
        every flow's interned rows are already cached.
        """
        n = len(cols)
        if self.engine == "scalar":
            return self._update_columns_scalar(cols)
        out = np.empty((n, self.feature_count))
        if n == 0:
            return out
        db = self._db
        cache = self._entries
        inverse, flows = cols.flow_table()
        keys = [
            (f.src_mac, f.src_ip, f.dst_ip, f.src_port, f.dst_port)
            for f in flows
        ]
        epoch = db.epoch
        entries_by_flow: list = []
        missing: list[int] = []
        for j, key in enumerate(keys):
            entry = cache.get(key)
            if entry is None or entry.epoch != epoch:
                entry = None
                missing.append(j)
            entries_by_flow.append(entry)
        if missing and not self._resolve_flow_entries(
            cols, inverse, keys, entries_by_flow, missing
        ):
            # A prune (or free-list recycling) could fire mid-batch;
            # only the ordered per-row walk reproduces its bookkeeping.
            return self._update_columns_ordered(cols, inverse, keys, out)
        values = np.ascontiguousarray(cols.wire_len, dtype=np.float64)
        stamps = np.ascontiguousarray(cols.timestamps, dtype=np.float64)
        db.update_packet_batch_indexed(
            entries_by_flow, inverse, values, stamps, out
        )
        self.packets_seen += n
        return out

    def _resolve_flow_entries(
        self, cols, inverse, keys, entries_by_flow, missing
    ) -> bool:
        """Intern the missing flows' rows in first-occurrence order.

        Only legal when no prune can fire and the free list is empty:
        then ``pending``/``exclude`` are never consulted, row
        allocation is purely sequential, and resolving per unique flow
        is indistinguishable from the per-row walk. Returns False when
        that guarantee does not hold and the caller must fall back."""
        db = self._db
        # The prune trigger counts stream keys only (cov rows live in
        # a separate table), and a flow interns at most six of those:
        # mac, ip, both channel directions, both socket directions.
        if db._free or len(db._keys) + 6 * len(missing) > db.max_streams:
            return False
        cache = self._entries
        # _intern stamps a stream's creation time, so each flow must be
        # resolved at its first packet's timestamp, in stream order —
        # which is flow-index order, since the flow table lists flows
        # by first occurrence.
        first_rows = cols.flow_first_rows()
        ts_list = cols.timestamps.tolist()
        for j in missing:
            entry = db.packet_entry_unguarded(*keys[j], ts_list[first_rows[j]])
            if len(cache) >= _ENTRY_CACHE_LIMIT:
                cache.clear()
            cache[keys[j]] = entry
            entries_by_flow[j] = entry
        return True

    def _update_columns_ordered(self, cols, inverse, keys, out) -> np.ndarray:
        """Exact per-row mirror of :meth:`update_batch` over columns."""
        n = len(cols)
        db = self._db
        cache = self._entries
        inv = inverse.tolist()
        ts_list = cols.timestamps.tolist()
        entries = []
        pending: dict[int, float] = {}
        exclude: set[int] = set()
        for index in range(n):
            timestamp = ts_list[index]
            cache_key = keys[inv[index]]
            entry = cache.get(cache_key)
            if entry is None or entry.epoch != db.epoch:
                entry = db.packet_entry(
                    *cache_key, timestamp, pending=pending, exclude=exclude
                )
                if len(cache) >= _ENTRY_CACHE_LIMIT:
                    cache.clear()
                cache[cache_key] = entry
            stat_rows = entry.rows
            pending[stat_rows[0]] = timestamp
            pending[stat_rows[1]] = timestamp
            pending[stat_rows[2]] = timestamp
            pending[stat_rows[3]] = timestamp
            exclude.update(stat_rows)
            entries.append(entry)
        values = np.ascontiguousarray(cols.wire_len, dtype=np.float64)
        stamps = np.ascontiguousarray(cols.timestamps, dtype=np.float64)
        db.update_packet_batch(entries, values, stamps, out)
        self.packets_seen += n
        return out

    def _update_columns_scalar(self, cols) -> np.ndarray:
        """Scalar-engine columnar path (parity testing, not speed)."""
        inverse, flows = cols.flow_table()
        inv = inverse.tolist()
        ts_list = cols.timestamps.tolist()
        size_list = cols.wire_len.tolist()
        db = self._db
        rows = []
        for index in range(len(cols)):
            flow = flows[inv[index]]
            timestamp = ts_list[index]
            size = size_list[index]
            src_mac, src_ip, dst_ip = flow.src_mac, flow.src_ip, flow.dst_ip
            src_port, dst_port = flow.src_port, flow.dst_port
            features: list[float] = []
            features.extend(
                db.update_get_1d(f"mac:{src_mac}|{src_ip}", size, timestamp)
            )
            features.extend(db.update_get_1d(f"ip:{src_ip}", size, timestamp))
            features.extend(
                db.update_get_2d(
                    f"ch:{src_ip}>{dst_ip}",
                    f"ch:{dst_ip}>{src_ip}",
                    size,
                    timestamp,
                )
            )
            features.extend(
                db.update_get_2d(
                    f"sk:{src_ip}:{src_port}>{dst_ip}:{dst_port}",
                    f"sk:{dst_ip}:{dst_port}>{src_ip}:{src_port}",
                    size,
                    timestamp,
                )
            )
            rows.append(np.asarray(features, dtype=np.float64))
            self.packets_seen += 1
        if not rows:
            return np.empty((0, self.feature_count), dtype=np.float64)
        return np.vstack(rows)

    def extract_all(self, packets) -> np.ndarray:
        """Vectorise a whole packet sequence into an (n, d) matrix.

        The vector engines route through :meth:`update_batch`, writing
        every packet's features straight into the preallocated result
        matrix with one kernel dispatch per batch."""
        return self.update_batch(packets)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Interned-row entries hold raw pointers; rebuild after unpickle.
        state["_entries"] = {}
        return state
