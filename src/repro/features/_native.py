"""Optional native (C) kernel for the vectorized AfterImage engine.

The structure-of-arrays packet update touches ~40 floats per packet —
small enough that NumPy's per-call dispatch overhead dominates a pure
ufunc implementation. This module compiles a tiny C kernel (once, cached
by source hash) that walks the same arrays in the same float operation
order, so its output is bit-for-bit identical to the scalar
:class:`repro.features.incstat.IncStat` reference:

* decay factors use libm ``pow(2.0, x)`` — the exact function CPython's
  ``math.pow`` wraps, so the bits match in-process;
* division, multiplication, ``sqrt`` and ``fabs`` are IEEE-754
  correctly-rounded and identical across C, NumPy and Python;
* the ``math.hypot``-derived features (magnitude/radius) are *not*
  computed here — CPython's hypot uses its own correction algorithm
  that differs from libm's — the Python caller fills those slots.

Compilation requires a C compiler (``cc``/``gcc``); when unavailable the
engine transparently falls back to the NumPy kernel. Set
``REPRO_DISABLE_NATIVE=1`` to force the fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

#: Largest decay-vector length the kernel's stack buffers support.
MAX_DECAYS = 16

#: Independent aggregation groups one packet touches (SrcMAC-IP, SrcIP,
#: channel, socket). The batched kernel can process each group on its
#: own thread because their row sets are pairwise disjoint.
MT_GROUPS = 4

_KERNEL_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <time.h>

#define MAXD 16

/* state layout: one row per stream = [weight[D] | linear_sum[D] |
 * squared_sum[D]]; covariance rows reuse the same shape as
 * [weight[D] | sum_residual[D] | unused[D]].  last[] holds one
 * timestamp per row (all decay factors of a stream share it). */

static void insert_row(double *state, double *last, int64_t row,
                       double ts, double v, const double *decays,
                       int64_t d, double *w_out, double *mean_out,
                       double *var_out, double *std_out)
{
    double *s = state + row * 3 * d;
    double dt = ts - last[row];
    int64_t i;
    if (dt > 0.0) {
        for (i = 0; i < d; i++) {
            double f = pow(2.0, (-decays[i]) * dt);
            s[i] *= f;
            s[d + i] *= f;
            s[2 * d + i] *= f;
        }
        last[row] = ts;
    }
    for (i = 0; i < d; i++) {
        double w = s[i] + 1.0;
        double ls = s[d + i] + v;
        double ss = s[2 * d + i] + v * v;
        double mean = ls / w;
        double var = fabs(ss / w - mean * mean);
        s[i] = w;
        s[d + i] = ls;
        s[2 * d + i] = ss;
        w_out[i] = w;
        mean_out[i] = mean;
        var_out[i] = var;
        std_out[i] = sqrt(var);
    }
}

static void read_row(const double *state, int64_t row, int64_t d,
                     double *mean_out, double *var_out, double *std_out)
{
    const double *s = state + row * 3 * d;
    int64_t i;
    for (i = 0; i < d; i++) {
        double w = s[i];
        double mean = 0.0;
        double var = 0.0;
        if (w > 0.0) {
            mean = s[d + i] / w;
            var = fabs(s[2 * d + i] / w - mean * mean);
        }
        mean_out[i] = mean;
        var_out[i] = var;
        std_out[i] = sqrt(var);
    }
}

static void update_cov_row(double *state, double *last, int64_t row,
                           double ts, double v, const double *decays,
                           int64_t d, const double *mean_a,
                           const double *std_a, const double *std_b,
                           double *cov_out, double *corr_out)
{
    double *s = state + row * 3 * d;
    double dt = ts - last[row];
    int64_t i;
    if (dt > 0.0) {
        for (i = 0; i < d; i++) {
            double f = pow(2.0, (-decays[i]) * dt);
            s[i] *= f;
            s[d + i] *= f;
        }
        last[row] = ts;
    } else if (last[row] == 0.0) {
        last[row] = ts;
    }
    for (i = 0; i < d; i++) {
        double resid = (v - mean_a[i]) * std_b[i];
        double sr = s[d + i] + resid;
        double wc = s[i] + 1.0;
        double cov = sr / wc;
        double denom = std_a[i] * std_b[i];
        double corr = 0.0;
        s[i] = wc;
        s[d + i] = sr;
        if (denom > 0.0) {
            /* Mirrors Python's max(-1.0, min(1.0, value)) exactly,
             * including its NaN-swallowing comparison order. */
            corr = cov / denom;
            corr = corr < 1.0 ? corr : 1.0;
            corr = corr > -1.0 ? corr : -1.0;
        }
        cov_out[i] = cov;
        corr_out[i] = corr;
    }
}

/* rows = [mac, ip, ch_ab, sk_ab, cov_ch, cov_sk, ch_ba, sk_ba].
 * out receives the full 20*D-feature layout except the hypot slots
 * (offsets +3/+4 of the 2-D blocks); aux receives the hypot operands
 * grouped operand-major (see below) for the Python post-pass. */
void afterimage_update_packet(double *state, double *last,
                              const int64_t *rows, double ts, double v,
                              const double *decays, int64_t d,
                              double *out, double *aux)
{
    double w[MAXD], mean[MAXD], var[MAXD], stdv[MAXD];
    double mb[MAXD], vb[MAXD], sb[MAXD];
    double cov[MAXD], corr[MAXD];
    double *block;
    int64_t i, g;

    insert_row(state, last, rows[0], ts, v, decays, d, w, mean, var, stdv);
    for (i = 0; i < d; i++) {
        out[3 * i] = w[i];
        out[3 * i + 1] = mean[i];
        out[3 * i + 2] = stdv[i];
    }
    insert_row(state, last, rows[1], ts, v, decays, d, w, mean, var, stdv);
    block = out + 3 * d;
    for (i = 0; i < d; i++) {
        block[3 * i] = w[i];
        block[3 * i + 1] = mean[i];
        block[3 * i + 2] = stdv[i];
    }
    for (g = 0; g < 2; g++) {
        insert_row(state, last, rows[2 + g], ts, v, decays, d,
                   w, mean, var, stdv);
        /* The reverse direction is read *after* the forward insert is
         * written back, so a self-conversation (src == dst) sees its
         * own post-insert statistics — matching the scalar path where
         * both keys resolve to one object. */
        read_row(state, rows[6 + g], d, mb, vb, sb);
        update_cov_row(state, last, rows[4 + g], ts, v, decays, d,
                       mean, stdv, sb, cov, corr);
        block = out + 6 * d + g * 7 * d;
        for (i = 0; i < d; i++) {
            block[7 * i] = w[i];
            block[7 * i + 1] = mean[i];
            block[7 * i + 2] = stdv[i];
            block[7 * i + 5] = cov[i];
            block[7 * i + 6] = corr[i];
        }
        /* aux = [mean_a x2 | var_a x2 | mean_b x2 | var_b x2] so the
         * Python hypot pass maps over contiguous slices. */
        for (i = 0; i < d; i++) {
            aux[g * d + i] = mean[i];
            aux[2 * d + g * d + i] = var[i];
            aux[4 * d + g * d + i] = mb[i];
            aux[6 * d + g * d + i] = vb[i];
        }
    }
}

/* Batched update: fold n packets into the tables in one call.
 *
 * rows is n x 8 (one interned working set per packet), out is n x 20*d
 * and aux n x 8*d, both contiguous. group selects which aggregation
 * family to process: 0 = SrcMAC-IP, 1 = SrcIP, 2 = channel,
 * 3 = socket, -1 = all four (single-thread batched path).
 *
 * Each group touches a row set disjoint from every other group's (the
 * interning keys carry distinct prefixes and covariance rows live in a
 * separate table), and writes disjoint out/aux column slices — so four
 * concurrent calls with group 0..3 are bit-identical to one group=-1
 * call, which is itself bit-identical to n single-packet calls. The
 * per-group packet walk stays strictly in sequence order, preserving
 * the decay/accumulate operation order of the scalar reference. */
void afterimage_update_batch(double *state, double *last,
                             const int64_t *rows, const double *ts,
                             const double *v, int64_t n,
                             const double *decays, int64_t d,
                             int64_t group, double *out, double *aux)
{
    double w[MAXD], mean[MAXD], var[MAXD], stdv[MAXD];
    double mb[MAXD], vb[MAXD], sb[MAXD];
    double cov[MAXD], corr[MAXD];
    double *block;
    int64_t p, i, g;

    for (p = 0; p < n; p++) {
        const int64_t *r = rows + p * 8;
        double *o = out + p * 20 * d;
        double *a = aux + p * 8 * d;
        double tsp = ts[p];
        double vp = v[p];
        if (group < 0 || group == 0) {
            insert_row(state, last, r[0], tsp, vp, decays, d,
                       w, mean, var, stdv);
            for (i = 0; i < d; i++) {
                o[3 * i] = w[i];
                o[3 * i + 1] = mean[i];
                o[3 * i + 2] = stdv[i];
            }
        }
        if (group < 0 || group == 1) {
            insert_row(state, last, r[1], tsp, vp, decays, d,
                       w, mean, var, stdv);
            block = o + 3 * d;
            for (i = 0; i < d; i++) {
                block[3 * i] = w[i];
                block[3 * i + 1] = mean[i];
                block[3 * i + 2] = stdv[i];
            }
        }
        for (g = 0; g < 2; g++) {
            if (group >= 0 && group != 2 + g)
                continue;
            insert_row(state, last, r[2 + g], tsp, vp, decays, d,
                       w, mean, var, stdv);
            read_row(state, r[6 + g], d, mb, vb, sb);
            update_cov_row(state, last, r[4 + g], tsp, vp, decays, d,
                           mean, stdv, sb, cov, corr);
            block = o + 6 * d + g * 7 * d;
            for (i = 0; i < d; i++) {
                block[7 * i] = w[i];
                block[7 * i + 1] = mean[i];
                block[7 * i + 2] = stdv[i];
                block[7 * i + 5] = cov[i];
                block[7 * i + 6] = corr[i];
            }
            for (i = 0; i < d; i++) {
                a[g * d + i] = mean[i];
                a[2 * d + g * d + i] = var[i];
                a[4 * d + g * d + i] = mb[i];
                a[6 * d + g * d + i] = vb[i];
            }
        }
    }
}

/* Concurrency probe: sleep without holding any lock. ctypes releases
 * the GIL around the call, so k pooled invocations overlapping in
 * ~seconds wall time (instead of k * seconds) proves the worker-pool
 * dispatch really runs kernel calls concurrently — independent of core
 * count, which is what lets 1-core CI gate the multithreaded backend
 * the same way the sharded ladder gates its scaling with a throttled
 * probe detector. */
void probe_sleep(double seconds)
{
    struct timespec req;
    req.tv_sec = (time_t)seconds;
    req.tv_nsec = (long)((seconds - (double)req.tv_sec) * 1e9);
    nanosleep(&req, 0);
}
"""

#: IEEE-preserving flags: no FMA contraction, no unsafe reassociation —
#: the kernel's bit-parity contract depends on one rounding per op.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off",
           "-fno-unsafe-math-optimizations")


def _cache_path() -> Path:
    digest = hashlib.sha256(
        (_KERNEL_SOURCE + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    base = os.environ.get("REPRO_NATIVE_CACHE") or tempfile.gettempdir()
    tag = f"repro-afterimage-{sys.implementation.name}-{digest}"
    return Path(base) / f"{tag}.so"


def _compile(target: Path) -> bool:
    compiler = os.environ.get("CC") or "cc"
    with tempfile.TemporaryDirectory(prefix="repro-native-") as tmp:
        source = Path(tmp) / "afterimage.c"
        source.write_text(_KERNEL_SOURCE)
        artifact = Path(tmp) / "afterimage.so"
        try:
            subprocess.run(
                [compiler, *_CFLAGS, str(source), "-o", str(artifact), "-lm"],
                check=True, capture_output=True, timeout=120,
            )
        except (OSError, subprocess.SubprocessError):
            return False
        try:
            # Atomic publish: concurrent workers may race to compile.
            os.replace(artifact, target)
        except OSError:
            return target.exists()
    return True


_cached_kernel: ctypes.CDLL | None = None
_load_attempted = False
_unavailable_reason: str | None = None


def unavailable_reason() -> str | None:
    """Why the native kernel is off, or ``None`` when it loaded."""
    load_kernel()
    return _unavailable_reason


def load_kernel() -> ctypes.CDLL | None:
    """The compiled kernel, or ``None`` when native support is off.

    A missing/broken compiler degrades to the NumPy kernel with a
    single :class:`RuntimeWarning` (per process), never an exception;
    ``REPRO_DISABLE_NATIVE`` is a deliberate opt-out and stays silent.
    """
    global _cached_kernel, _load_attempted, _unavailable_reason
    if _load_attempted:
        return _cached_kernel
    _load_attempted = True
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        _unavailable_reason = "REPRO_DISABLE_NATIVE is set"
        return None
    path = _cache_path()
    if not path.exists() and not _compile(path):
        _unavailable_reason = "C kernel compilation failed (no C compiler?)"
        warnings.warn(
            "native AfterImage kernel unavailable: compilation failed "
            "(is a C compiler on PATH?); falling back to the NumPy kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        library = ctypes.CDLL(str(path))
    except OSError:
        _unavailable_reason = "compiled kernel failed to load"
        warnings.warn(
            "native AfterImage kernel unavailable: the compiled artifact "
            "failed to load; falling back to the NumPy kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    fn = library.afterimage_update_packet
    fn.restype = None
    fn.argtypes = [
        ctypes.c_void_p,   # state
        ctypes.c_void_p,   # last
        ctypes.c_void_p,   # rows
        ctypes.c_double,   # timestamp
        ctypes.c_double,   # value
        ctypes.c_void_p,   # decays
        ctypes.c_int64,    # decay count
        ctypes.c_void_p,   # out
        ctypes.c_void_p,   # aux
    ]
    batch = library.afterimage_update_batch
    batch.restype = None
    batch.argtypes = [
        ctypes.c_void_p,   # state
        ctypes.c_void_p,   # last
        ctypes.c_void_p,   # rows (n x 8)
        ctypes.c_void_p,   # timestamps (n)
        ctypes.c_void_p,   # values (n)
        ctypes.c_int64,    # packet count
        ctypes.c_void_p,   # decays
        ctypes.c_int64,    # decay count
        ctypes.c_int64,    # group (-1 = all)
        ctypes.c_void_p,   # out (n x 20*d)
        ctypes.c_void_p,   # aux (n x 8*d)
    ]
    probe = library.probe_sleep
    probe.restype = None
    probe.argtypes = [ctypes.c_double]
    _cached_kernel = library
    return library
