"""The AfterImage stream database: keyed damped statistics with pruning.

Maintains one :class:`repro.features.incstat.IncStat` per (stream key,
decay factor), creating streams lazily on first sight — the behaviour
that makes Kitsune "plug and play" on a never-seen network. A size
bound with LRU-ish pruning keeps memory stable on long captures.

This is the *reference* implementation of the AfterImage semantics;
:class:`repro.features.vector.VectorIncStatDB` is the vectorized
structure-of-arrays engine that must match it bit-for-bit (the parity
contract in ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import heapq

from repro.features.incstat import IncStat, IncStatCov

#: Kitsune's five decay factors (temporal horizons from ~100ms to ~1min).
DEFAULT_DECAYS: tuple[float, ...] = (5.0, 3.0, 1.0, 0.1, 0.01)


class IncStatDB:
    """A database of damped 1-D statistics keyed by stream id.

    Parameters
    ----------
    decays:
        Decay factors; each key holds one :class:`IncStat` per factor.
    max_streams:
        Soft bound on tracked keys. When exceeded, the stalest half of
        the keys (by last update time) is evicted — mirroring AfterImage's
        clean-up logic.
    """

    def __init__(
        self,
        decays: tuple[float, ...] = DEFAULT_DECAYS,
        *,
        max_streams: int = 100_000,
    ) -> None:
        if not decays:
            raise ValueError("at least one decay factor is required")
        self.decays = tuple(decays)
        self.max_streams = max_streams
        self._streams: dict[str, list[IncStat]] = {}
        self._covs: dict[str, list[IncStatCov]] = {}
        #: Reverse-direction key per covariance key, so pruning can drop
        #: covariances whose *either* endpoint stream was evicted.
        self._cov_pair: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def update_get_1d(
        self, key: str, value: float, timestamp: float
    ) -> list[float]:
        """Update stream ``key`` with ``value`` and return its stats.

        Returns ``3 * len(decays)`` floats: (weight, mean, std) per decay.
        """
        stats = self._streams.get(key)
        if stats is None:
            stats = [IncStat(decay, timestamp) for decay in self.decays]
            self._streams[key] = stats
            self._maybe_prune()
        out: list[float] = []
        for stat in stats:
            stat.insert(value, timestamp)
            out.extend(stat.stats())
        return out

    def update_get_2d(
        self, key_ab: str, key_ba: str, value: float, timestamp: float
    ) -> list[float]:
        """Update the A→B direction of a channel and return joint stats.

        Returns ``7 * len(decays)`` floats per update: the 1-D (weight,
        mean, std) of the updated direction plus the 2-D (magnitude,
        radius, covariance, correlation) against the reverse direction.
        """
        stats_ab = self._get_or_create(key_ab, timestamp)
        stats_ba = self._get_or_create(key_ba, timestamp)
        covs = self._covs.get(key_ab)
        if covs is None:
            covs = [
                IncStatCov(a, b) for a, b in zip(stats_ab, stats_ba, strict=True)
            ]
            self._covs[key_ab] = covs
            self._cov_pair[key_ab] = key_ba
        out: list[float] = []
        for stat, cov in zip(stats_ab, covs, strict=True):
            stat.insert(value, timestamp)
            cov.update(value, timestamp, from_a=True)
            out.extend(stat.stats())
            out.extend(cov.stats())
        return out

    def _get_or_create(self, key: str, timestamp: float) -> list[IncStat]:
        stats = self._streams.get(key)
        if stats is None:
            stats = [IncStat(decay, timestamp) for decay in self.decays]
            self._streams[key] = stats
            self._maybe_prune()
        return stats

    def _maybe_prune(self) -> None:
        if len(self._streams) <= self.max_streams:
            return
        # Evict the stalest half by last update time. ``heapq.nsmallest``
        # is a partial selection — O(n log k) instead of the former full
        # O(n log n) sort on every insert past the bound — and is
        # documented to match ``sorted(...)[:k]`` exactly, so eviction
        # order (including insertion-order tie-breaks) is unchanged.
        cutoff = len(self._streams) // 2
        stale = heapq.nsmallest(
            cutoff, self._streams.items(), key=lambda kv: kv[1][0].last_time
        )
        evicted = {key for key, _ in stale}
        for key in evicted:
            del self._streams[key]
        # A covariance is only meaningful while *both* direction streams
        # are alive; drop it when either endpoint goes, so a re-seen
        # reverse direction re-pairs against a fresh stream instead of a
        # dangling evicted one.
        dead_covs = [
            key_ab
            for key_ab, key_ba in self._cov_pair.items()
            if key_ab in evicted or key_ba in evicted
        ]
        for key_ab in dead_covs:
            del self._covs[key_ab]
            del self._cov_pair[key_ab]
