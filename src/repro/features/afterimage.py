"""The AfterImage stream database: keyed damped statistics with pruning.

Maintains one :class:`repro.features.incstat.IncStat` per (stream key,
decay factor), creating streams lazily on first sight — the behaviour
that makes Kitsune "plug and play" on a never-seen network. A size
bound with LRU-ish pruning keeps memory stable on long captures.
"""

from __future__ import annotations

from repro.features.incstat import IncStat, IncStatCov

#: Kitsune's five decay factors (temporal horizons from ~100ms to ~1min).
DEFAULT_DECAYS: tuple[float, ...] = (5.0, 3.0, 1.0, 0.1, 0.01)


class IncStatDB:
    """A database of damped 1-D statistics keyed by stream id.

    Parameters
    ----------
    decays:
        Decay factors; each key holds one :class:`IncStat` per factor.
    max_streams:
        Soft bound on tracked keys. When exceeded, the stalest half of
        the keys (by last update time) is evicted — mirroring AfterImage's
        clean-up logic.
    """

    def __init__(
        self,
        decays: tuple[float, ...] = DEFAULT_DECAYS,
        *,
        max_streams: int = 100_000,
    ) -> None:
        if not decays:
            raise ValueError("at least one decay factor is required")
        self.decays = tuple(decays)
        self.max_streams = max_streams
        self._streams: dict[str, list[IncStat]] = {}
        self._covs: dict[str, list[IncStatCov]] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def update_get_1d(
        self, key: str, value: float, timestamp: float
    ) -> list[float]:
        """Update stream ``key`` with ``value`` and return its stats.

        Returns ``3 * len(decays)`` floats: (weight, mean, std) per decay.
        """
        stats = self._streams.get(key)
        if stats is None:
            stats = [IncStat(decay, timestamp) for decay in self.decays]
            self._streams[key] = stats
            self._maybe_prune()
        out: list[float] = []
        for stat in stats:
            stat.insert(value, timestamp)
            out.extend(stat.stats())
        return out

    def update_get_2d(
        self, key_ab: str, key_ba: str, value: float, timestamp: float
    ) -> list[float]:
        """Update the A→B direction of a channel and return joint stats.

        Returns ``7 * len(decays)`` floats per update: the 1-D (weight,
        mean, std) of the updated direction plus the 2-D (magnitude,
        radius, covariance, correlation) against the reverse direction.
        """
        stats_ab = self._get_or_create(key_ab, timestamp)
        stats_ba = self._get_or_create(key_ba, timestamp)
        covs = self._covs.get(key_ab)
        if covs is None:
            covs = [
                IncStatCov(a, b) for a, b in zip(stats_ab, stats_ba, strict=True)
            ]
            self._covs[key_ab] = covs
        out: list[float] = []
        for stat, cov in zip(stats_ab, covs, strict=True):
            stat.insert(value, timestamp)
            cov.update(value, timestamp, from_a=True)
            out.extend(stat.stats())
            out.extend(cov.stats())
        return out

    def _get_or_create(self, key: str, timestamp: float) -> list[IncStat]:
        stats = self._streams.get(key)
        if stats is None:
            stats = [IncStat(decay, timestamp) for decay in self.decays]
            self._streams[key] = stats
            self._maybe_prune()
        return stats

    def _maybe_prune(self) -> None:
        if len(self._streams) <= self.max_streams:
            return
        # Evict the stalest half by last update time.
        items = sorted(
            self._streams.items(), key=lambda kv: kv[1][0].last_time
        )
        cutoff = len(items) // 2
        for key, _ in items[:cutoff]:
            self._streams.pop(key, None)
            self._covs.pop(key, None)
