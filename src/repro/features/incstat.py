"""Damped (exponentially decaying) incremental statistics.

The core data structure of Kitsune's AfterImage framework: a stream
summary ``(w, LS, SS)`` — weight, linear sum, squared sum — where all
three decay by ``2^(-lambda * dt)`` between updates. This yields O(1)
per-packet updates for the mean/std of a traffic stream over a sliding
temporal horizon controlled by ``lambda``.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive


class IncStat:
    """A 1-D damped incremental statistic.

    Parameters
    ----------
    decay:
        The lambda decay factor; larger means a shorter temporal horizon.
        Kitsune uses {5, 3, 1, 0.1, 0.01}.
    init_time:
        Timestamp of stream creation.
    isotonic:
        If True, timestamps are allowed to repeat (dt=0 applies no decay).
    """

    __slots__ = ("decay", "weight", "linear_sum", "squared_sum", "last_time")

    def __init__(self, decay: float, init_time: float = 0.0) -> None:
        self.decay = check_positive("decay", decay)
        self.weight = 0.0
        self.linear_sum = 0.0
        self.squared_sum = 0.0
        self.last_time = init_time

    def decay_to(self, timestamp: float) -> None:
        """Apply decay for the interval since the last update."""
        dt = timestamp - self.last_time
        if dt > 0:
            factor = math.pow(2.0, -self.decay * dt)
            self.weight *= factor
            self.linear_sum *= factor
            self.squared_sum *= factor
            self.last_time = timestamp

    def insert(self, value: float, timestamp: float) -> None:
        """Decay to ``timestamp`` then fold in ``value``."""
        self.decay_to(timestamp)
        self.weight += 1.0
        self.linear_sum += value
        self.squared_sum += value * value

    @property
    def mean(self) -> float:
        return self.linear_sum / self.weight if self.weight > 0 else 0.0

    @property
    def variance(self) -> float:
        if self.weight <= 0:
            return 0.0
        mean = self.mean
        return abs(self.squared_sum / self.weight - mean * mean)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def stats(self) -> tuple[float, float, float]:
        """The (weight, mean, std) triple AfterImage exports per stream."""
        return (self.weight, self.mean, self.std)


class IncStatCov:
    """Damped covariance between two related streams (e.g. the two
    directions of a channel).

    Maintains a decayed sum of cross-residual products; from it and the
    two marginal :class:`IncStat` objects derives the 2-D statistics
    Kitsune exports: magnitude, radius, covariance and correlation.
    """

    __slots__ = ("stream_a", "stream_b", "sum_residual", "weight", "last_time")

    def __init__(self, stream_a: IncStat, stream_b: IncStat) -> None:
        if stream_a.decay != stream_b.decay:
            raise ValueError("covariance streams must share a decay factor")
        self.stream_a = stream_a
        self.stream_b = stream_b
        self.sum_residual = 0.0
        self.weight = 0.0
        self.last_time = 0.0

    def update(self, value: float, timestamp: float, *, from_a: bool) -> None:
        """Fold one observation from stream A (``from_a``) or B.

        The marginal stream must already have been updated with the
        observation; this folds the cross-residual against the *other*
        stream's current mean, following AfterImage's approximation.
        """
        dt = timestamp - self.last_time
        if dt > 0:
            factor = math.pow(2.0, -self.stream_a.decay * dt)
            self.sum_residual *= factor
            self.weight *= factor
            self.last_time = timestamp
        elif self.last_time == 0.0:
            self.last_time = timestamp
        # AfterImage caches each stream's true last residual; we use the
        # other stream's std as its expected residual magnitude, which
        # keeps the update O(1) and symmetric.
        if from_a:
            residual = (value - self.stream_a.mean) * self._last_residual_b()
        else:
            residual = (value - self.stream_b.mean) * self._last_residual_a()
        self.sum_residual += residual
        self.weight += 1.0

    def _last_residual_a(self) -> float:
        # Deviation scale of stream A, signed by nothing: use std as the
        # magnitude proxy for the last residual (AfterImage caches the
        # true last residual; std is its expected magnitude).
        return self.stream_a.std

    def _last_residual_b(self) -> float:
        return self.stream_b.std

    @property
    def covariance(self) -> float:
        if self.weight <= 0:
            return 0.0
        return self.sum_residual / self.weight

    @property
    def correlation(self) -> float:
        denom = self.stream_a.std * self.stream_b.std
        if denom <= 0:
            return 0.0
        value = self.covariance / denom
        return max(-1.0, min(1.0, value))

    def magnitude(self) -> float:
        """Euclidean norm of the two stream means."""
        return math.hypot(self.stream_a.mean, self.stream_b.mean)

    def radius(self) -> float:
        """Euclidean norm of the two stream variances."""
        return math.hypot(self.stream_a.variance, self.stream_b.variance)

    def stats(self) -> tuple[float, float, float, float]:
        """The (magnitude, radius, covariance, correlation) quadruple."""
        return (self.magnitude(), self.radius(), self.covariance, self.correlation)
