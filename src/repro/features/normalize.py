"""Online feature normalizers.

Kitsune normalises features to [0, 1] with a running min/max learned
during its training phase and frozen afterwards; the flow-level IDSs
use z-score standardisation fit on the training split. Both are
implemented here so every IDS shares audited scaling code.
"""

from __future__ import annotations

import numpy as np


class OnlineMinMaxScaler:
    """Running min-max scaler with frozen-after-training semantics.

    ``clip=False`` reproduces AfterImage's behaviour exactly: values
    outside the learned range scale past [0, 1], so a post-training
    regime shift (e.g. a flood) produces arbitrarily large normalised
    features — and correspondingly large reconstruction errors.
    """

    def __init__(self, dim: int, *, clip: bool = True) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.clip = clip
        self.min = np.full(dim, np.inf)
        self.max = np.full(dim, -np.inf)
        self.frozen = False

    def _checked(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape == (self.dim,) or (
            rows.ndim == 2 and rows.shape[1] == self.dim
        ):
            return rows
        raise ValueError(
            f"expected shape ({self.dim},) or (n, {self.dim}), "
            f"got {rows.shape}"
        )

    def partial_fit(self, rows: np.ndarray) -> None:
        """Update the running extrema with one observation or a batch.

        A ``(n, dim)`` batch folds in via ``np.minimum.reduce`` /
        ``np.maximum.reduce`` — extrema are order-independent, so the
        result is exactly what ``n`` sequential single-row calls
        produce.
        """
        if self.frozen:
            return
        rows = self._checked(rows)
        if rows.ndim == 2:
            if rows.shape[0] == 0:
                return
            np.minimum(self.min, np.minimum.reduce(rows, axis=0),
                       out=self.min)
            np.maximum(self.max, np.maximum.reduce(rows, axis=0),
                       out=self.max)
            return
        np.minimum(self.min, rows, out=self.min)
        np.maximum(self.max, rows, out=self.max)

    def freeze(self) -> None:
        """Stop learning extrema (training phase over)."""
        self.frozen = True

    def transform(self, rows: np.ndarray) -> np.ndarray:
        """Scale into the learned range; constant dimensions map to 0.

        Accepts one ``(dim,)`` row or a ``(n, dim)`` batch; the batch
        path is purely elementwise, so each output row is bit-identical
        to transforming that row alone. With ``clip=True`` output is
        clamped to [0, 1]; with ``clip=False`` out-of-range inputs
        extrapolate beyond it.
        """
        rows = self._checked(rows)
        span = self.max - self.min
        ok = np.isfinite(span) & (span > 0)
        out = np.zeros_like(rows)
        if rows.ndim == 2:
            out[:, ok] = (rows[:, ok] - self.min[ok]) / span[ok]
        else:
            out[ok] = (rows[ok] - self.min[ok]) / span[ok]
        if self.clip:
            return np.clip(out, 0.0, 1.0)
        return out

    def fit_transform(self, row: np.ndarray) -> np.ndarray:
        """Partial-fit then transform — the online training-phase call.

        Single rows only: a whole-batch fit-then-transform would see
        extrema from *future* rows, silently breaking the online
        training semantics. Batch callers fit and transform explicitly
        (or use :meth:`fit_transform_running` for the exact sequential
        trajectory over a batch).
        """
        row = self._checked(row)
        if row.ndim != 1:
            raise ValueError(
                "fit_transform is the online per-row call; for batches "
                "use partial_fit(batch) then transform(batch)"
            )
        self.partial_fit(row)
        return self.transform(row)

    def fit_transform_running(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized *online* fit-transform over a ``(n, dim)`` batch.

        Bit-identical to calling :meth:`fit_transform` on each row in
        order: row ``i`` is scaled against the extrema of rows
        ``0..i`` (plus any previously learned state), never against
        future rows. ``np.minimum.accumulate`` computes exactly the
        running extrema the sequential loop would (min/max are exact,
        order-insensitive IEEE operations) and the transform arithmetic
        is elementwise, so this is the batched training engines' way of
        keeping the online normalisation trajectory while dropping the
        per-row Python dispatch.
        """
        rows = self._checked(rows)
        if rows.ndim != 2:
            rows = rows.reshape(1, -1)
        if rows.shape[0] == 0:
            return np.empty_like(rows)
        if self.frozen:
            return self.transform(rows)
        run_min = np.minimum.accumulate(rows, axis=0)
        np.minimum(run_min, self.min, out=run_min)
        run_max = np.maximum.accumulate(rows, axis=0)
        np.maximum(run_max, self.max, out=run_max)
        self.min = run_min[-1].copy()
        self.max = run_max[-1].copy()
        span = run_max - run_min
        ok = np.isfinite(span) & (span > 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(ok, (rows - run_min) / span, 0.0)
        if self.clip:
            return np.clip(out, 0.0, 1.0)
        return out


class ZScoreScaler:
    """Batch z-score standardiser (fit once on the training split)."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "ZScoreScaler":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("fit expects a non-empty 2-D matrix")
        self.mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        self.std = std
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("ZScoreScaler used before fit()")
        matrix = np.asarray(matrix, dtype=np.float64)
        return (matrix - self.mean) / self.std

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)
