"""Per-packet feature substrate (Kitsune's AfterImage) and encoders.

Implements the damped incremental statistics framework from the Kitsune
paper (Mirsky et al., NDSS 2018): every packet updates a set of
exponentially-decaying streams keyed by source MAC+IP, source IP,
channel (src->dst) and socket (src:port->dst:port), across five decay
factors, producing the 100-dimensional feature vector both Kitsune and
HELAD consume. Also provides online normalizers and flow-dict encoding
used by the flow-level IDSs.
"""

from repro.features.incstat import IncStat, IncStatCov
from repro.features.afterimage import IncStatDB
from repro.features.vector import VectorIncStatDB
from repro.features.netstat import NetStat, KITSUNE_FEATURE_COUNT
from repro.features.normalize import OnlineMinMaxScaler, ZScoreScaler
from repro.features.encoding import FlowVectorEncoder

__all__ = [
    "IncStat",
    "IncStatCov",
    "IncStatDB",
    "VectorIncStatDB",
    "NetStat",
    "KITSUNE_FEATURE_COUNT",
    "OnlineMinMaxScaler",
    "ZScoreScaler",
    "FlowVectorEncoder",
]
