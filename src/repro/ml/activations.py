"""Activation functions and their derivatives.

Each activation is a pair ``(f, df)`` where ``df`` is expressed in
terms of the *output* ``y = f(x)`` — the form backprop wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Activation:
    """An activation function with its output-space derivative."""

    name: str
    f: Callable[[np.ndarray], np.ndarray]
    df: Callable[[np.ndarray], np.ndarray]  # derivative in terms of output

    def __reduce__(self):
        # The f/df lambdas are not picklable; serialise by name so
        # models holding activations (e.g. autoencoders shipped to
        # training worker processes) round-trip through pickle.
        return (by_name, (self.name,))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite on saturated pre-activations.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


sigmoid = Activation(
    "sigmoid",
    _sigmoid,
    lambda y: y * (1.0 - y),
)

relu = Activation(
    "relu",
    lambda x: np.maximum(x, 0.0),
    lambda y: (y > 0.0).astype(y.dtype),
)

tanh = Activation(
    "tanh",
    np.tanh,
    lambda y: 1.0 - y * y,
)

identity = Activation(
    "identity",
    lambda x: x,
    lambda y: np.ones_like(y),
)

_BY_NAME = {a.name: a for a in (sigmoid, relu, tanh, identity)}


def by_name(name: str) -> Activation:
    """Look up an activation by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown activation {name!r}; known: {known}") from None
