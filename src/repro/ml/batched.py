"""Batched execute-phase scoring for an ensemble of autoencoders.

KitNET's execute loop scores one packet at a time: per feature group, a
tiny ``(1, d) @ (d, h)`` forward whose cost is all NumPy call dispatch,
not arithmetic. :class:`BatchedEnsemble` packs the per-group weights
into stacked tensors so a micro-batch of N instances is scored against
every group in a handful of ``einsum`` contractions.

**Bit-for-bit parity.** The packed path must reproduce the per-row
reference (`Autoencoder.score` on one group slice at a time) exactly,
which pins down two implementation choices:

* contractions use ``np.einsum`` — its accumulation order over the
  contracted axis depends only on that axis' length, so the same row
  scored alone or inside a batch (or inside a stacked 3-D operand)
  rounds identically. BLAS ``@`` does *not* have this property: GEMM
  kernel selection varies with the batch dimension, so a batched matmul
  differs from the per-row matmul in the last ulp.
* groups are packed into **shape buckets** (one stack per distinct
  ``(in_dim, hidden_dim)``) instead of zero-padded lanes. Padding the
  contracted axis changes its length, which changes einsum's partial-sum
  pattern — and the RMSE mean's pairwise-summation tree — so padded
  lanes are *not* bit-transparent even though the extra terms are zero.

Every einsum operand is materialised C-contiguous first: NumPy executes
strided operands with different inner loops that can round differently.

The packed tensors are weight *snapshots*: construct lazily once
training stops, and invalidate on any further train step (KitNET does
both — see :meth:`repro.ids.kitsune.kitnet.KitNET.execute_batch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.autoencoder import Autoencoder


@dataclass(frozen=True)
class _ShapeBucket:
    """All groups sharing one autoencoder shape, packed for einsum."""

    group_ids: np.ndarray  # (B,) positions in the original group order
    gather: np.ndarray     # (B, in_dim) feature indices into a scaled row
    enc_w: np.ndarray      # (B, in_dim, hidden)
    enc_b: np.ndarray      # (B, hidden)
    dec_w: np.ndarray      # (B, hidden, in_dim)
    dec_b: np.ndarray      # (B, in_dim)


class BatchedEnsemble:
    """Execute-phase scorer packing a KitNET-style ensemble.

    Built from live :class:`~repro.ml.autoencoder.Autoencoder` objects
    plus their feature-group index arrays, and an output autoencoder
    over the per-group RMSEs. Scoring is pure (no training, no state):
    ``group_rmses`` then ``output_rmses`` reproduce the per-row loop
    bit for bit.
    """

    def __init__(
        self,
        ensemble: Sequence[Autoencoder],
        group_index: Sequence[np.ndarray],
        output_layer: Autoencoder,
    ) -> None:
        if len(ensemble) != len(group_index):
            raise ValueError(
                f"{len(ensemble)} autoencoders for {len(group_index)} groups"
            )
        if output_layer.dim != len(ensemble):
            raise ValueError(
                f"output layer dim {output_layer.dim} != "
                f"{len(ensemble)} groups"
            )
        self.n_groups = len(ensemble)
        self._enc_act = output_layer.encoder.activation
        self._dec_act = output_layer.decoder.activation
        self._buckets = self._pack(ensemble, group_index)
        self._out_enc_w = output_layer.encoder.weights.copy()
        self._out_enc_b = output_layer.encoder.bias.copy()
        self._out_dec_w = output_layer.decoder.weights.copy()
        self._out_dec_b = output_layer.decoder.bias.copy()

    def _pack(
        self,
        ensemble: Sequence[Autoencoder],
        group_index: Sequence[np.ndarray],
    ) -> list[_ShapeBucket]:
        by_shape: dict[tuple[int, int], list[int]] = {}
        for position, autoencoder in enumerate(ensemble):
            if (
                autoencoder.encoder.activation.name != self._enc_act.name
                or autoencoder.decoder.activation.name != self._dec_act.name
            ):
                raise ValueError(
                    "mixed activations cannot be packed into one ensemble"
                )
            shape = (autoencoder.dim, autoencoder.hidden_dim)
            by_shape.setdefault(shape, []).append(position)
        buckets = []
        for positions in by_shape.values():
            buckets.append(
                _ShapeBucket(
                    group_ids=np.asarray(positions, dtype=np.intp),
                    gather=np.stack(
                        [np.asarray(group_index[p], dtype=np.intp)
                         for p in positions]
                    ),
                    enc_w=np.stack(
                        [ensemble[p].encoder.weights for p in positions]
                    ),
                    enc_b=np.stack(
                        [ensemble[p].encoder.bias for p in positions]
                    ),
                    dec_w=np.stack(
                        [ensemble[p].decoder.weights for p in positions]
                    ),
                    dec_b=np.stack(
                        [ensemble[p].decoder.bias for p in positions]
                    ),
                )
            )
        return buckets

    def group_rmses(self, scaled: np.ndarray) -> np.ndarray:
        """Per-group reconstruction RMSEs for a batch of scaled rows.

        ``scaled`` is ``(N, dim)``; returns ``(N, n_groups)`` with
        columns in the original group order — each entry bit-identical
        to ``ensemble[g].score(scaled_row[group_index[g]])``.
        """
        scaled = np.ascontiguousarray(scaled, dtype=np.float64)
        rmses = np.empty((scaled.shape[0], self.n_groups))
        for bucket in self._buckets:
            # (N, B, in_dim). The copy is load-bearing: an advanced
            # index on axis 1 returns a *non-contiguous* layout on
            # NumPy 2.x (the advanced subspace is iterated first), and
            # einsum rounds differently on strided operands.
            sub = np.ascontiguousarray(scaled[:, bucket.gather])
            hidden = self._enc_act.f(
                np.einsum("ngi,gih->ngh", sub, bucket.enc_w) + bucket.enc_b
            )
            recon = self._dec_act.f(
                np.einsum("ngh,ghi->ngi", hidden, bucket.dec_w) + bucket.dec_b
            )
            rmses[:, bucket.group_ids] = np.sqrt(
                np.mean((recon - sub) ** 2, axis=2)
            )
        return rmses

    def output_rmses(self, scaled_rmses: np.ndarray) -> np.ndarray:
        """Output-layer RMSE per row — the final anomaly scores."""
        scaled_rmses = np.ascontiguousarray(scaled_rmses, dtype=np.float64)
        hidden = self._enc_act.f(
            np.einsum("ni,ih->nh", scaled_rmses, self._out_enc_w)
            + self._out_enc_b
        )
        recon = self._dec_act.f(
            np.einsum("nh,ho->no", hidden, self._out_dec_w) + self._out_dec_b
        )
        return np.sqrt(np.mean((recon - scaled_rmses) ** 2, axis=1))
