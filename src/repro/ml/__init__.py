"""Neural-network substrate in pure numpy.

Replaces Keras/TensorFlow for the three learned IDSs: dense layers with
backprop, SGD/Adam optimizers, a denoising-free autoencoder with online
single-instance training (KitNET-style), a small LSTM with truncated
BPTT (HELAD's temporal model), and a feed-forward binary classifier
(the DNN study's 3-hidden-layer network). :mod:`repro.ml.batched`
packs an ensemble of autoencoders for batched execute-phase scoring,
bit-identical to the per-row loops; :mod:`repro.ml.batched_train` is
its training counterpart — stacked mini-batch SGD over the same shape
buckets, plus cross-group parallel online training with the exact
sequential trajectory.
"""

from repro.ml.activations import identity, relu, sigmoid, tanh
from repro.ml.dense import DenseLayer
from repro.ml.optimizers import SGD, Adam
from repro.ml.losses import binary_cross_entropy, mean_squared_error
from repro.ml.autoencoder import Autoencoder
from repro.ml.batched import BatchedEnsemble
from repro.ml.batched_train import MiniBatchTrainer, ShardedGroupTrainer
from repro.ml.lstm import LSTMRegressor
from repro.ml.mlp import MLPClassifier

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "identity",
    "DenseLayer",
    "SGD",
    "Adam",
    "binary_cross_entropy",
    "mean_squared_error",
    "Autoencoder",
    "BatchedEnsemble",
    "MiniBatchTrainer",
    "ShardedGroupTrainer",
    "LSTMRegressor",
    "MLPClassifier",
]
