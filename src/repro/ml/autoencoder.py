"""A small autoencoder with online (single-instance) training.

This is the KitNET building block: a one-hidden-layer sigmoid
autoencoder trained by plain SGD one instance at a time, scoring inputs
by reconstruction RMSE. Inputs are expected in [0, 1] (Kitsune's
OnlineMinMaxScaler handles that upstream).
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.activations import sigmoid
from repro.ml.dense import DenseLayer
from repro.ml.optimizers import SGD
from repro.utils.rng import SeededRNG

_FLOAT64 = np.dtype(np.float64)


def _as_row(x: np.ndarray) -> np.ndarray:
    """``x`` as a (1, d) float64 matrix, without copying when possible.

    The per-packet scoring loops (KitNET's execute path feeds one
    feature-group slice per autoencoder per packet) hand in 1-D float64
    arrays; reshaping those to a row is a view. Anything else takes the
    general conversion path.
    """
    if type(x) is np.ndarray and x.ndim == 1 and x.dtype == _FLOAT64:
        return x.reshape(1, -1)
    return np.atleast_2d(np.asarray(x, dtype=np.float64))


class Autoencoder:
    """``d -> hidden -> d`` sigmoid autoencoder with RMSE scoring."""

    def __init__(
        self,
        dim: int,
        *,
        hidden_ratio: float = 0.75,
        learning_rate: float = 0.1,
        rng: SeededRNG,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        hidden = max(1, int(math.ceil(dim * hidden_ratio)))
        self.dim = dim
        self.hidden_dim = hidden
        self.encoder = DenseLayer(dim, hidden, sigmoid, rng=rng.child("enc"))
        self.decoder = DenseLayer(hidden, dim, sigmoid, rng=rng.child("dec"))
        self.optimizer = SGD(learning_rate)
        self.samples_trained = 0

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        return self.decoder.forward(self.encoder.forward(x))

    def _score_forward(self, matrix: np.ndarray) -> np.ndarray:
        """Execute-phase forward pass over a ``(n, dim)`` matrix.

        Uses ``np.einsum`` rather than BLAS ``@``: einsum's accumulation
        order over the contracted axis depends only on that axis'
        length, so each row's reconstruction is bit-identical whether it
        is scored alone or inside a batch — the property the batched
        KitNET engine's parity contract rests on (see
        :mod:`repro.ml.batched`). GEMM kernels round differently as the
        batch dimension changes. Training keeps the BLAS path: its
        forward cache feeds backprop and has no batching counterpart.
        """
        matrix = np.ascontiguousarray(matrix)
        hidden = self.encoder.activation.f(
            np.einsum("ni,ih->nh", matrix, self.encoder.weights)
            + self.encoder.bias
        )
        return self.decoder.activation.f(
            np.einsum("nh,ho->no", hidden, self.decoder.weights)
            + self.decoder.bias
        )

    def score(self, x: np.ndarray) -> float:
        """Reconstruction RMSE of a single instance."""
        x = _as_row(x)
        reconstruction = self._score_forward(x)
        return float(np.sqrt(np.mean((reconstruction - x) ** 2)))

    def train_score(self, x: np.ndarray) -> float:
        """One online SGD step; returns the *pre-update* RMSE.

        Returning the pre-update score mirrors KitNET's execute-then-
        train semantics during its training phase.
        """
        x = _as_row(x)
        reconstruction = self.reconstruct(x)
        rmse = float(np.sqrt(np.mean((reconstruction - x) ** 2)))
        grad = 2.0 * (reconstruction - x) / x.size
        grad = self.decoder.backward(grad)
        self.encoder.backward(grad)
        self.optimizer.step(self.decoder.parameters())
        self.optimizer.step(self.encoder.parameters())
        self.samples_trained += 1
        return rmse

    def train_batch(self, matrix: np.ndarray) -> np.ndarray:
        """One mini-batch SGD step; returns the *pre-update* RMSE per row.

        The whole batch is forwarded against the current weights, the
        loss gradient is the mean of the per-row gradients, and one
        optimizer step is applied. With a single row this is
        bit-identical to :meth:`train_score`; with larger batches it is
        an intentionally different (mini-batch) learning trajectory —
        the opt-in engine behind ``KitNET(train_mode="minibatch")``.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.size == 0:
            return np.empty(0)
        reconstruction = self.reconstruct(matrix)
        rmses = np.sqrt(np.mean((reconstruction - matrix) ** 2, axis=1))
        grad = 2.0 * (reconstruction - matrix) / (
            matrix.shape[1] * matrix.shape[0]
        )
        grad = self.decoder.backward(grad)
        self.encoder.backward(grad)
        self.optimizer.step(self.decoder.parameters())
        self.optimizer.step(self.encoder.parameters())
        self.samples_trained += matrix.shape[0]
        return rmses

    def score_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Row-wise RMSE for a matrix of instances (no training).

        Bit-identical to calling :meth:`score` on each row — the
        batched 2-D forward next to the 1-D fast path. Empty inputs
        (zero rows) score to an empty array instead of dying in a
        shape check downstream.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.size == 0:
            return np.empty(0)
        matrix = np.atleast_2d(matrix)
        reconstruction = self._score_forward(matrix)
        return np.sqrt(np.mean((reconstruction - matrix) ** 2, axis=1))
