"""A fully-connected layer with backprop."""

from __future__ import annotations

import numpy as np

from repro.ml.activations import Activation, identity
from repro.utils.rng import SeededRNG


class DenseLayer:
    """``y = act(x @ W + b)`` with Glorot-uniform initialisation.

    Stores the forward cache needed for :meth:`backward`; gradients are
    exposed as ``grad_w`` / ``grad_b`` for the optimizer to consume.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: Activation = identity,
        *,
        rng: SeededRNG,
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        self.weights = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.activation = activation
        self.grad_w = np.zeros_like(self.weights)
        self.grad_b = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None
        self._output: np.ndarray | None = None

    @property
    def in_dim(self) -> int:
        return self.weights.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weights.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        self._input = x
        self._output = self.activation.f(x @ self.weights + self.bias)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backprop ``dL/dy`` to ``dL/dx``, accumulating weight grads."""
        if self._input is None or self._output is None:
            raise RuntimeError("backward() called before forward()")
        grad_output = np.atleast_2d(grad_output)
        delta = grad_output * self.activation.df(self._output)
        # Exact gradients: any batch averaging is the loss's job, so
        # chained layers see consistent scales.
        self.grad_w = self._input.T @ delta
        self.grad_b = delta.sum(axis=0)
        return delta @ self.weights.T

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs for the optimizer."""
        return [(self.weights, self.grad_w), (self.bias, self.grad_b)]
