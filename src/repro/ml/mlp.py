"""A feed-forward binary classifier (the DNN study's architecture).

Vigneswaran et al. (2018) settle on a 3-hidden-layer ReLU network with
a sigmoid output trained with Adam on binary cross-entropy; this is a
faithful numpy port with mini-batch training.
"""

from __future__ import annotations

import numpy as np

from repro.ml.activations import relu, sigmoid
from repro.ml.dense import DenseLayer
from repro.ml.losses import binary_cross_entropy
from repro.ml.optimizers import Adam
from repro.utils.rng import SeededRNG


class MLPClassifier:
    """Multi-layer perceptron for binary classification.

    Parameters
    ----------
    input_dim:
        Feature dimensionality.
    hidden_dims:
        Hidden-layer widths; the DNN paper uses three layers of 1024,
        768 and 512 — scaled-down defaults keep the reproduction fast
        while preserving depth.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: tuple[int, ...] = (128, 96, 64),
        *,
        learning_rate: float = 0.001,
        rng: SeededRNG,
    ) -> None:
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if not hidden_dims:
            raise ValueError("at least one hidden layer is required")
        dims = [input_dim, *hidden_dims]
        self.layers = [
            DenseLayer(dims[i], dims[i + 1], relu, rng=rng.child(f"h{i}"))
            for i in range(len(dims) - 1)
        ]
        self.layers.append(DenseLayer(dims[-1], 1, sigmoid, rng=rng.child("out")))
        self.optimizer = Adam(learning_rate)
        self.loss_history: list[float] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out)
        return out[:, 0]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(attack) per row."""
        return self.forward(x)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(int)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 20,
        batch_size: int = 64,
        rng: SeededRNG,
        class_weight: dict[int, float] | None = None,
    ) -> "MLPClassifier":
        """Mini-batch Adam training on binary cross-entropy."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have matching first dimensions")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x[idx], y[idx]
                prediction = self.forward(xb)
                loss, grad = binary_cross_entropy(prediction, yb)
                if class_weight:
                    weights = np.where(
                        yb > 0.5, class_weight.get(1, 1.0), class_weight.get(0, 1.0)
                    )
                    grad = grad * weights
                    loss = float(loss * weights.mean())
                grad_matrix = grad[:, None]
                for layer in reversed(self.layers):
                    grad_matrix = layer.backward(grad_matrix)
                for layer in self.layers:
                    self.optimizer.step(layer.parameters())
                epoch_loss += loss
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
        return self
