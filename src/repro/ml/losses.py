"""Loss functions returning (loss, gradient-w.r.t.-prediction)."""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def mean_squared_error(
    prediction: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray]:
    """MSE and its gradient."""
    diff = prediction - target
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


def binary_cross_entropy(
    prediction: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray]:
    """BCE over sigmoid outputs and its gradient."""
    p = np.clip(prediction, _EPS, 1.0 - _EPS)
    loss = float(np.mean(-(target * np.log(p) + (1 - target) * np.log(1 - p))))
    grad = (p - target) / (p * (1 - p)) / p.size
    return loss, grad
