"""A single-layer LSTM regressor with truncated BPTT, in numpy.

HELAD's temporal component: it learns to predict the next value of the
anomaly-score time series; large prediction error marks temporal
anomalies. Small hidden sizes (8-32) train comfortably without BLAS
acceleration.
"""

from __future__ import annotations

import numpy as np

from repro.ml.activations import _sigmoid as sigmoid_fn
from repro.utils.rng import SeededRNG


class LSTMRegressor:
    """LSTM + linear head, trained on sliding windows of a 1-D series."""

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 16,
        *,
        learning_rate: float = 0.05,
        rng: SeededRNG,
    ) -> None:
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.learning_rate = learning_rate
        concat = input_dim + hidden_dim
        scale = 1.0 / np.sqrt(concat)
        # Gate weight matrices: input, forget, output, candidate.
        self.w = {
            gate: rng.normal(0.0, scale, size=(concat, hidden_dim))
            for gate in ("i", "f", "o", "g")
        }
        self.b = {gate: np.zeros(hidden_dim) for gate in ("i", "f", "o", "g")}
        self.b["f"] += 1.0  # forget-gate bias trick: start remembering
        self.w_head = rng.normal(0.0, 1.0 / np.sqrt(hidden_dim), size=hidden_dim)
        self.b_head = 0.0

    # -- forward -------------------------------------------------------
    def _step(self, x, h, c):
        z = np.concatenate([x, h])
        i = sigmoid_fn(z @ self.w["i"] + self.b["i"])
        f = sigmoid_fn(z @ self.w["f"] + self.b["f"])
        o = sigmoid_fn(z @ self.w["o"] + self.b["o"])
        g = np.tanh(z @ self.w["g"] + self.b["g"])
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        return h_new, c_new, (z, i, f, o, g, c, c_new, h_new)

    def predict_window(self, window: np.ndarray) -> float:
        """Predict the value following ``window`` (shape (T,) or (T, d))."""
        window = self._shape(window)
        h = np.zeros(self.hidden_dim)
        c = np.zeros(self.hidden_dim)
        for x in window:
            h, c, _ = self._step(x, h, c)
        return float(h @ self.w_head + self.b_head)

    def train_window(self, window: np.ndarray, target: float) -> float:
        """One BPTT step on (window -> target); returns squared error."""
        window = self._shape(window)
        h = np.zeros(self.hidden_dim)
        c = np.zeros(self.hidden_dim)
        caches = []
        for x in window:
            h, c, cache = self._step(x, h, c)
            caches.append(cache)
        prediction = float(h @ self.w_head + self.b_head)
        error = prediction - target

        grad_w = {gate: np.zeros_like(self.w[gate]) for gate in self.w}
        grad_b = {gate: np.zeros_like(self.b[gate]) for gate in self.b}
        grad_head_w = error * h
        grad_head_b = error

        dh = error * self.w_head
        dc = np.zeros(self.hidden_dim)
        for cache in reversed(caches):
            z, i, f, o, g, c_prev, c_new, _h_new = cache
            tanh_c = np.tanh(c_new)
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c * tanh_c)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_prev = dc * f
            pre = {
                "i": di * i * (1 - i),
                "f": df * f * (1 - f),
                "o": do * o * (1 - o),
                "g": dg * (1 - g * g),
            }
            dz = np.zeros_like(z)
            for gate, delta in pre.items():
                grad_w[gate] += np.outer(z, delta)
                grad_b[gate] += delta
                dz += self.w[gate] @ delta
            dh = dz[self.input_dim:]
            dc = dc_prev

        clip = 1.0
        lr = self.learning_rate
        for gate in self.w:
            np.clip(grad_w[gate], -clip, clip, out=grad_w[gate])
            np.clip(grad_b[gate], -clip, clip, out=grad_b[gate])
            self.w[gate] -= lr * grad_w[gate]
            self.b[gate] -= lr * grad_b[gate]
        self.w_head -= lr * np.clip(grad_head_w, -clip, clip)
        self.b_head -= lr * float(np.clip(grad_head_b, -clip, clip))
        return error * error

    def _shape(self, window: np.ndarray) -> np.ndarray:
        window = np.asarray(window, dtype=np.float64)
        if window.ndim == 1:
            window = window[:, None]
        if window.shape[1] != self.input_dim:
            raise ValueError(
                f"window feature dim {window.shape[1]} != {self.input_dim}"
            )
        return window
