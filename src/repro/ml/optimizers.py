"""Gradient-descent optimizers operating on (param, grad) pairs."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class SGD:
    """Plain stochastic gradient descent (what KitNET's online
    autoencoders use, lr 0.1 by default)."""

    def __init__(self, learning_rate: float = 0.1) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for param, grad in parameters:
            param -= self.learning_rate * grad


class Adam:
    """Adam (Kingma & Ba 2015) with per-parameter state keyed by id."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self._t += 1
        for param, grad in parameters:
            key = id(param)
            if key not in self._m:
                self._m[key] = np.zeros_like(param)
                self._v[key] = np.zeros_like(param)
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
