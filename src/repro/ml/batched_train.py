"""Batched and parallel training engines for an autoencoder ensemble.

:mod:`repro.ml.batched` made KitNET's *execute* phase a handful of
stacked einsum contractions; this module is its training counterpart.
Two engines with very different contracts:

* :class:`MiniBatchTrainer` — **mini-batch SGD** over the same shape
  buckets :class:`~repro.ml.batched.BatchedEnsemble` builds. A chunk of
  N scaled rows is forwarded and backpropagated against *all* groups in
  a few stacked contractions, and one averaged-gradient SGD step is
  applied per autoencoder per chunk. This intentionally changes the
  online-learning trajectory (scores are pinned by their own golden
  fixture) in exchange for removing every per-row Python dispatch —
  the opt-in behind ``KitNET(train_mode="minibatch")``.

* :class:`ShardedGroupTrainer` — **cross-group parallelism with the
  exact online trajectory**. Per-group autoencoders train independently
  given the scaled row: each group's SGD sequence only ever touches its
  own weights, and the per-row RMSE vector is a pure gather of the
  per-group results. So the groups are sharded round-robin across
  workers (threads, or processes for true parallelism), each worker
  replays its groups' per-row ``train_score`` loop over the chunk in
  row order, and the parent deterministically merges the returned
  weights and RMSE columns. The result is **bit-identical** to the
  sequential reference loop regardless of worker count, backend or
  scheduling — sharding never reorders any group's float operations.

Both engines consume rows scaled by
:meth:`~repro.features.normalize.OnlineMinMaxScaler.fit_transform_running`
(the vectorized, trajectory-exact online normalisation), so the input
scaler never re-serialises the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.autoencoder import Autoencoder


@dataclass
class _TrainBucket:
    """All groups sharing one autoencoder shape, packed *mutably*.

    Unlike the execute engine's frozen snapshot, these stacked tensors
    are the live training weights: every mini-batch step updates them
    in place, and :meth:`MiniBatchTrainer.sync` writes them back into
    the per-group :class:`Autoencoder` objects.
    """

    group_ids: np.ndarray  # (B,) positions in the original group order
    gather: np.ndarray     # (B, in_dim) feature indices into a scaled row
    enc_w: np.ndarray      # (B, in_dim, hidden)
    enc_b: np.ndarray      # (B, hidden)
    dec_w: np.ndarray      # (B, hidden, in_dim)
    dec_b: np.ndarray      # (B, in_dim)


class MiniBatchTrainer:
    """Stacked mini-batch SGD over a KitNET-style ensemble.

    Owns packed copies of the per-group weights for the duration of the
    training phase; the wrapped :class:`Autoencoder` objects are stale
    until :meth:`sync` scatters the trained weights back (KitNET calls
    it the moment its training grace period ends).
    """

    def __init__(
        self,
        ensemble: Sequence[Autoencoder],
        group_index: Sequence[np.ndarray],
        *,
        learning_rate: float,
    ) -> None:
        if len(ensemble) != len(group_index):
            raise ValueError(
                f"{len(ensemble)} autoencoders for {len(group_index)} groups"
            )
        self._ensemble = list(ensemble)
        self.n_groups = len(ensemble)
        self.learning_rate = float(learning_rate)
        self._enc_act = ensemble[0].encoder.activation
        self._dec_act = ensemble[0].decoder.activation
        self.rows_trained = 0
        by_shape: dict[tuple[int, int], list[int]] = {}
        for position, autoencoder in enumerate(ensemble):
            shape = (autoencoder.dim, autoencoder.hidden_dim)
            by_shape.setdefault(shape, []).append(position)
        self._buckets = [
            _TrainBucket(
                group_ids=np.asarray(positions, dtype=np.intp),
                gather=np.stack(
                    [np.asarray(group_index[p], dtype=np.intp)
                     for p in positions]
                ),
                enc_w=np.stack(
                    [ensemble[p].encoder.weights for p in positions]
                ),
                enc_b=np.stack([ensemble[p].encoder.bias for p in positions]),
                dec_w=np.stack(
                    [ensemble[p].decoder.weights for p in positions]
                ),
                dec_b=np.stack([ensemble[p].decoder.bias for p in positions]),
            )
            for positions in by_shape.values()
        ]

    def train_step(self, scaled: np.ndarray) -> np.ndarray:
        """One mini-batch step over every group; pre-update RMSEs.

        ``scaled`` is ``(N, dim)``; returns ``(N, n_groups)`` RMSEs
        computed against the weights *before* this step (KitNET's
        execute-then-train semantics). The loss gradient per group is
        the mean of the per-row gradients, so one chunk is one SGD step
        per autoencoder.
        """
        scaled = np.ascontiguousarray(scaled, dtype=np.float64)
        n = scaled.shape[0]
        rmses = np.empty((n, self.n_groups))
        lr = self.learning_rate
        for bucket in self._buckets:
            sub = np.ascontiguousarray(scaled[:, bucket.gather])  # (N,B,d)
            hidden = self._enc_act.f(
                np.einsum("ngi,gih->ngh", sub, bucket.enc_w) + bucket.enc_b
            )
            recon = self._dec_act.f(
                np.einsum("ngh,ghi->ngi", hidden, bucket.dec_w) + bucket.dec_b
            )
            diff = recon - sub
            rmses[:, bucket.group_ids] = np.sqrt(np.mean(diff**2, axis=2))
            # Backward: mean-of-per-row-gradients, matching
            # Autoencoder.train_batch's scaling (2*(r-x)/d averaged
            # over the chunk).
            delta_dec = (2.0 / (sub.shape[2] * n)) * diff * self._dec_act.df(
                recon
            )
            grad_hidden = np.einsum("ngi,ghi->ngh", delta_dec, bucket.dec_w)
            delta_enc = grad_hidden * self._enc_act.df(hidden)
            bucket.dec_w -= lr * np.einsum("ngh,ngi->ghi", hidden, delta_dec)
            bucket.dec_b -= lr * delta_dec.sum(axis=0)
            bucket.enc_w -= lr * np.einsum("ngi,ngh->gih", sub, delta_enc)
            bucket.enc_b -= lr * delta_enc.sum(axis=0)
        self.rows_trained += n
        return rmses

    def sync(self) -> None:
        """Scatter the packed weights back into the ensemble objects."""
        for bucket in self._buckets:
            for lane, position in enumerate(bucket.group_ids):
                autoencoder = self._ensemble[position]
                autoencoder.encoder.weights = bucket.enc_w[lane].copy()
                autoencoder.encoder.bias = bucket.enc_b[lane].copy()
                autoencoder.decoder.weights = bucket.dec_w[lane].copy()
                autoencoder.decoder.bias = bucket.dec_b[lane].copy()
                autoencoder.samples_trained += self.rows_trained
        self.rows_trained = 0


def _train_shard(
    autoencoders: list[Autoencoder], subs: list[np.ndarray]
) -> tuple[list[Autoencoder], np.ndarray]:
    """Replay the per-row online SGD loop for one shard of groups.

    Runs in a worker (thread or process): each group's rows are trained
    strictly in order, exactly as the sequential reference would, so
    the returned weights and pre-update RMSE columns are bit-identical
    to it. Module-level so process backends can pickle the task.
    """
    n = subs[0].shape[0] if subs else 0
    rmses = np.empty((n, len(autoencoders)))
    for column, (autoencoder, sub) in enumerate(zip(autoencoders, subs)):
        train = autoencoder.train_score
        for i in range(n):
            rmses[i, column] = train(sub[i])
    return autoencoders, rmses


class ShardedGroupTrainer:
    """Cross-group parallel online training, bit-identical to serial.

    ``workers=1`` runs the shard loop inline (no pool) — still faster
    than the reference because the scaler work is hoisted out and
    vectorized by the caller. ``workers>=2`` dispatches one shard per
    worker; ``backend="thread"`` shares the autoencoder objects (NumPy
    releases the GIL inside its kernels), ``backend="process"`` ships
    the shard's autoencoders to worker processes and merges the
    returned weights — the per-group models are a few kilobytes, so
    shipping them per chunk is cheap and keeps the parent's ensemble
    list canonical between chunks.
    """

    def __init__(
        self,
        ensemble: Sequence[Autoencoder],
        group_index: Sequence[np.ndarray],
        *,
        workers: int = 1,
        backend: str = "thread",
    ) -> None:
        if len(ensemble) != len(group_index):
            raise ValueError(
                f"{len(ensemble)} autoencoders for {len(group_index)} groups"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        # Keep the caller's list itself (not a copy): process backends
        # merge trained weights by *replacing* entries, and the owner
        # (KitNET) must observe the merged models.
        self._ensemble = (
            ensemble if isinstance(ensemble, list) else list(ensemble)
        )
        self._group_index = [
            np.asarray(group, dtype=np.intp) for group in group_index
        ]
        self.workers = min(workers, len(ensemble))
        self.backend = backend
        # Round-robin sharding: deterministic, and balanced when group
        # sizes are (as the feature mapper caps them) roughly equal.
        self._shards = [
            list(range(start, len(ensemble), self.workers))
            for start in range(self.workers)
        ]
        self._pool = None

    def __getstate__(self):
        # Executors are neither picklable nor deepcopy-able; they are
        # rebuilt lazily after a restore.
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def _executor(self):
        if self._pool is None:
            if self.backend == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def train_rows(self, scaled: np.ndarray) -> np.ndarray:
        """Train every group on a chunk of scaled rows, in row order.

        Returns the ``(N, n_groups)`` pre-update RMSE matrix,
        bit-identical to the sequential per-row reference. The parent's
        ensemble list holds the merged post-chunk weights on return, so
        chunks of any size (down to single rows fed through the serial
        path between calls) compose into the same trajectory.
        """
        scaled = np.ascontiguousarray(scaled, dtype=np.float64)
        n = scaled.shape[0]
        rmses = np.empty((n, len(self._ensemble)))
        if n == 0:
            return rmses
        tasks = [
            (
                shard,
                [self._ensemble[g] for g in shard],
                [np.ascontiguousarray(scaled[:, self._group_index[g]])
                 for g in shard],
            )
            for shard in self._shards
        ]
        if self.workers == 1:
            shard, autoencoders, subs = tasks[0]
            _, shard_rmses = _train_shard(autoencoders, subs)
            rmses[:, shard] = shard_rmses
            return rmses
        futures = [
            self._executor().submit(_train_shard, autoencoders, subs)
            for _, autoencoders, subs in tasks
        ]
        for (shard, _, _), future in zip(tasks, futures):
            trained, shard_rmses = future.result()
            rmses[:, shard] = shard_rmses
            for g, autoencoder in zip(shard, trained):
                # Thread backends trained the shared objects in place
                # (this re-assignment is the identity); process
                # backends merge the returned copies deterministically.
                self._ensemble[g] = autoencoder
        return rmses

    @property
    def ensemble(self) -> list[Autoencoder]:
        """The (merged) autoencoders in group order."""
        return self._ensemble

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
