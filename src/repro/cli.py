"""Command-line interface for the reproduction pipeline.

Four subcommands mirror the artefacts a user actually wants:

* ``repro-cli tables`` — print the static inventories (Tables I-III);
* ``repro-cli generate`` — synthesise a dataset and write it to pcap;
* ``repro-cli evaluate`` — run one IDS x dataset cell and print metrics;
* ``repro-cli table4`` — run the full (or restricted) Table IV matrix.

Usage::

    python -m repro.cli table4 --scale 0.2 --ids DNN Slips
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.core.report import render_table1, render_table2, render_table3

    which = args.which
    if which in ("1", "all"):
        print("Table I — IDSs investigated\n")
        print(render_table1())
        print()
    if which in ("2", "all"):
        print("Table II — datasets used\n")
        print(render_table2())
        print()
    if which in ("3", "all"):
        print("Table III — datasets excluded\n")
        print(render_table3())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import generate_dataset

    dataset = generate_dataset(args.dataset, seed=args.seed, scale=args.scale)
    print(f"{dataset.name}: {len(dataset)} packets, "
          f"{dataset.attack_prevalence:.1%} attack, "
          f"{dataset.duration:.0f}s")
    if args.output:
        count = dataset.to_pcap(args.output)
        print(f"wrote {count} packets to {args.output} "
              f"(labels are not part of the pcap format)")
    counts = dataset.attack_type_counts()
    for family, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {family:24s} {count:8d} packets")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.experiment import EXPERIMENT_MATRIX, run_experiment

    key = (args.ids, args.dataset)
    if key not in EXPERIMENT_MATRIX:
        known = sorted({k[0] for k in EXPERIMENT_MATRIX})
        print(f"error: no experiment for {key}; IDSs: {', '.join(known)}",
              file=sys.stderr)
        return 2
    config = replace(EXPERIMENT_MATRIX[key], seed=args.seed, scale=args.scale)
    result = run_experiment(config)
    m = result.metrics
    print(f"{args.ids} on {args.dataset} (seed={args.seed}, "
          f"scale={args.scale}):")
    print(f"  accuracy  {m.accuracy:.4f}")
    print(f"  precision {m.precision:.4f}")
    print(f"  recall    {m.recall:.4f}")
    print(f"  f1        {m.f1:.4f}")
    print(f"  threshold {result.threshold:.6f} "
          f"({config.threshold_strategy})")
    for key_, value in sorted(result.notes.items()):
        print(f"  note: {key_} = {value}")
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.core.experiment import DATASET_ORDER
    from repro.core.pipeline import IDSAnalysisPipeline
    from repro.core.report import render_shape_checks, render_table4
    from repro.runner import ExperimentEngine, ProgressReporter

    ids_names = tuple(args.ids)
    dataset_names = tuple(args.datasets or DATASET_ORDER)
    reporter = ProgressReporter(len(ids_names) * len(dataset_names))
    engine = ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        progress=reporter.cell_done,
    )
    pipeline = IDSAnalysisPipeline(
        seed=args.seed,
        scale=args.scale,
        ids_names=ids_names,
        dataset_names=dataset_names,
        engine=engine,
    )
    pipeline.run_all(verbose=True)
    print()
    if pipeline.telemetry is not None:
        print(pipeline.telemetry.summary())
        print()
    print(render_table4(pipeline))
    if set(pipeline.ids_names) == {"Kitsune", "HELAD", "DNN", "Slips"} and (
        set(pipeline.dataset_names) == set(DATASET_ORDER)
    ):
        print()
        print(render_shape_checks(pipeline))
    return 0


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _non_negative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Reproduction pipeline for 'Expectations Versus "
                    "Reality' (DSN 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="print Tables I-III")
    p_tables.add_argument("--which", choices=("1", "2", "3", "all"),
                          default="all")
    p_tables.set_defaults(func=_cmd_tables)

    p_gen = sub.add_parser("generate", help="synthesise a dataset")
    p_gen.add_argument("dataset")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--scale", type=float, default=0.1)
    p_gen.add_argument("--output", help="pcap output path")
    p_gen.set_defaults(func=_cmd_generate)

    p_eval = sub.add_parser("evaluate", help="run one Table IV cell")
    p_eval.add_argument("ids", choices=("Kitsune", "HELAD", "DNN", "Slips"))
    p_eval.add_argument("dataset")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--scale", type=float, default=0.2)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_t4 = sub.add_parser("table4", help="run the Table IV matrix")
    p_t4.add_argument("--seed", type=int, default=0)
    p_t4.add_argument("--scale", type=float, default=0.35)
    p_t4.add_argument("--ids", nargs="+",
                      default=["Kitsune", "HELAD", "DNN", "Slips"])
    p_t4.add_argument("--datasets", nargs="+")
    p_t4.add_argument("--jobs", type=_positive_int, default=1,
                      help="worker processes for cell dispatch (default 1)")
    p_t4.add_argument("--cache-dir",
                      help="on-disk cache for datasets and finished cells; "
                           "use a fresh directory after code changes")
    p_t4.add_argument("--retries", type=_non_negative_int, default=0,
                      help="extra attempts per failing cell")
    p_t4.set_defaults(func=_cmd_table4)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
