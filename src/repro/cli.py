"""Command-line interface for the reproduction pipeline.

Eight subcommands mirror the artefacts a user actually wants:

* ``repro-cli tables`` — print the static inventories (Tables I-III);
* ``repro-cli generate`` — synthesise a dataset and write it to pcap;
* ``repro-cli evaluate`` — run one IDS x dataset cell (optionally
  across several seeds) and print metrics;
* ``repro-cli table4`` — run the full (or restricted) Table IV matrix;
* ``repro-cli table4-sweep`` — run the matrix across N seeds (and
  optionally a scale grid) and print the mean±std view of every cell;
* ``repro-cli stream`` — run an IDS *online* over a live packet stream
  (synthetic dataset replay or a pcap file), with sliding-window
  metrics, alert episodes and a JSON report;
* ``repro-cli profile`` — time the packet path stage by stage
  (ingest → netstat → kitnet-train → kitnet → kitnet-batch) under a
  chosen feature engine and ingest backend, with a scalar-reference
  comparison, a
  batched-vs-per-packet KitNET speedup and parity check, and a JSON
  export;
* ``repro-cli cache`` — inspect (``stats``) or LRU-trim (``gc``) an
  on-disk cache directory.

Usage::

    python -m repro.cli table4 --scale 0.2 --ids DNN Slips
    python -m repro.cli table4-sweep --seeds 3 --scale 0.1 --jobs 2
    python -m repro.cli stream --ids kitsune --dataset mirai --window 10s

See ``docs/CLI.md`` for the full reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.core.report import render_table1, render_table2, render_table3

    which = args.which
    if which in ("1", "all"):
        print("Table I — IDSs investigated\n")
        print(render_table1())
        print()
    if which in ("2", "all"):
        print("Table II — datasets used\n")
        print(render_table2())
        print()
    if which in ("3", "all"):
        print("Table III — datasets excluded\n")
        print(render_table3())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import generate_dataset

    dataset = generate_dataset(args.dataset, seed=args.seed, scale=args.scale)
    print(f"{dataset.name}: {len(dataset)} packets, "
          f"{dataset.attack_prevalence:.1%} attack, "
          f"{dataset.duration:.0f}s")
    if args.output:
        count = dataset.to_pcap(args.output)
        print(f"wrote {count} packets to {args.output} "
              f"(labels are not part of the pcap format)")
    counts = dataset.attack_type_counts()
    for family, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {family:24s} {count:8d} packets")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.experiment import EXPERIMENT_MATRIX, run_experiment

    key = (args.ids, args.dataset)
    if key not in EXPERIMENT_MATRIX:
        known = sorted({k[0] for k in EXPERIMENT_MATRIX})
        print(f"error: no experiment for {key}; IDSs: {', '.join(known)}",
              file=sys.stderr)
        return 2
    if args.seeds > 1:
        return _evaluate_sweep(args)
    config = replace(EXPERIMENT_MATRIX[key], seed=args.seed, scale=args.scale)
    if args.cache_dir is not None or args.jobs > 1:
        # Honour the engine knobs even for a single seed: a cached cell
        # is reused, a fresh one is stored for later runs.
        from repro.runner import ExperimentEngine
        from repro.runner.scheduling import plan_configs

        engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir)
        result = engine.run(plan_configs([config]))[key]
    else:
        result = run_experiment(config)
    m = result.metrics
    print(f"{args.ids} on {args.dataset} (seed={args.seed}, "
          f"scale={args.scale}):")
    print(f"  accuracy  {m.accuracy:.4f}")
    print(f"  precision {m.precision:.4f}")
    print(f"  recall    {m.recall:.4f}")
    print(f"  f1        {m.f1:.4f}")
    print(f"  threshold {result.threshold:.6f} "
          f"({config.threshold_strategy})")
    for key_, value in sorted(result.notes.items()):
        print(f"  note: {key_} = {value}")
    if args.json:
        _write_json(args.json, {
            "ids": args.ids, "dataset": args.dataset,
            "seed": args.seed, "scale": args.scale,
            "accuracy": m.accuracy, "precision": m.precision,
            "recall": m.recall, "f1": m.f1,
            "threshold": result.threshold,
        })
    return 0


def _evaluate_sweep(args: argparse.Namespace) -> int:
    """One Table IV cell across several seeds: per-seed rows + mean±std."""
    from repro.runner import ExperimentEngine
    from repro.runner.sweep import METRIC_NAMES, sweep_cell

    seeds = tuple(range(args.seed, args.seed + args.seeds))
    engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir)
    cell = sweep_cell(args.ids, args.dataset, seeds=seeds, scale=args.scale,
                      engine=engine)
    print(f"{args.ids} on {args.dataset} "
          f"(seeds {seeds[0]}..{seeds[-1]}, scale={args.scale}):")
    for seed, m in cell.per_seed():
        print(f"  seed {seed}: acc={m.accuracy:.4f} prec={m.precision:.4f} "
              f"rec={m.recall:.4f} f1={m.f1:.4f}")
    for metric in METRIC_NAMES:
        print(f"  {metric:9s} {cell.distribution(metric).format()}")
    if args.json:
        from repro.core.export import cell_sweep_to_dict

        payload = cell_sweep_to_dict(cell)
        payload["scale"] = args.scale
        _write_json(args.json, payload)
    return 0


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote JSON report to {path}")


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.core.experiment import DATASET_ORDER
    from repro.core.pipeline import IDSAnalysisPipeline
    from repro.core.report import render_shape_checks, render_table4
    from repro.runner import ExperimentEngine, ProgressReporter

    ids_names = tuple(args.ids)
    dataset_names = tuple(args.datasets or DATASET_ORDER)
    reporter = ProgressReporter(len(ids_names) * len(dataset_names))
    engine = ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        result_cache_bytes=_mb_to_bytes(args.cache_max_mb),
        progress=reporter.cell_done,
    )
    pipeline = IDSAnalysisPipeline(
        seed=args.seed,
        scale=args.scale,
        ids_names=ids_names,
        dataset_names=dataset_names,
        engine=engine,
    )
    pipeline.run_all(verbose=True)
    print()
    if pipeline.telemetry is not None:
        print(pipeline.telemetry.summary())
        print()
    print(render_table4(pipeline))
    if set(pipeline.ids_names) == {"Kitsune", "HELAD", "DNN", "Slips"} and (
        set(pipeline.dataset_names) == set(DATASET_ORDER)
    ):
        print()
        print(render_shape_checks(pipeline))
    return 0


def _cmd_table4_sweep(args: argparse.Namespace) -> int:
    from repro.core.experiment import DATASET_ORDER
    from repro.core.report import render_table4_sweep
    from repro.runner import ExperimentEngine, ProgressReporter
    from repro.runner.sweep import sweep_matrix, sweep_scale_grid

    ids_names = tuple(args.ids)
    dataset_names = tuple(args.datasets or DATASET_ORDER)
    seeds = tuple(range(args.seed, args.seed + args.seeds))
    scales = args.scales or [args.scale]
    reporter = ProgressReporter(
        len(ids_names) * len(dataset_names) * len(seeds) * len(scales)
    )
    engine = ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        result_cache_bytes=_mb_to_bytes(args.cache_max_mb),
        progress=reporter.cell_done,
    )
    if args.scales:
        sweeps = sweep_scale_grid(
            ids_names, dataset_names, seeds=seeds, scales=scales,
            engine=engine,
        )
    else:
        sweeps = [sweep_matrix(
            ids_names, dataset_names, seeds=seeds, scale=args.scale,
            engine=engine,
        )]
    print()
    if sweeps[-1].telemetry is not None:
        print(sweeps[-1].telemetry.summary())
    for sweep in sweeps:
        print()
        if len(sweeps) > 1:
            print(f"=== scale {sweep.scale} ===")
        print(render_table4_sweep(sweep))
    if args.json:
        from repro.core.export import sweep_to_dict

        if len(sweeps) == 1:
            _write_json(args.json, sweep_to_dict(sweeps[0]))
        else:
            _write_json(args.json, {
                "scales": [sweep_to_dict(sweep) for sweep in sweeps],
            })
    return 0


def _parse_duration(value: str) -> float:
    """A duration like ``10s``, ``2m``, ``0.5h`` or plain seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0}
    factor = units.get(value[-1:].lower())
    digits = value[:-1] if factor else value
    try:
        seconds = float(digits) * (factor or 1.0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {value!r} (use e.g. 10s, 2m, 0.5h)"
        ) from None
    if seconds <= 0:
        raise argparse.ArgumentTypeError("duration must be positive")
    return seconds


def _parse_scales(value: str) -> list[float]:
    """A comma-separated scale grid: ``0.1,0.5,1.0``."""
    try:
        scales = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid scale list {value!r} (use e.g. 0.1,0.5,1.0)"
        ) from None
    if not scales or any(scale <= 0 for scale in scales):
        raise argparse.ArgumentTypeError("scales must be positive floats")
    return scales


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream import (
        DatasetSource,
        PcapReplaySource,
        build_streaming_detector,
        canonical_ids_name,
        stream_capture,
        stream_capture_sharded,
        stream_experiment,
    )

    try:
        ids_name = canonical_ids_name(args.ids)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    feature_backend = args.feature_backend
    if feature_backend is not None:
        from repro import backends

        if ids_name not in ("Kitsune", "HELAD"):
            print(f"error: {ids_name} is a flow-level IDS; "
                  "--feature-backend only applies to packet-level IDSs "
                  "(Kitsune, HELAD)", file=sys.stderr)
            return 2
        try:
            # Resolve "auto" (and validate explicit names) up front so
            # an unavailable backend fails with the registry's message.
            feature_backend = backends.resolve(
                backends.FEATURE_ENGINE, feature_backend
            ).name
        except (KeyError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    def live_window(snapshot) -> None:
        if not args.quiet:
            print(snapshot.describe())

    sharded = args.workers is not None

    exporter = None
    if args.metrics_out:
        from repro import obs

        exporter = obs.SnapshotExporter(
            args.metrics_out,
            interval_seconds=args.metrics_interval,
            source="stream-sharded" if sharded else "stream",
        )

    def run_sharded(source, detector, threshold, warmup_packets):
        return stream_capture_sharded(
            source,
            detector,
            workers=args.workers,
            warmup_packets=warmup_packets,
            threshold=threshold,
            window_seconds=args.window,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            pace=args.pace,
            on_window=live_window,
            exporter=exporter,
            ingest_backend=args.ingest_backend,
        )

    if args.pcap:
        if args.threshold is None:
            print("error: --pcap streams are unlabelled; pass an explicit "
                  "--threshold", file=sys.stderr)
            return 2
        train_packets = (args.train_packets
                         if args.train_packets is not None else 1000)
        detector = build_streaming_detector(
            ids_name, seed=args.seed, batch_size=args.batch,
            schema=args.schema, labelled=False,
            warmup_packets=train_packets,
            feature_backend=feature_backend,
        )
        try:
            if sharded:
                report = run_sharded(PcapReplaySource(args.pcap), detector,
                                     args.threshold, train_packets)
            else:
                report = stream_capture(
                    PcapReplaySource(args.pcap),
                    detector,
                    warmup_packets=train_packets,
                    threshold=args.threshold,
                    window_seconds=args.window,
                    on_window=live_window,
                    exporter=exporter,
                    ingest_backend=args.ingest_backend,
                )
        except ValueError as error:
            # e.g. a supervised IDS over an unlabelled capture, or a
            # flow IDS in sharded mode.
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif sharded:
        # Sharded mode streams the labelled synthetic replay through
        # the live capture path (train-on-prefix), like pcap mode but
        # with ground truth for metrics and post-hoc thresholds.
        from repro.datasets.registry import canonical_dataset_name

        try:
            dataset_name = canonical_dataset_name(args.dataset)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        source = DatasetSource(dataset_name, seed=args.seed,
                               scale=args.scale)
        if args.train_packets is not None:
            train_packets = args.train_packets
        else:
            # Mirror the batch split's arithmetic (train_fraction of
            # the stream, capped like max_train_packets) so small
            # scales still leave a test stream to score.
            from repro.core.experiment import ExperimentConfig

            defaults = ExperimentConfig(ids_name=ids_name,
                                        dataset_name=dataset_name)
            n_packets = len(source.dataset.packets)
            train_packets = int(n_packets * defaults.train_fraction)
            # Kitsune's minimum combined grace is 200 packets; give the
            # warmup at least that when the stream affords it.
            train_packets = max(train_packets, min(200, n_packets // 2))
            if defaults.max_train_packets:
                train_packets = min(train_packets,
                                    defaults.max_train_packets)
        detector = build_streaming_detector(
            ids_name, seed=args.seed, batch_size=args.batch,
            schema=args.schema, labelled=True,
            warmup_packets=train_packets,
            feature_backend=feature_backend,
        )
        try:
            report = run_sharded(source, detector, args.threshold,
                                 train_packets)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        from repro.core.experiment import EXPERIMENT_MATRIX, ExperimentConfig
        from repro.datasets.registry import canonical_dataset_name

        try:
            dataset_name = canonical_dataset_name(args.dataset)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        base = EXPERIMENT_MATRIX.get((ids_name, dataset_name))
        if base is None:
            # Off-matrix pairing: evaluate with the config defaults.
            base = ExperimentConfig(ids_name=ids_name, dataset_name=dataset_name)
        config = replace(base, seed=args.seed, scale=args.scale,
                         schema=args.schema)
        if feature_backend is not None:
            config = replace(config, ids_overrides={
                **config.ids_overrides, "netstat_engine": feature_backend,
            })
        if args.ingest_backend == "columnar-mmap":
            print("error: the columnar-mmap ingest backend decodes "
                  "capture files; synthetic dataset replay has no pcap "
                  "to mmap (pass --pcap)", file=sys.stderr)
            return 2
        report = stream_experiment(
            config,
            batch_size=args.batch,
            window_seconds=args.window,
            threshold=args.threshold,
            on_window=live_window,
            exporter=exporter,
        )
    if exporter is not None:
        exporter.close()
    print()
    print(report.render_summary())
    if exporter is not None:
        print(f"obs: metric snapshots written to {exporter.path}")
    if args.json:
        _write_json(args.json, report.to_dict())
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro import obs

    if len(args.files) > 2:
        print("error: obs-report takes one file (render) or two (diff)",
              file=sys.stderr)
        return 2
    try:
        loaded = [obs.read_snapshots(path) for path in args.files]
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for path, snapshots in zip(args.files, loaded):
        if not snapshots:
            print(f"error: {path}: no snapshots", file=sys.stderr)
            return 2
    if len(loaded) == 2:
        print(obs.diff_snapshots(loaded[0][-1], loaded[1][-1]))
        return 0
    snapshots = loaded[0] if args.all else [loaded[0][-1]]
    render = obs.render_prometheus if args.prom else obs.render_snapshot
    for i, snapshot in enumerate(snapshots):
        if i:
            print()
        print(render(snapshot))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.profiling import profile_packet_path
    from repro.datasets.registry import canonical_dataset_name

    try:
        dataset_name = canonical_dataset_name(args.dataset)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        profile = profile_packet_path(
            dataset_name,
            seed=args.seed,
            scale=args.scale,
            engine=args.engine,
            ingest_backend=args.ingest_backend,
            max_packets=args.packets,
            compare_scalar=not args.no_compare,
            batch_size=args.batch,
            train_batch=args.train_batch,
            train_workers=args.train_workers,
        )
    except RuntimeError as error:
        # e.g. --engine vector-native on a box without a C compiler.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(profile.render())
    if args.json:
        _write_json(args.json, profile.to_dict())
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro import backends

    caps = backends.capabilities()
    native = "available" if caps["native_kernel"] else "unavailable"
    if caps["native_kernel_reason"]:
        native += f" ({caps['native_kernel_reason']})"
    print(f"host: {caps['cpu_count']} cpu(s); native kernel {native}; "
          f"mt threads {caps['mt_threads']}")
    for component in backends.components():
        try:
            chosen = backends.resolve(component).name
        except RuntimeError:
            chosen = "none"
        print(f"\n{component} (auto -> {chosen}):")
        for name in backends.backend_names(component):
            spec = backends.get_backend(component, name)
            reason = spec.availability()
            status = "available" if reason is None else f"unavailable: {reason}"
            print(f"  {name:17s} {status}")
            print(f"  {'':17s} {spec.description}")
            print(f"  {'':17s} parity: {spec.parity}; "
                  f"expected: {spec.expected_speedup}")
    if args.json:
        _write_json(args.json, caps)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner import cache_dir_stats, gc_cache_dir

    if args.cache_command == "stats":
        stats = cache_dir_stats(args.cache_dir)
        total_files = total_bytes = 0
        for namespace, (files, size) in sorted(stats.items()):
            print(f"{namespace:9s} {files:6d} entries  {size / 1e6:10.2f} MB")
            total_files += files
            total_bytes += size
        print(f"{'total':9s} {total_files:6d} entries  "
              f"{total_bytes / 1e6:10.2f} MB")
        return 0
    # gc: LRU-trim the results namespace (and optionally datasets).
    reports = gc_cache_dir(
        args.cache_dir,
        max_result_bytes=_mb_to_bytes(args.max_mb),
        max_dataset_bytes=_mb_to_bytes(args.datasets_max_mb),
    )
    if not reports:
        print("nothing to do: pass --max-mb and/or --datasets-max-mb",
              file=sys.stderr)
        return 2
    for report in reports:
        print(report.describe())
    return 0


def _mb_to_bytes(mb: float | None) -> int | None:
    return None if mb is None else int(mb * 1_000_000)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _non_negative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _non_negative_float(value: str) -> float:
    parsed = float(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if not parsed > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {parsed}")
    return parsed


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """The execution-engine knobs every matrix-running command shares."""
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for cell dispatch (default 1)")
    parser.add_argument("--cache-dir",
                        help="on-disk cache for datasets and finished cells; "
                             "use a fresh directory after code changes")
    parser.add_argument("--retries", type=_non_negative_int, default=0,
                        help="extra attempts per failing cell")
    parser.add_argument("--cache-max-mb", type=_non_negative_float,
                        help="LRU byte budget for the on-disk result cache, "
                             "enforced after every stored cell")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Reproduction pipeline for 'Expectations Versus "
                    "Reality' (DSN 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="print Tables I-III")
    p_tables.add_argument("--which", choices=("1", "2", "3", "all"),
                          default="all")
    p_tables.set_defaults(func=_cmd_tables)

    p_gen = sub.add_parser("generate", help="synthesise a dataset")
    p_gen.add_argument("dataset")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--scale", type=float, default=0.1)
    p_gen.add_argument("--output", help="pcap output path")
    p_gen.set_defaults(func=_cmd_generate)

    p_eval = sub.add_parser("evaluate", help="run one Table IV cell")
    p_eval.add_argument("ids", choices=("Kitsune", "HELAD", "DNN", "Slips"))
    p_eval.add_argument("dataset")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--scale", type=float, default=0.2)
    p_eval.add_argument("--seeds", type=_positive_int, default=1,
                        help="sweep N consecutive seeds starting at --seed "
                             "and report mean±std (default 1: single run)")
    p_eval.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for a multi-seed sweep")
    p_eval.add_argument("--cache-dir",
                        help="on-disk cache reused across sweep runs")
    p_eval.add_argument("--json",
                        help="write the result (or the multi-seed sweep "
                             "distributions) to this path as JSON")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_t4 = sub.add_parser("table4", help="run the Table IV matrix")
    p_t4.add_argument("--seed", type=int, default=0)
    p_t4.add_argument("--scale", type=float, default=0.35)
    p_t4.add_argument("--ids", nargs="+",
                      default=["Kitsune", "HELAD", "DNN", "Slips"])
    p_t4.add_argument("--datasets", nargs="+")
    _add_engine_args(p_t4)
    p_t4.set_defaults(func=_cmd_table4)

    p_sweep = sub.add_parser(
        "table4-sweep",
        help="run the Table IV matrix across N seeds; report mean±std",
    )
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="first seed of the sweep (default 0)")
    p_sweep.add_argument("--seeds", type=_positive_int, default=3,
                         help="number of consecutive seeds (default 3)")
    p_sweep.add_argument("--scale", type=float, default=0.35)
    p_sweep.add_argument("--ids", nargs="+",
                         default=["Kitsune", "HELAD", "DNN", "Slips"])
    p_sweep.add_argument("--datasets", nargs="+")
    p_sweep.add_argument("--scales", type=_parse_scales,
                         help="comma-separated scale grid (e.g. "
                              "0.1,0.5,1.0); renders one mean±std table "
                              "per scale and overrides --scale")
    p_sweep.add_argument("--json",
                         help="write the sweep distributions to this "
                              "path as JSON (a list of per-scale sweeps "
                              "when --scales is given)")
    _add_engine_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_table4_sweep)

    p_stream = sub.add_parser(
        "stream",
        help="run an IDS online over a live packet stream",
    )
    p_stream.add_argument("--ids", default="Kitsune",
                          help="IDS to run (case-insensitive: kitsune, "
                               "helad, dnn, slips)")
    p_stream.add_argument("--dataset", default="Mirai",
                          help="synthetic dataset to replay "
                               "(case-insensitive)")
    p_stream.add_argument("--pcap",
                          help="replay a capture file instead of a "
                               "synthetic dataset (unlabelled: requires "
                               "--threshold)")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--scale", type=float, default=0.2,
                          help="dataset generation scale (dataset mode)")
    p_stream.add_argument("--window", type=_parse_duration, default=10.0,
                          help="metrics window width (e.g. 10s, 2m; "
                               "default 10s)")
    p_stream.add_argument("--batch", type=_positive_int, default=256,
                          help="micro-batch size for online scoring "
                               "(a pure throughput knob: scores are "
                               "bit-identical at any batch size; "
                               "batch-capable IDSs score each "
                               "micro-batch through their packed "
                               "batched engine — the report's "
                               "scoring_path note records whether the "
                               "batched path or the per-packet "
                               "fallback ran)")
    p_stream.add_argument("--threshold", type=float,
                          help="fixed alert threshold; default derives "
                               "the batch pipeline's standardized "
                               "threshold post hoc (dataset mode only)")
    p_stream.add_argument("--train-packets", type=_non_negative_int,
                          default=None,
                          help="warmup prefix length for the live-capture "
                               "paths (pcap, or dataset with --workers). "
                               "Default: 1000 in pcap mode; in sharded "
                               "dataset mode the batch split's fraction "
                               "of the stream, so small scales still "
                               "leave packets to score")
    p_stream.add_argument("--schema", choices=("netflow", "cicflow"),
                          default="netflow",
                          help="flow feature schema for flow-level IDSs")
    p_stream.add_argument("--feature-backend",
                          choices=("auto", "scalar", "vector-numpy",
                                   "vector-native", "vector-native-mt"),
                          default=None,
                          help="pin the AfterImage compute backend for "
                               "packet-level IDSs (see repro-cli "
                               "backends); every backend is "
                               "bit-identical to the scalar reference, "
                               "so this is a pure throughput knob. "
                               "'auto' picks the best backend the host "
                               "can run; the report's feature_backend "
                               "note records the resolved choice")
    p_stream.add_argument("--ingest-backend",
                          choices=("auto", "packet-objects",
                                   "columnar-mmap"),
                          default=None,
                          help="how capture bytes become features "
                               "(pcap mode, packet IDSs): "
                               "'packet-objects' replays Packet "
                               "objects one by one (default); "
                               "'columnar-mmap' mmaps the capture and "
                               "decodes straight into column batches "
                               "(bit-identical scores, several times "
                               "faster); 'auto' picks columnar when "
                               "the source and detector support it. "
                               "The report's ingest_backend note "
                               "records the resolved choice")
    p_stream.add_argument("--workers", type=_positive_int,
                          help="shard the stream across N detector worker "
                               "processes (flow-consistent channel "
                               "sharding, merged order-stable sink; "
                               "packet IDSs only). --workers 1 runs the "
                               "sharded engine single-worker, "
                               "bit-identical to the in-process path")
    p_stream.add_argument("--checkpoint-every", type=_positive_int,
                          default=5000,
                          help="sharded mode: checkpoint each worker's "
                               "live detector every N shard packets "
                               "(crash-resume granularity; default 5000)")
    p_stream.add_argument("--checkpoint-dir",
                          help="sharded mode: keep checkpoints under this "
                               "directory (default: scratch dir, removed "
                               "after a clean run)")
    p_stream.add_argument("--pace", type=_positive_float,
                          help="sharded mode: replay at this multiple of "
                               "capture time (1.0 = wall-clock pacing; "
                               "default: as fast as possible)")
    p_stream.add_argument("--metrics-out",
                          help="export periodic obs metric snapshots to "
                               "this JSONL file (enables the obs layer "
                               "for the run; inspect with repro-cli "
                               "obs-report)")
    p_stream.add_argument("--metrics-interval", type=_parse_duration,
                          default=5.0,
                          help="minimum time between metric snapshots "
                               "(e.g. 2s, 1m; default 5s). A final "
                               "snapshot is always written at end of "
                               "run")
    p_stream.add_argument("--json", help="write the stream report to "
                                         "this path as JSON")
    p_stream.add_argument("--quiet", action="store_true",
                          help="suppress per-window live output")
    p_stream.set_defaults(func=_cmd_stream)

    p_profile = sub.add_parser(
        "profile",
        help="time the packet path stage by stage (ingest, netstat, "
             "kitnet-train, batched kitnet training, per-packet kitnet, "
             "batched kitnet)",
    )
    p_profile.add_argument("--dataset", default="Mirai",
                           help="synthetic dataset to replay "
                                "(case-insensitive)")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--scale", type=float, default=0.2,
                           help="dataset generation scale (default 0.2)")
    p_profile.add_argument("--packets", type=_positive_int,
                           help="cap the replay at this many packets")
    p_profile.add_argument("--engine",
                           choices=("vector", "vector-numpy",
                                    "vector-native", "vector-native-mt",
                                    "scalar"),
                           default="vector",
                           help="NetStat feature engine to profile "
                                "(default vector: native kernel when "
                                "available; the profile's "
                                "feature_backend field records the "
                                "resolved backend)")
    p_profile.add_argument("--ingest-backend",
                           choices=("auto", "packet-objects",
                                    "columnar-mmap"),
                           default=None,
                           help="ingest backend for the capture-read "
                                "stage (default packet-objects; "
                                "columnar-mmap decodes the scratch "
                                "capture into column batches and feeds "
                                "netstat columns directly)")
    p_profile.add_argument("--batch", type=_positive_int, default=256,
                           help="micro-batch size for the kitnet-batch "
                                "stage (default 256)")
    p_profile.add_argument("--train-batch", type=_positive_int, default=32,
                           help="mini-batch size for the "
                                "kitnet-train-batched stage (default 32)")
    p_profile.add_argument("--train-workers", type=_positive_int,
                           help="profile the cross-group parallel online "
                                "training engine with this many workers "
                                "(bit-identical, parity-checked) instead "
                                "of mini-batch SGD")
    p_profile.add_argument("--no-compare", action="store_true",
                           help="skip the scalar-reference NetStat "
                                "timing comparison")
    p_profile.add_argument("--json", help="write the profile to this "
                                          "path as JSON")
    p_profile.set_defaults(func=_cmd_profile)

    p_backends = sub.add_parser(
        "backends",
        help="list registered compute backends (feature engine, "
             "ingest, ensemble) with host capability discovery",
    )
    p_backends.add_argument("--json",
                            help="write the capability report to this "
                                 "path as JSON")
    p_backends.set_defaults(func=_cmd_backends)

    p_obs = sub.add_parser(
        "obs-report",
        help="pretty-print or diff obs metric snapshot files "
             "(the JSONL written by stream --metrics-out)",
    )
    p_obs.add_argument("files", nargs="+",
                       help="one snapshot file to render (the last "
                            "snapshot by default), or two files to "
                            "diff (last snapshot of each)")
    p_obs.add_argument("--all", action="store_true",
                       help="render every snapshot in the file, not "
                            "just the last one")
    p_obs.add_argument("--prom", action="store_true",
                       help="emit Prometheus text exposition instead "
                            "of the human-readable report")
    p_obs.set_defaults(func=_cmd_obs_report)

    p_cache = sub.add_parser("cache",
                             help="inspect or trim an on-disk cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_stats = cache_sub.add_parser("stats", help="per-namespace entry "
                                                 "counts and sizes")
    p_stats.add_argument("--cache-dir", required=True)
    p_stats.set_defaults(func=_cmd_cache)
    p_gc = cache_sub.add_parser(
        "gc", help="LRU-evict entries down to a byte budget")
    p_gc.add_argument("--cache-dir", required=True)
    p_gc.add_argument("--max-mb", type=_non_negative_float,
                      help="byte budget for the results namespace (MB)")
    p_gc.add_argument("--datasets-max-mb", type=_non_negative_float,
                      help="byte budget for the datasets namespace (MB)")
    p_gc.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
