"""Synthetic emulation of CICIDS2017 (Sharafaldin et al., ICISSp 2018).

The real dataset: five days of traffic in a two-network testbed with 25
users across diverse OSes; benign traffic is profile-generated (web,
email, FTP, SSH, streaming); attacks include brute force, DoS
(Hulk/Slowloris/GoldenEye), web attacks, infiltration, botnet and
DDoS. Labelled flows with ~80 CICFlowMeter features.

Our emulation preserves what the evaluated IDSs are sensitive to:
*wide* heterogeneous benign traffic (many services, heavy-tailed
volumes), attacks that are a small minority of packets, and the full
CICFlowMeter feature schema.
"""

from __future__ import annotations

from repro.datasets.attacks import (
    ssh_bruteforce,
    ftp_bruteforce,
    syn_flood,
    slowloris,
    http_flood,
    web_attack_session,
    data_exfiltration,
    port_scan,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.benign import (
    email_session,
    file_transfer_session,
    https_session,
    ssh_interactive_session,
    video_stream_session,
    web_browsing_session,
)
from repro.datasets.traffic import Network
from repro.flows.cicflow import CICFLOW_FEATURE_NAMES
from repro.utils.rng import SeededRNG

INFO = DatasetInfo(
    name="CICIDS2017",
    year=2017,
    characteristics=(
        "Includes traffic from various devices and operating systems. "
        "Labelled with 80 features over 5 days."
    ),
    relevance=(
        "Comprehensive range of attacks; ideal for evaluating modern IDSs "
        "due to diversity and extensive feature set."
    ),
    used=True,
    attack_families=(
        "bruteforce-ssh", "bruteforce-ftp", "dos-syn-flood", "dos-slowloris",
        "dos-http-flood", "web-attack", "data-exfiltration", "reconnaissance",
    ),
    domain="enterprise",
)


def generate(seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate the CICIDS2017 emulation.

    ``scale`` multiplies session counts; scale=1.0 yields roughly 60k
    packets over a simulated working day.
    """
    rng = SeededRNG(seed, "cicids2017")
    network = Network(subnet="192.168", rng=rng.child("net"))
    workstations = network.hosts(14, "ws")
    web_server = network.host("web")
    mail_server = network.host("mail")
    ftp_server = network.host("ftp")
    ssh_server = network.host("ssh")
    resolver = network.host("dns")
    stream_server = network.host("stream")
    attacker = network.host("attacker")  # the testbed's external Kali box

    day = 8 * 3600.0
    streams = []

    # ---- benign background: heterogeneous enterprise activity --------
    benign_rng = rng.child("benign")

    def sessions(count: int):
        return int(max(1, round(count * scale)))

    for i in range(sessions(260)):
        client = workstations[int(benign_rng.integers(0, len(workstations)))]
        start = float(benign_rng.uniform(0, day))
        kind = benign_rng.random()
        session_rng = benign_rng.child(f"web-{i}")
        if kind < 0.45:
            streams.append(
                web_browsing_session(session_rng, start, client, web_server,
                                     network, resolver=resolver)
            )
        elif kind < 0.70:
            streams.append(
                https_session(session_rng, start, client, web_server, network)
            )
        elif kind < 0.80:
            streams.append(
                email_session(session_rng, start, client, mail_server, network)
            )
        elif kind < 0.90:
            streams.append(
                file_transfer_session(session_rng, start, client, ftp_server,
                                      network,
                                      download=bool(benign_rng.random() < 0.7))
            )
        elif kind < 0.96:
            streams.append(
                ssh_interactive_session(session_rng, start, client, ssh_server,
                                        network)
            )
        else:
            streams.append(
                video_stream_session(session_rng, start, client, stream_server,
                                     network)
            )

    # ---- attack schedule (the dataset's Tuesday-Friday scenarios) ----
    attack_rng = rng.child("attacks")
    streams.append(
        ssh_bruteforce(attack_rng.child("ssh-bf"), day * 0.10, attacker,
                       ssh_server, network,
                       attempts=sessions(90))
    )
    streams.append(
        ftp_bruteforce(attack_rng.child("ftp-bf"), day * 0.18, attacker,
                       ftp_server, network, attempts=sessions(90))
    )
    streams.append(
        syn_flood(attack_rng.child("hulk"), day * 0.32, attacker, web_server,
                  packets_count=sessions(2500), rate=2000.0)
    )
    streams.append(
        slowloris(attack_rng.child("slowloris"), day * 0.40, attacker,
                  web_server, network, connections=sessions(40))
    )
    streams.append(
        http_flood(attack_rng.child("goldeneye"), day * 0.48, attacker,
                   web_server, network, requests=sessions(120))
    )
    for j in range(sessions(8)):
        streams.append(
            web_attack_session(attack_rng.child(f"webatk-{j}"),
                               day * 0.56 + j * 120.0, attacker, web_server,
                               network)
        )
    streams.append(
        data_exfiltration(attack_rng.child("infiltration"), day * 0.68,
                          workstations[0], attacker, network,
                          volume=int(300_000 * scale) + 50_000)
    )
    streams.append(
        port_scan(attack_rng.child("portscan"), day * 0.80, attacker,
                  web_server, ports=sessions(250), rate=150.0)
    )

    packets = merge_streams(streams)
    return SyntheticDataset(
        name="CICIDS2017",
        packets=packets,
        info=INFO,
        provided_flow_features=CICFLOW_FEATURE_NAMES,
        generation_params={"seed": seed, "scale": scale},
    )
