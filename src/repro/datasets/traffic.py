"""The traffic generator engine: hosts, conversations, primitives.

Dataset emulations are assembled from these building blocks: a
:class:`Network` allocates addressed hosts; conversation builders emit
realistic packet exchanges (TCP handshake / data / teardown, UDP
request-response, DNS lookups, ICMP pings) with jittered timing. All
randomness flows through :class:`repro.utils.rng.SeededRNG`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import random_mac
from repro.net.dns import DNSAnswer, DNSMessage, DNSQuestion
from repro.net.ethernet import EthernetHeader
from repro.net.icmp import ICMPHeader, TYPE_ECHO_REPLY, TYPE_ECHO_REQUEST
from repro.net.ipv4 import IPv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags, TCPHeader
from repro.net.udp import UDPHeader
from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class Host:
    """An addressed endpoint."""

    ip: str
    mac: str
    name: str = ""


@dataclass
class Network:
    """Allocates hosts inside a /16 and hands out ephemeral ports."""

    subnet: str = "192.168"
    rng: SeededRNG = field(default_factory=lambda: SeededRNG(0, "network"))
    _next_host: int = 1
    _next_port: int = 32768

    def host(self, name: str = "") -> Host:
        """Allocate the next host address."""
        index = self._next_host
        self._next_host += 1
        third, fourth = divmod(index, 254)
        if third > 254:
            raise RuntimeError("subnet exhausted")
        ip = f"{self.subnet}.{third}.{fourth + 1}"
        return Host(ip=ip, mac=random_mac(self.rng), name=name or f"host-{index}")

    def hosts(self, count: int, prefix: str = "host") -> list[Host]:
        return [self.host(f"{prefix}-{i}") for i in range(count)]

    def ephemeral_port(self) -> int:
        """Next client-side port, wrapping within the ephemeral range."""
        port = self._next_port
        self._next_port += 1
        if self._next_port > 60999:
            self._next_port = 32768
        return port


def _tcp_packet(
    ts: float,
    src: Host,
    dst: Host,
    sport: int,
    dport: int,
    flags: TCPFlags,
    payload: bytes = b"",
    *,
    seq: int = 0,
    ack: int = 0,
    label: int = 0,
    attack_type: str = "",
    window: int = 65535,
    ttl: int = 64,
) -> Packet:
    return Packet(
        timestamp=ts,
        ether=EthernetHeader(src_mac=src.mac, dst_mac=dst.mac),
        ip=IPv4Header(src_ip=src.ip, dst_ip=dst.ip, protocol=PROTO_TCP, ttl=ttl),
        transport=TCPHeader(
            src_port=sport, dst_port=dport, flags=flags, seq=seq, ack=ack, window=window
        ),
        payload=payload,
        label=label,
        attack_type=attack_type,
    )


def _udp_packet(
    ts: float,
    src: Host,
    dst: Host,
    sport: int,
    dport: int,
    payload: bytes = b"",
    *,
    label: int = 0,
    attack_type: str = "",
    ttl: int = 64,
) -> Packet:
    return Packet(
        timestamp=ts,
        ether=EthernetHeader(src_mac=src.mac, dst_mac=dst.mac),
        ip=IPv4Header(src_ip=src.ip, dst_ip=dst.ip, protocol=PROTO_UDP, ttl=ttl),
        transport=UDPHeader(src_port=sport, dst_port=dport),
        payload=payload,
        label=label,
        attack_type=attack_type,
    )


def tcp_conversation(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    *,
    sport: int,
    dport: int,
    request_sizes: list[int],
    response_sizes: list[int],
    rtt: float = 0.01,
    think_time: float = 0.05,
    label: int = 0,
    attack_type: str = "",
    graceful_close: bool = True,
    periodic_rounds: bool = False,
) -> list[Packet]:
    """A full TCP conversation: handshake, alternating request/response
    bursts (segmented at an effective 1448-byte MSS), then FIN teardown.

    ``request_sizes[i]`` / ``response_sizes[i]`` pair up into exchange
    rounds; unequal lengths are allowed (extra entries are one-sided).

    ``periodic_rounds=True`` spaces rounds at ``think_time`` with ~2%
    Gaussian jitter (IoT telemetry clocks); the default draws
    exponential think times (bursty human-driven sessions).
    """
    packets: list[Packet] = []
    ts = start
    seq_c, seq_s = int(rng.integers(1, 2**31)), int(rng.integers(1, 2**31))

    def jitter(scale: float) -> float:
        return float(rng.exponential(scale)) + 1e-6

    def round_delay() -> float:
        if periodic_rounds:
            return max(1e-6, think_time * (1.0 + float(rng.normal(0, 0.02))))
        return jitter(think_time)

    packets.append(
        _tcp_packet(ts, client, server, sport, dport, TCPFlags.SYN, seq=seq_c,
                    label=label, attack_type=attack_type)
    )
    ts += rtt / 2 + jitter(rtt / 10)
    packets.append(
        _tcp_packet(ts, server, client, dport, sport, TCPFlags.SYN | TCPFlags.ACK,
                    seq=seq_s, ack=seq_c + 1, label=label, attack_type=attack_type)
    )
    ts += rtt / 2 + jitter(rtt / 10)
    packets.append(
        _tcp_packet(ts, client, server, sport, dport, TCPFlags.ACK,
                    seq=seq_c + 1, ack=seq_s + 1, label=label, attack_type=attack_type)
    )
    seq_c += 1
    seq_s += 1

    mss = 1448
    rounds = max(len(request_sizes), len(response_sizes))
    for i in range(rounds):
        req = request_sizes[i] if i < len(request_sizes) else 0
        resp = response_sizes[i] if i < len(response_sizes) else 0
        if req > 0:
            ts += round_delay()
            for offset in range(0, req, mss):
                chunk = min(mss, req - offset)
                flags = TCPFlags.ACK | (
                    TCPFlags.PSH if offset + chunk >= req else TCPFlags(0)
                )
                packets.append(
                    _tcp_packet(ts, client, server, sport, dport, flags,
                                payload=b"\x00" * chunk, seq=seq_c, ack=seq_s,
                                label=label, attack_type=attack_type)
                )
                seq_c += chunk
                ts += jitter(rtt / 20)
        if resp > 0:
            ts += rtt / 2 + jitter(rtt / 10)
            for offset in range(0, resp, mss):
                chunk = min(mss, resp - offset)
                flags = TCPFlags.ACK | (
                    TCPFlags.PSH if offset + chunk >= resp else TCPFlags(0)
                )
                packets.append(
                    _tcp_packet(ts, server, client, dport, sport, flags,
                                payload=b"\x00" * chunk, seq=seq_s, ack=seq_c,
                                label=label, attack_type=attack_type)
                )
                seq_s += chunk
                ts += jitter(rtt / 20)
            # Client ACKs the response burst.
            ts += rtt / 2 + jitter(rtt / 10)
            packets.append(
                _tcp_packet(ts, client, server, sport, dport, TCPFlags.ACK,
                            seq=seq_c, ack=seq_s, label=label,
                            attack_type=attack_type)
            )

    if graceful_close:
        ts += round_delay()
        packets.append(
            _tcp_packet(ts, client, server, sport, dport,
                        TCPFlags.FIN | TCPFlags.ACK, seq=seq_c, ack=seq_s,
                        label=label, attack_type=attack_type)
        )
        ts += rtt / 2 + jitter(rtt / 10)
        packets.append(
            _tcp_packet(ts, server, client, dport, sport,
                        TCPFlags.FIN | TCPFlags.ACK, seq=seq_s, ack=seq_c + 1,
                        label=label, attack_type=attack_type)
        )
        ts += rtt / 2 + jitter(rtt / 10)
        packets.append(
            _tcp_packet(ts, client, server, sport, dport, TCPFlags.ACK,
                        seq=seq_c + 1, ack=seq_s + 1, label=label,
                        attack_type=attack_type)
        )
    return packets


def udp_exchange(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    *,
    sport: int,
    dport: int,
    request_size: int,
    response_size: int = 0,
    rtt: float = 0.01,
    label: int = 0,
    attack_type: str = "",
) -> list[Packet]:
    """A UDP request with an optional response."""
    packets = [
        _udp_packet(start, client, server, sport, dport,
                    payload=b"\x00" * request_size, label=label,
                    attack_type=attack_type)
    ]
    if response_size > 0:
        ts = start + rtt / 2 + float(rng.exponential(rtt / 10))
        packets.append(
            _udp_packet(ts, server, client, dport, sport,
                        payload=b"\x00" * response_size, label=label,
                        attack_type=attack_type)
        )
    return packets


def dns_lookup(
    rng: SeededRNG,
    start: float,
    client: Host,
    resolver: Host,
    domain: str,
    answer_ip: str,
    *,
    sport: int,
    rtt: float = 0.02,
    label: int = 0,
    attack_type: str = "",
) -> list[Packet]:
    """A DNS A query and its response."""
    tid = int(rng.integers(0, 65536))
    query = DNSMessage(transaction_id=tid, questions=[DNSQuestion(domain)])
    reply = DNSMessage(
        transaction_id=tid,
        is_response=True,
        questions=[DNSQuestion(domain)],
        answers=[DNSAnswer(domain, answer_ip)],
    )
    request = _udp_packet(start, client, resolver, sport, 53,
                          payload=query.to_bytes(), label=label,
                          attack_type=attack_type)
    ts = start + rtt / 2 + float(rng.exponential(rtt / 10))
    response = _udp_packet(ts, resolver, client, 53, sport,
                           payload=reply.to_bytes(), label=label,
                           attack_type=attack_type)
    return [request, response]


def icmp_ping(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    *,
    count: int = 1,
    interval: float = 1.0,
    rtt: float = 0.01,
    payload_size: int = 56,
    label: int = 0,
    attack_type: str = "",
) -> list[Packet]:
    """``count`` echo request/reply pairs."""
    packets: list[Packet] = []
    identifier = int(rng.integers(0, 65536))
    ts = start
    for seq in range(count):
        request = Packet(
            timestamp=ts,
            ether=EthernetHeader(src_mac=client.mac, dst_mac=server.mac),
            ip=IPv4Header(src_ip=client.ip, dst_ip=server.ip, protocol=PROTO_ICMP),
            transport=ICMPHeader(icmp_type=TYPE_ECHO_REQUEST,
                                 identifier=identifier, sequence=seq),
            payload=b"\x00" * payload_size,
            label=label,
            attack_type=attack_type,
        )
        reply_ts = ts + rtt / 2 + float(rng.exponential(rtt / 10))
        reply = Packet(
            timestamp=reply_ts,
            ether=EthernetHeader(src_mac=server.mac, dst_mac=client.mac),
            ip=IPv4Header(src_ip=server.ip, dst_ip=client.ip, protocol=PROTO_ICMP),
            transport=ICMPHeader(icmp_type=TYPE_ECHO_REPLY,
                                 identifier=identifier, sequence=seq),
            payload=b"\x00" * payload_size,
            label=label,
            attack_type=attack_type,
        )
        packets.extend([request, reply])
        ts += interval + float(rng.normal(0, interval * 0.02))
    return packets
