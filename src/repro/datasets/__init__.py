"""Dataset substrate: synthetic emulations of the evaluated datasets.

The five evaluated datasets (paper Table II) are generated synthetically
— see DESIGN.md for the substitution rationale — and the thirteen
examined-but-excluded datasets (Table III) are carried as metadata.
"""

from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.registry import (
    EXCLUDED_DATASETS,
    EXTRA_DATASETS,
    USED_DATASETS,
    USED_DATASET_INFO,
    all_dataset_infos,
    generate_dataset,
    generate_dataset_uncached,
    install_dataset_cache,
)

__all__ = [
    "DatasetInfo",
    "SyntheticDataset",
    "merge_streams",
    "generate_dataset",
    "generate_dataset_uncached",
    "install_dataset_cache",
    "all_dataset_infos",
    "USED_DATASETS",
    "USED_DATASET_INFO",
    "EXTRA_DATASETS",
    "EXCLUDED_DATASETS",
]
