"""Dataset abstractions: metadata records and synthetic captures.

Two concerns live here:

* :class:`DatasetInfo` — the metadata the paper tabulates (Tables II
  and III): characteristics, selection or exclusion reasons, formats.
* :class:`SyntheticDataset` — a labelled synthetic capture emulating
  one of the five evaluated datasets, with helpers for the paper's
  methodology steps (temporal ordering, flow export, train/test split
  by time, pcap persistence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.flows.assembler import FlowAssembler
from repro.flows.record import FlowRecord
from repro.net.packet import Packet
from repro.net.pcap import write_pcap
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for one examined dataset (paper Tables II/III)."""

    name: str
    year: int
    characteristics: str
    relevance: str
    used: bool
    exclusion_reason: str = ""
    has_pcap: bool = True
    has_flows: bool = True
    labelled: bool = True
    attack_families: tuple[str, ...] = ()
    domain: str = "enterprise"  # "enterprise" | "iot" | "backbone" | "honeypot"


@dataclass
class SyntheticDataset:
    """A labelled synthetic capture produced by a dataset generator.

    ``packets`` are in timestamp order. ``provided_flow_features`` lists
    which canonical flow-feature names the *real* dataset publishes —
    the encoder zero-fills everything else, modelling the adaptation
    loss the paper reports (Section V-5).
    """

    name: str
    packets: list[Packet]
    info: DatasetInfo
    provided_flow_features: tuple[str, ...] = ()
    generation_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for earlier, later in zip(self.packets, self.packets[1:]):
            if later.timestamp < earlier.timestamp - 1e-9:
                raise ValueError(
                    f"dataset {self.name!r} packets are not timestamp-ordered"
                )

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def labels(self) -> list[int]:
        return [p.label for p in self.packets]

    @property
    def attack_prevalence(self) -> float:
        """Fraction of attack packets."""
        if not self.packets:
            return 0.0
        return sum(p.label for p in self.packets) / len(self.packets)

    @property
    def duration(self) -> float:
        if not self.packets:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    def flows(
        self, *, idle_timeout: float = 120.0, active_timeout: float = 3600.0
    ) -> list[FlowRecord]:
        """Export completed bidirectional flows."""
        assembler = FlowAssembler(
            idle_timeout=idle_timeout, active_timeout=active_timeout
        )
        return assembler.assemble(self.packets)

    def split_by_time(self, train_fraction: float) -> tuple[list[Packet], list[Packet]]:
        """Split into (train, test) at a time cut — the only honest split
        for online IDSs that learn temporal statistics."""
        check_fraction("train_fraction", train_fraction)
        cut = int(len(self.packets) * train_fraction)
        return self.packets[:cut], self.packets[cut:]

    def benign_prefix(self, max_packets: int | None = None) -> list[Packet]:
        """The leading run of benign packets — what the paper uses to
        train autoencoder IDSs when a dataset has no explicit benign
        baseline (Section I)."""
        prefix: list[Packet] = []
        for packet in self.packets:
            if packet.label:
                break
            prefix.append(packet)
            if max_packets is not None and len(prefix) >= max_packets:
                break
        return prefix

    def to_pcap(self, path: str | Path) -> int:
        """Persist as a libpcap file (labels are lost — by design)."""
        return write_pcap(path, self.packets)

    def attack_type_counts(self) -> dict[str, int]:
        """Packet counts per attack family."""
        counts: dict[str, int] = {}
        for packet in self.packets:
            if packet.label and packet.attack_type:
                counts[packet.attack_type] = counts.get(packet.attack_type, 0) + 1
        return counts


def merge_streams(streams: Sequence[Sequence[Packet]]) -> list[Packet]:
    """Merge several packet streams into one timestamp-ordered list."""
    merged: list[Packet] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda p: p.timestamp)
    return merged
