"""A KDDCup-'99'-like reference corpus (the DNN's shipped training data).

The DNN study [18] trains on KDDCup-99, whose train split is famously
attack-dominated (~80% attack, mostly the smurf/neptune DoS floods).
The paper under reproduction runs that pipeline out of the box, which
means the network arrives at every evaluation dataset *already trained
on this distribution* (Section IV-A-3: no per-dataset customisation).

KDD-99 ships as feature CSVs with no pcaps (the very limitation that
excluded it from Table II), so this module generates labelled flows
directly via the normal traffic generators — the corpus exists to feed
the DNN adapter, not to be evaluated against.
"""

from __future__ import annotations

from repro.datasets.attacks import (
    port_scan,
    ssh_bruteforce,
    syn_flood,
    udp_flood_ddos,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.benign import (
    email_session,
    ssh_interactive_session,
    web_browsing_session,
)
from repro.datasets.traffic import Network
from repro.flows.netflow import NETFLOW_FEATURE_NAMES
from repro.utils.rng import SeededRNG

INFO = DatasetInfo(
    name="KDD-reference",
    year=1999,
    characteristics=(
        "Attack-dominated reference corpus emulating the KDDCup-99 train "
        "split (~80% attack, DoS-flood heavy)."
    ),
    relevance="Training corpus shipped with the DNN study's pipeline.",
    used=False,
    exclusion_reason="Reference corpus only; never evaluated against.",
    has_pcap=False,
)


def generate(seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate the reference corpus (~20k packets at scale=1.0)."""
    rng = SeededRNG(seed, "kdd-reference")
    network = Network(subnet="172.16", rng=rng.child("net"))
    clients = network.hosts(6, "client")
    server = network.host("server")
    mail = network.host("mail")
    attacker = network.host("attacker")
    bots = network.hosts(3, "bot")

    span = 3600.0
    streams = []

    def scaled(count: int) -> int:
        return int(max(1, round(count * scale)))

    benign_rng = rng.child("benign")
    for i in range(scaled(40)):
        client = clients[int(benign_rng.integers(0, len(clients)))]
        start = float(benign_rng.uniform(0, span))
        session_rng = benign_rng.child(f"s-{i}")
        kind = benign_rng.random()
        if kind < 0.5:
            streams.append(
                web_browsing_session(session_rng, start, client, server, network)
            )
        elif kind < 0.8:
            streams.append(
                email_session(session_rng, start, client, mail, network)
            )
        else:
            streams.append(
                ssh_interactive_session(session_rng, start, client, server,
                                        network)
            )

    attack_rng = rng.child("attacks")
    # smurf/neptune analogues: flood-dominated attack mass.
    streams.append(
        syn_flood(attack_rng.child("neptune"), span * 0.2, attacker, server,
                  packets_count=scaled(4000), rate=1500.0)
    )
    streams.append(
        udp_flood_ddos(attack_rng.child("smurf"), span * 0.5, bots, server,
                       packets_per_bot=scaled(1500), rate_per_bot=500.0)
    )
    streams.append(
        port_scan(attack_rng.child("nmap"), span * 0.7, attacker, server,
                  ports=scaled(200), rate=100.0)
    )
    streams.append(
        ssh_bruteforce(attack_rng.child("guess"), span * 0.8, attacker,
                       server, network, attempts=scaled(60))
    )

    packets = merge_streams(streams)
    return SyntheticDataset(
        name="KDD-reference",
        packets=packets,
        info=INFO,
        provided_flow_features=NETFLOW_FEATURE_NAMES,
        generation_params={"seed": seed, "scale": scale},
    )
