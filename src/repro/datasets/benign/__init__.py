"""Benign traffic models.

Two families with deliberately different statistics, because benign
homogeneity is the variable the paper's analysis keeps returning to:

* **enterprise** (web browsing, office services): heavy-tailed object
  sizes, bursty arrivals, many distinct services — a *wide* benign
  profile that starves autoencoder IDSs of a stable baseline;
* **iot** (periodic telemetry, heartbeats): near-constant packet sizes
  and periods — a *narrow* profile that anomaly detectors model well.
"""

from repro.datasets.benign.web import web_browsing_session, https_session
from repro.datasets.benign.iot import (
    iot_dns_refresh,
    iot_heartbeat,
    iot_telemetry,
    ntp_sync,
)
from repro.datasets.benign.office import (
    email_session,
    file_transfer_session,
    ssh_interactive_session,
    video_stream_session,
)

__all__ = [
    "web_browsing_session",
    "https_session",
    "iot_telemetry",
    "iot_heartbeat",
    "iot_dns_refresh",
    "ntp_sync",
    "email_session",
    "file_transfer_session",
    "ssh_interactive_session",
    "video_stream_session",
]
