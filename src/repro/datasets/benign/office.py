"""Benign enterprise services: email, file transfer, SSH, streaming.

These add the protocol diversity that makes CICIDS2017/UNSW-NB15 benign
traffic statistically wide (many ports, asymmetric volumes, long-lived
interactive flows).
"""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, tcp_conversation
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG


def email_session(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    network: Network,
) -> list[Packet]:
    """An SMTP-like submission: envelope chatter then a message body."""
    body_size = int(2000 * (1.0 + rng.pareto(1.2)))
    body_size = min(body_size, 80_000)
    request_sizes = [30, 40, 40, body_size, 10]
    response_sizes = [80, 30, 30, 30, 30]
    return tcp_conversation(
        rng, start, client, server,
        sport=network.ephemeral_port(), dport=25,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.02, think_time=0.1,
    )


def file_transfer_session(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    network: Network,
    *,
    download: bool = True,
) -> list[Packet]:
    """A bulk FTP-like transfer; strongly asymmetric volume."""
    size = int(50_000 * (1.0 + rng.pareto(1.1)))
    size = min(size, 250_000)
    if download:
        request_sizes, response_sizes = [60, 30], [120, size]
    else:
        request_sizes, response_sizes = [60, size], [120, 30]
    return tcp_conversation(
        rng, start, client, server,
        sport=network.ephemeral_port(), dport=21,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.015, think_time=0.05,
    )


def ssh_interactive_session(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    network: Network,
    *,
    keystroke_bursts: int | None = None,
) -> list[Packet]:
    """An interactive SSH session: key exchange then small keystroke
    packets with human-scale pauses."""
    bursts = keystroke_bursts if keystroke_bursts is not None else 5 + int(
        rng.geometric(0.2)
    )
    request_sizes = [1500] + [int(rng.integers(36, 120)) for _ in range(bursts)]
    response_sizes = [1500] + [int(rng.integers(36, 400)) for _ in range(bursts)]
    return tcp_conversation(
        rng, start, client, server,
        sport=network.ephemeral_port(), dport=22,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.02, think_time=float(rng.exponential(1.5)) + 0.2,
    )


def video_stream_session(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    network: Network,
    *,
    segments: int | None = None,
) -> list[Packet]:
    """A DASH-like stream: periodic large segment downloads on 443."""
    count = segments if segments is not None else 8 + int(rng.geometric(0.25))
    request_sizes = [400] * count
    response_sizes = [int(rng.integers(20_000, 60_000)) for _ in range(count)]
    return tcp_conversation(
        rng, start, client, server,
        sport=network.ephemeral_port(), dport=443,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.02, think_time=2.0 + float(rng.normal(0, 0.1)),
    )
