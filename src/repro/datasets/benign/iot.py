"""Benign IoT traffic: periodic telemetry, heartbeats and NTP.

Near-deterministic periods and sizes on purpose — this is the narrow
benign profile that gives autoencoder IDSs a clean baseline on the IoT
datasets (paper Section VI-B-2).
"""

from __future__ import annotations

from repro.datasets.traffic import (
    Host,
    Network,
    dns_lookup,
    tcp_conversation,
    udp_exchange,
)
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG


def iot_telemetry(
    rng: SeededRNG,
    start: float,
    device: Host,
    broker: Host,
    network: Network,
    *,
    reports: int = 20,
    period: float = 5.0,
    payload_size: int = 96,
    jitter_fraction: float = 0.02,
) -> list[Packet]:
    """Periodic MQTT-style sensor reports over one TCP connection.

    Each report is a small fixed-size publish with a short broker ACK.
    """
    request_sizes = []
    response_sizes = []
    for _ in range(reports):
        wobble = int(rng.integers(-4, 5))
        request_sizes.append(max(16, payload_size + wobble))
        response_sizes.append(4)
    return tcp_conversation(
        rng, start, device, broker,
        sport=network.ephemeral_port(), dport=1883,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.004,
        think_time=period * (1.0 + float(rng.normal(0, jitter_fraction))),
        periodic_rounds=True,
    )


def iot_heartbeat(
    rng: SeededRNG,
    start: float,
    device: Host,
    server: Host,
    network: Network,
    *,
    beats: int = 30,
    period: float = 10.0,
) -> list[Packet]:
    """Small UDP keep-alives at a fixed period."""
    packets: list[Packet] = []
    sport = network.ephemeral_port()
    ts = start
    for _ in range(beats):
        packets.extend(
            udp_exchange(rng, ts, device, server, sport=sport, dport=8883,
                         request_size=32, response_size=16, rtt=0.004)
        )
        ts += period * (1.0 + float(rng.normal(0, 0.01)))
    return packets


def ntp_sync(
    rng: SeededRNG,
    start: float,
    device: Host,
    server: Host,
    network: Network,
) -> list[Packet]:
    """One NTP poll (48-byte request and response on UDP 123)."""
    return udp_exchange(
        rng, start, device, server,
        sport=network.ephemeral_port(), dport=123,
        request_size=48, response_size=48, rtt=0.02,
    )


def iot_dns_refresh(
    rng: SeededRNG,
    start: float,
    device: Host,
    resolver: Host,
    network: Network,
    broker_ip: str,
    *,
    domain: str = "broker.iot.local",
) -> list[Packet]:
    """The periodic resolver lookup IoT devices make before reconnecting."""
    return dns_lookup(
        rng, start, device, resolver, domain, broker_ip,
        sport=network.ephemeral_port(),
    )
