"""Benign web-browsing traffic: HTTP and HTTPS-like sessions.

Object sizes are Pareto-distributed and think times exponential — the
classic self-similar web-traffic model (Crovella & Bestavros) that makes
enterprise benign traffic statistically wide.
"""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, dns_lookup, tcp_conversation
from repro.net.http import HTTPRequest, HTTPResponse
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG

_PAGES = ("/", "/index.html", "/news", "/search?q=report", "/static/app.js",
          "/images/logo.png", "/api/v1/items", "/login", "/dashboard")
_DOMAINS = ("intranet.example.com", "www.example.org", "cdn.example.net",
            "mail.example.com", "wiki.example.org")


def _object_size(rng: SeededRNG, *, minimum: int = 200, alpha: float = 1.3,
                 cap: int = 60_000) -> int:
    """Pareto-tailed web object size."""
    size = int(minimum * (1.0 + rng.pareto(alpha)))
    return min(size, cap)


def web_browsing_session(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    network: Network,
    *,
    resolver: Host | None = None,
    pages: int | None = None,
) -> list[Packet]:
    """One user browsing session: optional DNS lookup, then a sequence
    of HTTP request/response exchanges over one connection."""
    packets: list[Packet] = []
    ts = start
    if resolver is not None:
        domain = str(rng.choice(_DOMAINS))
        packets.extend(
            dns_lookup(rng, ts, client, resolver, domain, server.ip,
                       sport=network.ephemeral_port())
        )
        ts += 0.03 + float(rng.exponential(0.01))
    page_count = pages if pages is not None else 1 + int(rng.geometric(0.35))
    request_sizes: list[int] = []
    response_sizes: list[int] = []
    for _ in range(page_count):
        path = str(rng.choice(_PAGES))
        request = HTTPRequest(method="GET", path=path,
                              headers={"Host": str(rng.choice(_DOMAINS)),
                                       "User-Agent": "Mozilla/5.0"})
        body = b"x" * _object_size(rng)
        response = HTTPResponse(status=200, body=body)
        request_sizes.append(len(request.to_bytes()))
        response_sizes.append(len(response.to_bytes()))
    return packets + tcp_conversation(
        rng, ts, client, server,
        sport=network.ephemeral_port(), dport=80,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.01 + float(rng.exponential(0.01)),
        think_time=float(rng.exponential(0.8)) + 0.05,
    )


def https_session(
    rng: SeededRNG,
    start: float,
    client: Host,
    server: Host,
    network: Network,
    *,
    exchanges: int | None = None,
) -> list[Packet]:
    """An HTTPS-like session on port 443: an initial handshake-sized
    exchange followed by encrypted-looking records."""
    rounds = exchanges if exchanges is not None else 2 + int(rng.geometric(0.4))
    request_sizes = [517] + [int(rng.integers(100, 1400)) for _ in range(rounds)]
    response_sizes = [int(rng.integers(2000, 5000))] + [
        _object_size(rng, minimum=500) for _ in range(rounds)
    ]
    return tcp_conversation(
        rng, start, client, server,
        sport=network.ephemeral_port(), dport=443,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.012 + float(rng.exponential(0.008)),
        think_time=float(rng.exponential(0.5)) + 0.02,
    )
