"""Synthetic emulation of BoT-IoT (Ashraf et al. 2021 / Koroniotis et al.).

The real dataset: an IoT smart-home testbed (weather station, smart
fridge, lights, etc. publishing MQTT telemetry) where Kali bots run
DDoS/DoS (TCP/UDP/HTTP), scanning and data-theft scenarios. Its defining
property — the one the paper's Slips row (accuracy 0.0018!) exposes —
is extreme class imbalance: attack traffic is >99% of packets.

The emulation: a small MQTT telemetry network plus flood-dominated
attack volume from a handful of bots.
"""

from __future__ import annotations

from repro.datasets.attacks import (
    data_exfiltration,
    port_scan,
    tcp_flood_ddos,
    udp_flood_ddos,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.benign import iot_heartbeat, iot_telemetry, ntp_sync
from repro.datasets.traffic import Network
from repro.flows.netflow import NETFLOW_FEATURE_NAMES
from repro.utils.rng import SeededRNG

INFO = DatasetInfo(
    name="BoT-IoT",
    year=2019,
    characteristics="Encompasses legitimate and emulated IoT network traffic.",
    relevance=(
        "Offers a balanced view of IDS performance in IoT settings, serving "
        "as a robust alternative to the Kitsune dataset."
    ),
    used=True,
    attack_families=(
        "ddos-tcp-flood", "ddos-udp-flood", "reconnaissance",
        "data-exfiltration",
    ),
    domain="iot",
)


def generate(seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate the BoT-IoT emulation (~70k packets at scale=1.0,
    ~97% attack packets)."""
    rng = SeededRNG(seed, "bot-iot")
    network = Network(subnet="192.168", rng=rng.child("net"))
    devices = network.hosts(8, "iot")
    broker = network.host("mqtt-broker")
    ntp_server = network.host("ntp")
    victim = network.host("victim-server")
    bots = network.hosts(4, "bot")

    span = 3600.0
    streams = []

    def scaled(count: int) -> int:
        return int(max(1, round(count * scale)))

    # ---- sparse benign telemetry (the dataset's minority class) ------
    benign_rng = rng.child("benign")
    for i, device in enumerate(devices):
        start = float(benign_rng.uniform(0, span * 0.1))
        streams.append(
            iot_telemetry(benign_rng.child(f"telemetry-{i}"), start, device,
                          broker, network, reports=scaled(40), period=8.0)
        )
        streams.append(
            iot_heartbeat(benign_rng.child(f"beat-{i}"), start + 5.0, device,
                          broker, network, beats=scaled(30), period=12.0)
        )
        streams.append(
            ntp_sync(benign_rng.child(f"ntp-{i}"), start + 2.0, device,
                     ntp_server, network)
        )

    # ---- flood-dominated attack volume --------------------------------
    attack_rng = rng.child("attacks")
    streams.append(
        udp_flood_ddos(attack_rng.child("udp"), span * 0.15, bots, victim,
                       packets_per_bot=scaled(2500), rate_per_bot=400.0)
    )
    streams.append(
        tcp_flood_ddos(attack_rng.child("tcp"), span * 0.45, bots, victim,
                       packets_per_bot=scaled(2500), rate_per_bot=400.0)
    )
    streams.append(
        port_scan(attack_rng.child("scan"), span * 0.75, bots[0], victim,
                  ports=scaled(300), rate=80.0)
    )
    streams.append(
        data_exfiltration(attack_rng.child("theft"), span * 0.85, bots[1],
                          victim, network, volume=scaled(200_000))
    )

    packets = merge_streams(streams)
    return SyntheticDataset(
        name="BoT-IoT",
        packets=packets,
        info=INFO,
        provided_flow_features=NETFLOW_FEATURE_NAMES,
        generation_params={"seed": seed, "scale": scale},
    )
