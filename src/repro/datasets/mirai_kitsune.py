"""Synthetic emulation of the Kitsune Mirai capture (Mirsky et al. 2018).

The real trace: a small IoT camera network recorded before and during a
Mirai infection — a clean benign prefix (the authors use the first
segment to train Kitsune) followed by overwhelming telnet scanning and
flooding. Published as a pcap + pre-extracted Kitsune feature matrix;
**no flow-feature CSVs** — which is exactly the adaptation pain the
paper describes for flow-level IDSs on this dataset.
"""

from __future__ import annotations

from repro.datasets.attacks import (
    mirai_flood_phase,
    mirai_infection,
    mirai_scan_phase,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.benign import iot_heartbeat, iot_telemetry, ntp_sync
from repro.datasets.traffic import Network
from repro.utils.rng import SeededRNG

INFO = DatasetInfo(
    name="Mirai",
    year=2018,
    characteristics=(
        "Data specific to Mirai botnet attacks, used with the Kitsune IDS."
    ),
    relevance=(
        "Demonstrates significant Mirai threat in IoT, allowing for "
        "practical assessment of IDS capabilities against IoT botnets."
    ),
    used=True,
    has_flows=False,  # pcap only — flow features must be derived
    attack_families=("mirai-scan", "mirai-infection", "mirai-flood"),
    domain="iot",
)

#: The real release ships a raw pcap and Kitsune's packet features, but
#: no flow CSV: adapters derive flows themselves, keeping the basic
#: volume features only.
DERIVED_FLOW_FEATURES: tuple[str, ...] = (
    "flow_duration",
    "total_fwd_packets",
    "total_bwd_packets",
    "total_length_fwd_packets",
    "total_length_bwd_packets",
    "destination_port",
    "protocol_tcp",
    "protocol_udp",
    "protocol_icmp",
    "dur",
    "proto_tcp",
    "proto_udp",
    "proto_icmp",
    "spkts",
    "dpkts",
    "sbytes",
    "dbytes",
    "sport",
    "dsport",
)


def generate(seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate the Mirai-capture emulation (~55k packets at scale=1.0).

    Layout matches the published trace: a clean benign prefix
    (~12% of packets), then scan → infection → flood.
    """
    rng = SeededRNG(seed, "mirai")
    network = Network(subnet="192.168", rng=rng.child("net"))
    cameras = network.hosts(9, "camera")
    nvr = network.host("nvr")  # network video recorder / telemetry sink
    ntp_server = network.host("ntp")
    loader = network.host("loader")
    victim = network.host("victim")
    address_space = network.hosts(60, "space")

    benign_span = 900.0
    streams = []

    def scaled(count: int) -> int:
        return int(max(1, round(count * scale)))

    # ---- clean benign prefix ------------------------------------------
    benign_rng = rng.child("benign")
    for i, camera in enumerate(cameras):
        start = float(benign_rng.uniform(0, 30.0))
        streams.append(
            iot_telemetry(benign_rng.child(f"tel-{i}"), start, camera, nvr,
                          network, reports=scaled(60), period=4.0,
                          payload_size=188)
        )
        streams.append(
            iot_heartbeat(benign_rng.child(f"hb-{i}"), start + 2.0, camera,
                          nvr, network, beats=scaled(40), period=10.0)
        )
        streams.append(
            ntp_sync(benign_rng.child(f"ntp-{i}"), start + 1.0, camera,
                     ntp_server, network)
        )

    # ---- infection chain ----------------------------------------------
    attack_rng = rng.child("attacks")
    patient_zero = cameras[0]
    scan_start = benign_span
    streams.append(
        mirai_scan_phase(attack_rng.child("scan0"), scan_start,
                         [patient_zero], address_space + cameras[1:],
                         probes_per_bot=scaled(1500), rate=120.0)
    )
    newly_infected = cameras[1:4]
    infection_start = scan_start + 300.0
    for i, victim_camera in enumerate(newly_infected):
        streams.append(
            mirai_infection(attack_rng.child(f"inf-{i}"),
                            infection_start + i * 60.0, patient_zero,
                            victim_camera, loader, network)
        )
    streams.append(
        mirai_scan_phase(attack_rng.child("scan1"), infection_start + 240.0,
                         newly_infected, address_space,
                         probes_per_bot=scaled(1200), rate=120.0)
    )
    streams.append(
        mirai_flood_phase(attack_rng.child("flood"), infection_start + 900.0,
                          [patient_zero] + newly_infected, victim,
                          packets_per_bot=scaled(1800), rate_per_bot=400.0)
    )

    packets = merge_streams(streams)
    return SyntheticDataset(
        name="Mirai",
        packets=packets,
        info=INFO,
        provided_flow_features=DERIVED_FLOW_FEATURES,
        generation_params={"seed": seed, "scale": scale},
    )
