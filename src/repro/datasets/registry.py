"""Registry of every dataset the paper examined (Tables II and III).

``USED_DATASETS`` maps the five evaluated dataset names to their
generator modules; ``EXCLUDED_DATASETS`` records the thirteen examined-
but-excluded datasets with the paper's exclusion reasons, so the
Table III bench can regenerate that inventory.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets import (
    bot_iot,
    cicids2017,
    kddcup,
    mirai_kitsune,
    stratosphere,
    ton_iot,
    unsw_nb15,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset

#: name -> generate(seed, scale) for the five evaluated datasets.
USED_DATASETS: dict[str, Callable[..., SyntheticDataset]] = {
    "CICIDS2017": cicids2017.generate,
    "UNSW-NB15": unsw_nb15.generate,
    "BoT-IoT": bot_iot.generate,
    "Stratosphere": stratosphere.generate,
    "Mirai": mirai_kitsune.generate,
}

#: Generators available beyond the Table IV set: ToN-IoT was selected in
#: the paper's Table II but superseded by BoT-IoT before Table IV;
#: KDD-reference is the DNN's cross-corpus training substrate, named
#: here so experiment cells can request it through a caching provider.
EXTRA_DATASETS: dict[str, Callable[..., SyntheticDataset]] = {
    "ToN-IoT": ton_iot.generate,
    "KDD-reference": kddcup.generate,
}

USED_DATASET_INFO: dict[str, DatasetInfo] = {
    "CICIDS2017": cicids2017.INFO,
    "UNSW-NB15": unsw_nb15.INFO,
    "BoT-IoT": bot_iot.INFO,
    "Stratosphere": stratosphere.INFO,
    "Mirai": mirai_kitsune.INFO,
}

#: Paper Table III: considered but not used, with exclusion reasons.
EXCLUDED_DATASETS: tuple[DatasetInfo, ...] = (
    DatasetInfo(
        name="KDD-Cup99", year=1999,
        characteristics="Historically significant but outdated, lacking pcap files.",
        relevance="", used=False,
        exclusion_reason=(
            "Not representative of current network behaviours; incompatible "
            "with selected IDSs due to lack of pcap files."
        ),
        has_pcap=False,
    ),
    DatasetInfo(
        name="NSL-KDD", year=2009,
        characteristics="Cleaned KDD-Cup99 derivative; still no pcap files.",
        relevance="", used=False,
        exclusion_reason=(
            "Not representative of current network behaviours; incompatible "
            "with selected IDSs due to lack of pcap files."
        ),
        has_pcap=False,
    ),
    DatasetInfo(
        name="CAIDA", year=2019,
        characteristics="Limited attack diversity and lacks full network data, unlabelled.",
        relevance="", used=False,
        exclusion_reason=(
            "Unable to train auto-encoders on the dataset due to lack of "
            "labelled results."
        ),
        labelled=False, domain="backbone",
    ),
    DatasetInfo(
        name="CIDDS", year=2017,
        characteristics="Designed for anomaly-based network security.",
        relevance="", used=False,
        exclusion_reason=(
            "Not widely used in literature, suggesting potential limitations "
            "for analysis."
        ),
    ),
    DatasetInfo(
        name="ISCX2012", year=2012,
        characteristics="Older dataset without features.",
        relevance="", used=False,
        exclusion_reason=(
            "Due to lack of features, other datasets were determined to be "
            "more suitable."
        ),
        has_flows=False,
    ),
    DatasetInfo(
        name="CICIDS2019", year=2019,
        characteristics="Modern DDoS dataset containing a variety of DDoS attack types.",
        relevance="", used=False,
        exclusion_reason=(
            "Strong modern DDoS dataset, but was not chosen due to the "
            "specific nature of attacks when compared to more general "
            "datasets used."
        ),
    ),
    DatasetInfo(
        name="Kyoto", year=2011,
        characteristics="Realistic, unsimulated dataset derived from diverse honeypots.",
        relevance="", used=False,
        exclusion_reason=(
            "Offers a different perspective to generated datasets, but not "
            "highly cited."
        ),
        domain="honeypot",
    ),
    DatasetInfo(
        name="LBNL", year=2005,
        characteristics="Heavy anonymisation and absence of payload data.",
        relevance="", used=False,
        exclusion_reason=(
            "Limits the depth of analysis for IDSs, making it less "
            "favourable for in-depth IDS evaluation."
        ),
        labelled=False,
    ),
    DatasetInfo(
        name="CICIDS2018", year=2018,
        characteristics="Diverse traffic and heavy volume without specific pcaps.",
        relevance="", used=False,
        exclusion_reason=(
            "Only available as 250gb file, data wrangling complexity and "
            "volume make processing unwieldy."
        ),
    ),
    DatasetInfo(
        name="ASNM", year=2020,
        characteristics="NIDS anomaly-based datasets developed for machine learning.",
        relevance="", used=False,
        exclusion_reason=(
            "Attack diversity is limited and not as well-cited as many "
            "other options."
        ),
    ),
    DatasetInfo(
        name="IoTID", year=2020,
        characteristics="Newer IoT dataset that aimed to target new IoT intrusion methods.",
        relevance="", used=False,
        exclusion_reason=(
            "Narrow dataset that is not as popular as the other chosen IoT "
            "datasets."
        ),
        domain="iot",
    ),
    DatasetInfo(
        name="CICDOS2017", year=2017,
        characteristics="DoS dataset generated by CIC based on the ISCX dataset.",
        relevance="", used=False,
        exclusion_reason=(
            "Narrow dataset without attack diversity of CIC dataset from "
            "the same year."
        ),
    ),
    ton_iot.INFO,
)


#: Optional process-wide caching provider consulted by
#: :func:`generate_dataset`. Installed by the runner engine (or a user)
#: so that *every* call site — including code that imports
#: ``generate_dataset`` directly — benefits from dataset reuse.
_DATASET_CACHE: Callable[..., SyntheticDataset] | None = None


def install_dataset_cache(
    provider: Callable[..., SyntheticDataset] | None,
) -> Callable[..., SyntheticDataset] | None:
    """Install (or, with ``None``, remove) the process-wide cache hook.

    ``provider`` is called as ``provider(name, seed=..., scale=...)``
    and must resolve misses via :func:`generate_dataset_uncached` —
    never :func:`generate_dataset`, which would recurse into the hook.
    Returns the previously-installed hook so callers can restore it.
    """
    global _DATASET_CACHE
    previous = _DATASET_CACHE
    _DATASET_CACHE = provider
    return previous


def canonical_dataset_name(name: str) -> str:
    """Resolve a (case-insensitive) dataset name to its registry
    spelling — lets the CLI accept ``mirai`` for ``Mirai``."""
    known = {**USED_DATASETS, **EXTRA_DATASETS}
    if name in known:
        return name
    lowered = {key.lower(): key for key in known}
    try:
        return lowered[name.lower()]
    except KeyError:
        names = ", ".join(sorted(known))
        raise KeyError(f"unknown dataset {name!r}; known: {names}") from None


def generate_dataset_uncached(
    name: str, *, seed: int = 0, scale: float = 1.0
) -> SyntheticDataset:
    """Generate a dataset by name, always from scratch."""
    generator = USED_DATASETS.get(name) or EXTRA_DATASETS.get(name)
    if generator is None:
        known = ", ".join(sorted(USED_DATASETS) + sorted(EXTRA_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return generator(seed=seed, scale=scale)


def generate_dataset(name: str, *, seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate an evaluated dataset (or an extra) by name, through the
    installed cache hook when one is present."""
    if _DATASET_CACHE is not None:
        return _DATASET_CACHE(name, seed=seed, scale=scale)
    return generate_dataset_uncached(name, seed=seed, scale=scale)


def all_dataset_infos() -> list[DatasetInfo]:
    """Every examined dataset: the five used plus the thirteen excluded."""
    return list(USED_DATASET_INFO.values()) + list(EXCLUDED_DATASETS)
