"""Synthetic emulation of ToN-IoT (Moustafa 2021).

Table II lists ToN-IoT alongside BoT-IoT as the IoT alternatives; the
paper's Table IV ultimately reports BoT-IoT only ("the selection of
datasets evolved slightly over the experimentation period"). The
emulation is provided so users can run the pairing the paper originally
planned: an edge-IoT testbed mixing telemetry with a broader attack
palette than BoT-IoT (injection and password attacks next to the
floods), at a less extreme class balance.
"""

from __future__ import annotations

from repro.datasets.attacks import (
    backdoor_session,
    port_scan,
    ssh_bruteforce,
    syn_flood,
    udp_flood_ddos,
    web_attack_session,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.benign import (
    iot_dns_refresh,
    iot_heartbeat,
    iot_telemetry,
    ntp_sync,
    web_browsing_session,
)
from repro.datasets.traffic import Network
from repro.flows.netflow import NETFLOW_FEATURE_NAMES
from repro.utils.rng import SeededRNG

INFO = DatasetInfo(
    name="ToN-IoT",
    year=2021,
    characteristics="Encompasses legitimate and emulated IoT network traffic.",
    relevance=(
        "Offers a balanced view of IDS performance in IoT settings, "
        "serving as a robust alternative to the Kitsune dataset."
    ),
    used=False,  # carried to Table II but not through to Table IV
    exclusion_reason=(
        "Superseded by BoT-IoT during experimentation as datasets became "
        "difficult to process."
    ),
    attack_families=(
        "ddos-udp-flood", "dos-syn-flood", "reconnaissance",
        "bruteforce-ssh", "web-attack", "backdoor",
    ),
    domain="iot",
)


def generate(seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate the ToN-IoT emulation (~40k packets at scale=1.0,
    roughly balanced classes)."""
    rng = SeededRNG(seed, "ton-iot")
    network = Network(subnet="192.168", rng=rng.child("net"))
    devices = network.hosts(10, "edge")
    gateway = network.host("edge-gateway")
    resolver = network.host("dns")
    ntp_server = network.host("ntp")
    web_ui = network.host("web-ui")
    attackers = network.hosts(3, "attacker")

    span = 2 * 3600.0
    streams = []

    def scaled(count: int) -> int:
        return int(max(1, round(count * scale)))

    benign_rng = rng.child("benign")
    for i, device in enumerate(devices):
        base = float(benign_rng.uniform(0, 60.0))
        for session in range(scaled(4)):
            streams.append(
                iot_telemetry(benign_rng.child(f"tel-{i}-{session}"),
                              base + session * (span / scaled(4)), device,
                              gateway, network, reports=scaled(40),
                              period=7.0)
            )
        streams.append(
            iot_heartbeat(benign_rng.child(f"hb-{i}"), base + 2.0, device,
                          gateway, network, beats=scaled(120), period=25.0)
        )
        for lookup in range(scaled(6)):
            streams.append(
                iot_dns_refresh(benign_rng.child(f"dns-{i}-{lookup}"),
                                base + lookup * (span / scaled(6)), device,
                                resolver, network, gateway.ip)
            )
        streams.append(
            ntp_sync(benign_rng.child(f"ntp-{i}"), base + 5.0, device,
                     ntp_server, network)
        )
    # Operators browsing the device web UI — the "IoT plus IT" mix that
    # distinguishes ToN-IoT from pure-IoT captures.
    for i in range(scaled(20)):
        operator = devices[int(benign_rng.integers(0, len(devices)))]
        streams.append(
            web_browsing_session(benign_rng.child(f"ui-{i}"),
                                 float(benign_rng.uniform(0, span)),
                                 operator, web_ui, network)
        )

    attack_rng = rng.child("attacks")
    streams.append(
        udp_flood_ddos(attack_rng.child("ddos"), span * 0.15, attackers,
                       gateway, packets_per_bot=scaled(900),
                       rate_per_bot=300.0)
    )
    streams.append(
        syn_flood(attack_rng.child("dos"), span * 0.35, attackers[0],
                  web_ui, packets_count=scaled(1200), rate=800.0)
    )
    streams.append(
        port_scan(attack_rng.child("scan"), span * 0.55, attackers[1],
                  gateway, ports=scaled(200), rate=60.0)
    )
    streams.append(
        ssh_bruteforce(attack_rng.child("pw"), span * 0.7, attackers[2],
                       gateway, network, attempts=scaled(60))
    )
    for j in range(scaled(6)):
        streams.append(
            web_attack_session(attack_rng.child(f"inj-{j}"),
                               span * 0.8 + j * 90.0, attackers[0], web_ui,
                               network)
        )
    streams.append(
        backdoor_session(attack_rng.child("backdoor"), span * 0.9,
                         attackers[1], devices[0], network)
    )

    packets = merge_streams(streams)
    return SyntheticDataset(
        name="ToN-IoT",
        packets=packets,
        info=INFO,
        provided_flow_features=NETFLOW_FEATURE_NAMES,
        generation_params={"seed": seed, "scale": scale},
    )
