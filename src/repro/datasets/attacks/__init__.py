"""Attack traffic generators.

Each generator emits labelled packets (``label=1`` with an
``attack_type`` family string) and is parameterised to match how the
family appears in the dataset that features it. Families split into
*volumetric* (floods, scans — visible in header/timing statistics, the
kind anomaly IDSs catch) and *content-style* (exploits, web attacks —
conversations whose headers look benign, the kind they miss), because
that split drives the per-dataset differences in the paper's Table IV.
"""

from repro.datasets.attacks.scan import port_scan, network_sweep, os_fingerprint_probe
from repro.datasets.attacks.dos import syn_flood, http_flood, slowloris
from repro.datasets.attacks.ddos import udp_flood_ddos, tcp_flood_ddos
from repro.datasets.attacks.bruteforce import ssh_bruteforce, ftp_bruteforce
from repro.datasets.attacks.botnet import c2_beaconing, data_exfiltration
from repro.datasets.attacks.mirai import (
    mirai_scan_phase,
    mirai_infection,
    mirai_flood_phase,
)
from repro.datasets.attacks.content import (
    web_attack_session,
    exploit_session,
    fuzzer_session,
    backdoor_session,
)

__all__ = [
    "port_scan",
    "network_sweep",
    "os_fingerprint_probe",
    "syn_flood",
    "http_flood",
    "slowloris",
    "udp_flood_ddos",
    "tcp_flood_ddos",
    "ssh_bruteforce",
    "ftp_bruteforce",
    "c2_beaconing",
    "data_exfiltration",
    "mirai_scan_phase",
    "mirai_infection",
    "mirai_flood_phase",
    "web_attack_session",
    "exploit_session",
    "fuzzer_session",
    "backdoor_session",
]
