"""Content-style attacks: header-plausible conversations whose malice
lives in the payload.

UNSW-NB15's dominant families (fuzzers, exploits, backdoors, generic)
and CICIDS2017's web attacks are of this kind. Their flow and timing
statistics sit inside the benign envelope — which is precisely why the
per-packet anomaly IDSs post low recall on UNSW-NB15 in Table IV.
"""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, tcp_conversation
from repro.net.http import HTTPRequest
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG

_INJECTIONS = (
    "/search?q=' OR 1=1 --",
    "/item?id=1; DROP TABLE users",
    "/profile?name=<script>alert(1)</script>",
    "/download?file=../../../../etc/passwd",
)


def web_attack_session(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    server: Host,
    network: Network,
    *,
    requests: int = 6,
    attack_type: str = "web-attack",
) -> list[Packet]:
    """SQL-injection / XSS / traversal probes over ordinary-looking HTTP."""
    request_sizes = []
    response_sizes = []
    for _ in range(requests):
        path = str(rng.choice(_INJECTIONS))
        req = HTTPRequest(method="GET", path=path,
                          headers={"Host": "victim", "User-Agent": "Mozilla/5.0"})
        request_sizes.append(len(req.to_bytes()))
        response_sizes.append(int(rng.integers(400, 3000)))
    conversation = tcp_conversation(
        rng, start, attacker, server,
        sport=network.ephemeral_port(), dport=80,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.012, think_time=float(rng.exponential(0.6)) + 0.05,
    )
    for packet in conversation:
        packet.label = 1
        packet.attack_type = attack_type
    return conversation


def exploit_session(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    dport: int = 445,
    attack_type: str = "exploits",
) -> list[Packet]:
    """A service exploit: short handshake-like exchange then a payload
    burst and an abrupt server response — near-benign header shape."""
    conversation = tcp_conversation(
        rng, start, attacker, victim,
        sport=network.ephemeral_port(), dport=dport,
        request_sizes=[180, int(rng.integers(800, 4000))],
        response_sizes=[120, int(rng.integers(60, 400))],
        rtt=0.015, think_time=0.1,
    )
    for packet in conversation:
        packet.label = 1
        packet.attack_type = attack_type
    return conversation


def fuzzer_session(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    dport: int = 80,
    probes: int = 10,
    attack_type: str = "fuzzers",
) -> list[Packet]:
    """Protocol fuzzing: many variable-size malformed requests on one
    connection; sizes are uniform-random rather than Pareto, a subtle
    distributional tell."""
    request_sizes = [int(rng.integers(20, 2500)) for _ in range(probes)]
    response_sizes = [int(rng.integers(0, 200)) for _ in range(probes)]
    conversation = tcp_conversation(
        rng, start, attacker, victim,
        sport=network.ephemeral_port(), dport=dport,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.012, think_time=0.08,
    )
    for packet in conversation:
        packet.label = 1
        packet.attack_type = attack_type
    return conversation


def backdoor_session(
    rng: SeededRNG,
    start: float,
    operator: Host,
    victim: Host,
    network: Network,
    *,
    dport: int = 31337,
    commands: int = 8,
    attack_type: str = "backdoor",
) -> list[Packet]:
    """An interactive reverse-shell-like session on an unusual port."""
    request_sizes = [int(rng.integers(10, 80)) for _ in range(commands)]
    response_sizes = [int(rng.integers(100, 4000)) for _ in range(commands)]
    conversation = tcp_conversation(
        rng, start, operator, victim,
        sport=network.ephemeral_port(), dport=dport,
        request_sizes=request_sizes, response_sizes=response_sizes,
        rtt=0.02, think_time=float(rng.exponential(2.0)) + 0.3,
    )
    for packet in conversation:
        packet.label = 1
        packet.attack_type = attack_type
    return conversation
