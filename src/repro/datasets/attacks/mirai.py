"""The Mirai botnet lifecycle, as captured in the Kitsune Mirai trace.

Three phases: telnet scanning for weak devices, infection (credential
attempts + binary download), then the flood. The Kitsune Mirai capture
is mostly the scan phase saturating a small IoT network, which is why
the per-packet anomaly IDSs do well on it.
"""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, _tcp_packet, tcp_conversation
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags
from repro.utils.rng import SeededRNG


def mirai_scan_phase(
    rng: SeededRNG,
    start: float,
    infected: list[Host],
    address_space: list[Host],
    *,
    probes_per_bot: int = 400,
    rate: float = 100.0,
    attack_type: str = "mirai-scan",
) -> list[Packet]:
    """Each infected device SYN-probes telnet (23/2323) across the
    address space — Mirai's signature rapid horizontal scan."""
    packets: list[Packet] = []
    for bot in infected:
        ts = start + float(rng.uniform(0, 1.0))
        for _ in range(probes_per_bot):
            target = address_space[int(rng.integers(0, len(address_space)))]
            dport = 23 if rng.random() < 0.9 else 2323
            sport = int(rng.integers(1024, 65535))
            packets.append(
                _tcp_packet(ts, bot, target, sport, dport, TCPFlags.SYN,
                            label=1, attack_type=attack_type)
            )
            if rng.random() < 0.05:  # rare telnet listener answers
                packets.append(
                    _tcp_packet(ts + 0.004, target, bot, dport, sport,
                                TCPFlags.SYN | TCPFlags.ACK, label=1,
                                attack_type=attack_type)
                )
            ts += 1.0 / rate + float(rng.exponential(0.05 / rate))
    packets.sort(key=lambda p: p.timestamp)
    return packets


def mirai_infection(
    rng: SeededRNG,
    start: float,
    bot: Host,
    victim: Host,
    loader: Host,
    network: Network,
    *,
    attack_type: str = "mirai-infection",
) -> list[Packet]:
    """Telnet credential attempts then the loader pushing the binary."""
    packets: list[Packet] = []
    ts = start
    for _ in range(int(rng.integers(3, 8))):  # credential dictionary tries
        attempt = tcp_conversation(
            rng, ts, bot, victim,
            sport=network.ephemeral_port(), dport=23,
            request_sizes=[16, 24], response_sizes=[40, 20],
            rtt=0.01, think_time=0.2,
        )
        packets.extend(attempt)
        ts = attempt[-1].timestamp + 0.5
    download = tcp_conversation(
        rng, ts, victim, loader,
        sport=network.ephemeral_port(), dport=80,
        request_sizes=[120], response_sizes=[60_000],
        rtt=0.02, think_time=0.05,
    )
    packets.extend(download)
    for packet in packets:
        packet.label = 1
        packet.attack_type = attack_type
    return packets


def mirai_flood_phase(
    rng: SeededRNG,
    start: float,
    bots: list[Host],
    victim: Host,
    *,
    packets_per_bot: int = 500,
    rate_per_bot: float = 1000.0,
    attack_type: str = "mirai-flood",
) -> list[Packet]:
    """The post-infection SYN flood toward the final victim."""
    packets: list[Packet] = []
    for bot in bots:
        ts = start + float(rng.uniform(0, 0.2))
        for _ in range(packets_per_bot):
            sport = int(rng.integers(1024, 65535))
            packets.append(
                _tcp_packet(ts, bot, victim, sport, 80, TCPFlags.SYN,
                            label=1, attack_type=attack_type)
            )
            ts += 1.0 / rate_per_bot + float(rng.exponential(0.02 / rate_per_bot))
    packets.sort(key=lambda p: p.timestamp)
    return packets
