"""Botnet behaviours: C2 beaconing and data exfiltration.

Beaconing is the behaviour Stratosphere's detection models were built
around (periodic, low-volume, long-lived connections to a C2 server
*without* a preceding DNS lookup), so these generators matter for
reproducing Slips' relatively strong Stratosphere row in Table IV.
"""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, tcp_conversation
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG


def c2_beaconing(
    rng: SeededRNG,
    start: float,
    bot: Host,
    c2_server: Host,
    network: Network,
    *,
    beacons: int = 40,
    period: float = 30.0,
    dport: int = 6667,
    payload_size: int = 64,
    attack_type: str = "botnet-c2",
) -> list[Packet]:
    """Periodic check-ins to the C2: tiny request, tiny command reply,
    clock-regular period (the Markov-chain signature Slips models)."""
    packets: list[Packet] = []
    ts = start
    for _ in range(beacons):
        conversation = tcp_conversation(
            rng, ts, bot, c2_server,
            sport=network.ephemeral_port(), dport=dport,
            request_sizes=[payload_size], response_sizes=[payload_size // 2],
            rtt=0.05, think_time=0.01,
        )
        for packet in conversation:
            packet.label = 1
            packet.attack_type = attack_type
        packets.extend(conversation)
        ts += period * (1.0 + float(rng.normal(0, 0.03)))
    return packets


def data_exfiltration(
    rng: SeededRNG,
    start: float,
    bot: Host,
    drop_server: Host,
    network: Network,
    *,
    volume: int = 400_000,
    chunks: int = 8,
    dport: int = 443,
    attack_type: str = "data-exfiltration",
) -> list[Packet]:
    """Slow upload of a large volume in spaced chunks (BoT-IoT's "data
    theft" category, CICIDS2017's infiltration)."""
    chunk_size = max(volume // chunks, 1)
    conversation = tcp_conversation(
        rng, start, bot, drop_server,
        sport=network.ephemeral_port(), dport=dport,
        request_sizes=[chunk_size] * chunks,
        response_sizes=[64] * chunks,
        rtt=0.03, think_time=5.0,
    )
    for packet in conversation:
        packet.label = 1
        packet.attack_type = attack_type
    return conversation
