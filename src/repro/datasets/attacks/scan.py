"""Reconnaissance: port scans, host sweeps, OS fingerprint probes."""

from __future__ import annotations

from repro.datasets.traffic import Host, _tcp_packet
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags
from repro.utils.rng import SeededRNG

_COMMON_PORTS = (21, 22, 23, 25, 53, 80, 110, 135, 139, 143, 443, 445, 993,
                 995, 1723, 3306, 3389, 5900, 8080, 8443)


def port_scan(
    rng: SeededRNG,
    start: float,
    scanner: Host,
    target: Host,
    *,
    ports: int = 200,
    rate: float = 100.0,
    open_ports: tuple[int, ...] = (22, 80, 443),
    attack_type: str = "reconnaissance",
) -> list[Packet]:
    """A vertical SYN scan: one SYN per port; open ports answer SYN-ACK
    (followed by the scanner's RST), closed ports answer RST."""
    packets: list[Packet] = []
    ts = start
    port_list = list(_COMMON_PORTS) + [
        int(p) for p in rng.integers(1024, 65535, size=max(ports - len(_COMMON_PORTS), 0))
    ]
    sport = int(rng.integers(40000, 60000))
    for port in port_list[:ports]:
        packets.append(
            _tcp_packet(ts, scanner, target, sport, port, TCPFlags.SYN,
                        label=1, attack_type=attack_type)
        )
        reply_ts = ts + 0.002 + float(rng.exponential(0.001))
        if port in open_ports:
            packets.append(
                _tcp_packet(reply_ts, target, scanner, port, sport,
                            TCPFlags.SYN | TCPFlags.ACK, label=1,
                            attack_type=attack_type)
            )
            packets.append(
                _tcp_packet(reply_ts + 0.001, scanner, target, sport, port,
                            TCPFlags.RST, label=1, attack_type=attack_type)
            )
        else:
            packets.append(
                _tcp_packet(reply_ts, target, scanner, port, sport,
                            TCPFlags.RST | TCPFlags.ACK, label=1,
                            attack_type=attack_type)
            )
        ts += 1.0 / rate + float(rng.exponential(0.1 / rate))
    return packets


def network_sweep(
    rng: SeededRNG,
    start: float,
    scanner: Host,
    targets: list[Host],
    *,
    port: int = 445,
    rate: float = 50.0,
    attack_type: str = "reconnaissance",
) -> list[Packet]:
    """A horizontal sweep: one SYN to the same port on many hosts."""
    packets: list[Packet] = []
    ts = start
    sport = int(rng.integers(40000, 60000))
    for target in targets:
        packets.append(
            _tcp_packet(ts, scanner, target, sport, port, TCPFlags.SYN,
                        label=1, attack_type=attack_type)
        )
        if rng.random() < 0.3:  # most hosts are silent / filtered
            packets.append(
                _tcp_packet(ts + 0.003, target, scanner, port, sport,
                            TCPFlags.RST | TCPFlags.ACK, label=1,
                            attack_type=attack_type)
            )
        ts += 1.0 / rate + float(rng.exponential(0.1 / rate))
    return packets


def os_fingerprint_probe(
    rng: SeededRNG,
    start: float,
    scanner: Host,
    target: Host,
    *,
    attack_type: str = "reconnaissance",
) -> list[Packet]:
    """Nmap-style fingerprint probes: odd flag combinations (NULL, FIN,
    Xmas) that stand out in flag statistics."""
    probes = (
        TCPFlags(0),                                   # NULL
        TCPFlags.FIN,                                  # FIN probe
        TCPFlags.FIN | TCPFlags.PSH | TCPFlags.URG,    # Xmas
        TCPFlags.SYN | TCPFlags.ECE | TCPFlags.CWR,    # ECN probe
    )
    packets: list[Packet] = []
    ts = start
    sport = int(rng.integers(40000, 60000))
    for flags in probes:
        packets.append(
            _tcp_packet(ts, scanner, target, sport, 80, flags,
                        label=1, attack_type=attack_type)
        )
        ts += 0.05 + float(rng.exponential(0.01))
    return packets
