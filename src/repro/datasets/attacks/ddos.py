"""Distributed denial of service from a bot population."""

from __future__ import annotations

from repro.datasets.traffic import Host, _tcp_packet, _udp_packet
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags
from repro.utils.rng import SeededRNG


def udp_flood_ddos(
    rng: SeededRNG,
    start: float,
    bots: list[Host],
    victim: Host,
    *,
    packets_per_bot: int = 300,
    rate_per_bot: float = 500.0,
    dport: int = 80,
    payload_size: int = 512,
    attack_type: str = "ddos-udp-flood",
) -> list[Packet]:
    """Constant-size UDP datagrams from every bot simultaneously."""
    packets: list[Packet] = []
    for bot in bots:
        ts = start + float(rng.uniform(0, 0.5))
        sport = int(rng.integers(1024, 65535))
        for _ in range(packets_per_bot):
            packets.append(
                _udp_packet(ts, bot, victim, sport, dport,
                            payload=b"\x00" * payload_size, label=1,
                            attack_type=attack_type)
            )
            ts += 1.0 / rate_per_bot + float(rng.exponential(0.02 / rate_per_bot))
    packets.sort(key=lambda p: p.timestamp)
    return packets


def tcp_flood_ddos(
    rng: SeededRNG,
    start: float,
    bots: list[Host],
    victim: Host,
    *,
    packets_per_bot: int = 300,
    rate_per_bot: float = 500.0,
    dport: int = 80,
    attack_type: str = "ddos-tcp-flood",
) -> list[Packet]:
    """SYN/ACK-mix TCP flood from every bot (BoT-IoT's dominant class)."""
    packets: list[Packet] = []
    for bot in bots:
        ts = start + float(rng.uniform(0, 0.5))
        for _ in range(packets_per_bot):
            sport = int(rng.integers(1024, 65535))
            flags = TCPFlags.SYN if rng.random() < 0.8 else TCPFlags.ACK
            packets.append(
                _tcp_packet(ts, bot, victim, sport, dport, flags,
                            label=1, attack_type=attack_type)
            )
            ts += 1.0 / rate_per_bot + float(rng.exponential(0.02 / rate_per_bot))
    packets.sort(key=lambda p: p.timestamp)
    return packets
