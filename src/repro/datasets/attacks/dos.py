"""Single-source denial of service: SYN flood, HTTP flood, slowloris."""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, _tcp_packet, tcp_conversation
from repro.net.http import HTTPRequest
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags
from repro.utils.rng import SeededRNG


def syn_flood(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    *,
    packets_count: int = 2000,
    rate: float = 2000.0,
    dport: int = 80,
    attack_type: str = "dos-syn-flood",
) -> list[Packet]:
    """High-rate SYNs from rotating spoofed-looking source ports; the
    victim answers a fraction with SYN-ACK before its backlog fills."""
    packets: list[Packet] = []
    ts = start
    backlog_alive = 0.1  # victim answers only early packets in each burst
    for i in range(packets_count):
        sport = int(rng.integers(1024, 65535))
        packets.append(
            _tcp_packet(ts, attacker, victim, sport, dport, TCPFlags.SYN,
                        label=1, attack_type=attack_type)
        )
        if rng.random() < backlog_alive:
            packets.append(
                _tcp_packet(ts + 0.001, victim, attacker, dport, sport,
                            TCPFlags.SYN | TCPFlags.ACK, label=1,
                            attack_type=attack_type)
            )
        ts += 1.0 / rate + float(rng.exponential(0.05 / rate))
    return packets


def http_flood(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    requests: int = 200,
    rate: float = 50.0,
    attack_type: str = "dos-http-flood",
) -> list[Packet]:
    """Rapid full HTTP GETs — complete connections at an abnormal rate."""
    packets: list[Packet] = []
    ts = start
    body = HTTPRequest(method="GET", path="/", headers={"Host": "victim"})
    request_len = len(body.to_bytes())
    for _ in range(requests):
        packets.extend(
            tcp_conversation(
                rng, ts, attacker, victim,
                sport=network.ephemeral_port(), dport=80,
                request_sizes=[request_len], response_sizes=[2048],
                rtt=0.005, think_time=0.001,
            )
        )
        ts += 1.0 / rate + float(rng.exponential(0.1 / rate))
    for packet in packets:
        packet.label = 1
        packet.attack_type = attack_type
    return packets


def slowloris(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    connections: int = 50,
    duration: float = 120.0,
    attack_type: str = "dos-slowloris",
) -> list[Packet]:
    """Many connections kept barely alive with tiny partial headers —
    the low-rate DoS in CICIDS2017 (DoS Slowhttptest/Slowloris)."""
    packets: list[Packet] = []
    for _ in range(connections):
        offset = float(rng.uniform(0, duration * 0.2))
        drips = max(2, int(duration / 10))
        packets.extend(
            tcp_conversation(
                rng, start + offset, attacker, victim,
                sport=network.ephemeral_port(), dport=80,
                request_sizes=[24] * drips, response_sizes=[0] * drips,
                rtt=0.01, think_time=10.0, graceful_close=False,
            )
        )
    for packet in packets:
        packet.label = 1
        packet.attack_type = attack_type
    packets.sort(key=lambda p: p.timestamp)
    return packets
