"""Credential brute force against SSH and FTP."""

from __future__ import annotations

from repro.datasets.traffic import Host, Network, tcp_conversation
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG


def _login_attempts(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    dport: int,
    attempts: int,
    attempt_interval: float,
    banner_size: int,
    attack_type: str,
) -> list[Packet]:
    """Many short failed-login conversations in quick succession.

    Each attempt is a small fixed-shape exchange (banner, credentials,
    rejection, reset) — individually unremarkable, anomalous in volume
    and regularity.
    """
    packets: list[Packet] = []
    ts = start
    for _ in range(attempts):
        conversation = tcp_conversation(
            rng, ts, attacker, victim,
            sport=network.ephemeral_port(), dport=dport,
            request_sizes=[20, 40], response_sizes=[banner_size, 30],
            rtt=0.008, think_time=0.02, graceful_close=True,
        )
        for packet in conversation:
            packet.label = 1
            packet.attack_type = attack_type
        packets.extend(conversation)
        ts += attempt_interval + float(rng.exponential(attempt_interval * 0.1))
    return packets


def ssh_bruteforce(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    attempts: int = 120,
    attempt_interval: float = 0.5,
    attack_type: str = "bruteforce-ssh",
) -> list[Packet]:
    """Hydra/Patator-style SSH password guessing (CICIDS2017 Tuesday)."""
    return _login_attempts(
        rng, start, attacker, victim, network,
        dport=22, attempts=attempts, attempt_interval=attempt_interval,
        banner_size=120, attack_type=attack_type,
    )


def ftp_bruteforce(
    rng: SeededRNG,
    start: float,
    attacker: Host,
    victim: Host,
    network: Network,
    *,
    attempts: int = 120,
    attempt_interval: float = 0.4,
    attack_type: str = "bruteforce-ftp",
) -> list[Packet]:
    """FTP password guessing."""
    return _login_attempts(
        rng, start, attacker, victim, network,
        dport=21, attempts=attempts, attempt_interval=attempt_interval,
        banner_size=80, attack_type=attack_type,
    )
