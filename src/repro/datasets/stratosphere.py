"""Synthetic emulation of the Stratosphere IoT (CTU / IoT-23) dataset.

The real dataset (Garcia, Parmisano & Erquiaga 2020): long captures of
real IoT devices (Philips Hue, Amazon Echo, Somfy lock) plus malware
scenarios (Mirai, Torii, Hajime…) executed on a Raspberry Pi, published
as pcaps with Zeek ``conn.log`` flows. Two properties matter for
Table IV:

* a *well-defined benign profile* — real, steady IoT device chatter —
  which the paper credits for every anomaly IDS's strong showing here;
* flows published as **Zeek conn.log records only** (no CICFlowMeter-
  style statistics), so flow-level IDSs see a drastically reduced
  feature schema after adaptation (`provided_flow_features` below) —
  the "preprocessing issues specific to this dataset" behind the DNN's
  collapse (paper Section V-5).

Attack content: C2 beaconing (the Stratosphere lab's home-turf
behaviour), telnet scanning and a flood phase, at roughly one-fifth of
packets.
"""

from __future__ import annotations

from repro.datasets.attacks import (
    c2_beaconing,
    mirai_flood_phase,
    mirai_scan_phase,
)
from repro.datasets.base import DatasetInfo, SyntheticDataset, merge_streams
from repro.datasets.benign import (
    iot_dns_refresh,
    iot_heartbeat,
    iot_telemetry,
    ntp_sync,
)
from repro.datasets.traffic import Network
from repro.utils.rng import SeededRNG

INFO = DatasetInfo(
    name="Stratosphere",
    year=2020,
    characteristics=(
        "Focuses on IoT network traffic, with realistic threat and "
        "behaviour representation."
    ),
    relevance=(
        "Essential for understanding IDS effectiveness in IoT environments "
        "due to its focus on realistic IoT-specific threats."
    ),
    used=True,
    attack_families=("botnet-c2", "mirai-scan", "mirai-flood"),
    domain="iot",
)

#: The Zeek conn.log-equivalent feature subset the real dataset provides.
#: Everything else in an IDS's expected schema gets zero-filled by the
#: adapter — the mechanism behind the paper's DNN-on-Stratosphere result.
CONN_LOG_FEATURES: tuple[str, ...] = (
    "dur",
    "proto_tcp",
    "proto_udp",
    "proto_icmp",
    "state_fin",
    "state_rst",
    "state_con",
    "spkts",
    "dpkts",
    "sbytes",
    "dbytes",
    "sport",
    "dsport",
    # and the CICFlowMeter-schema equivalents of the same quantities:
    "flow_duration",
    "total_fwd_packets",
    "total_bwd_packets",
    "total_length_fwd_packets",
    "total_length_bwd_packets",
    "destination_port",
    "protocol_tcp",
    "protocol_udp",
    "protocol_icmp",
)


def generate(seed: int = 0, scale: float = 1.0) -> SyntheticDataset:
    """Generate the Stratosphere IoT emulation (~45k packets at
    scale=1.0, ~20% attack packets)."""
    rng = SeededRNG(seed, "stratosphere")
    network = Network(subnet="10.10", rng=rng.child("net"))
    devices = network.hosts(10, "iot")
    broker = network.host("cloud-broker")
    resolver = network.host("resolver")
    ntp_server = network.host("ntp")
    c2_server = network.host("c2")
    flood_victim = network.host("flood-victim")
    infected = devices[:2]  # the malware-scenario devices

    span = 4 * 3600.0
    streams = []

    def scaled(count: int) -> int:
        return int(max(1, round(count * scale)))

    # ---- steady benign IoT profile (most of the capture) --------------
    benign_rng = rng.child("benign")
    for i, device in enumerate(devices):
        base = float(benign_rng.uniform(0, 60.0))
        for session in range(scaled(8)):
            start = base + session * (span / scaled(8))
            streams.append(
                iot_telemetry(benign_rng.child(f"tel-{i}-{session}"), start,
                              device, broker, network, reports=scaled(50),
                              period=6.0)
            )
        streams.append(
            iot_heartbeat(benign_rng.child(f"hb-{i}"), base + 3.0, device,
                          broker, network, beats=scaled(240), period=30.0)
        )
        for lookup in range(scaled(16)):
            streams.append(
                iot_dns_refresh(benign_rng.child(f"dns-{i}-{lookup}"),
                                base + lookup * (span / scaled(16)), device,
                                resolver, network, broker.ip)
            )
        streams.append(
            ntp_sync(benign_rng.child(f"ntp-{i}"), base + 10.0, device,
                     ntp_server, network)
        )

    # ---- malware scenarios --------------------------------------------
    attack_rng = rng.child("attacks")
    for i, bot in enumerate(infected):
        # Long-lived periodic C2 on an unresolved odd port — the
        # low-and-slow behaviour Slips' beaconing/Markov modules target.
        # Beaconing is a small share of malicious *packets* (the bulk is
        # the scan and flood phases, as in the real IoT-23 captures).
        streams.append(
            c2_beaconing(attack_rng.child(f"c2-{i}"), span * 0.1 + i * 40.0,
                         bot, c2_server, network, beacons=scaled(40),
                         period=30.0, payload_size=48)
        )
    streams.append(
        mirai_scan_phase(attack_rng.child("scan"), span * 0.5, infected,
                         network.hosts(40, "space"),
                         probes_per_bot=scaled(700), rate=60.0)
    )
    streams.append(
        mirai_flood_phase(attack_rng.child("flood"), span * 0.8, infected,
                          flood_victim, packets_per_bot=scaled(900),
                          rate_per_bot=200.0)
    )

    packets = merge_streams(streams)
    return SyntheticDataset(
        name="Stratosphere",
        packets=packets,
        info=INFO,
        provided_flow_features=CONN_LOG_FEATURES,
        generation_params={"seed": seed, "scale": scale},
    )
