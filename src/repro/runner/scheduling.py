"""Cell planning for matrix runs: which cells, in which order.

A *plan* is a deterministic, dataset-major list of :class:`CellSpec`
objects. Dataset-major order means a serial (or cache-warming) pass
touches each dataset's cells consecutively, so the in-memory tier of
:class:`~repro.runner.cache.DatasetCache` only ever needs one dataset
live at a time. The plan order is also the result-collection order, so
output is reproducible regardless of which worker finishes first.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.core.experiment import (
    DATASET_ORDER,
    EXPERIMENT_MATRIX,
    ExperimentConfig,
)


@dataclass(frozen=True)
class CellSpec:
    """One schedulable unit: a fully-resolved experiment config plus its
    position in the plan (used for ordered collection)."""

    index: int
    config: ExperimentConfig

    @property
    def key(self) -> tuple[str, str]:
        return (self.config.ids_name, self.config.dataset_name)

    def describe(self) -> str:
        return self.config.describe()


def plan_cells(
    ids_names: Sequence[str],
    dataset_names: Sequence[str] = DATASET_ORDER,
    *,
    seed: int = 0,
    scale: float = 0.5,
    matrix: Mapping[tuple[str, str], ExperimentConfig] = EXPERIMENT_MATRIX,
) -> list[CellSpec]:
    """Resolve the requested sub-matrix into an ordered cell plan.

    Every cell is re-seeded and re-scaled from the matrix base config,
    exactly as :meth:`IDSAnalysisPipeline.config_for` does — the engine
    and the serial seed path therefore run byte-identical configs.
    """
    cells: list[CellSpec] = []
    for dataset_name in dataset_names:
        for ids_name in ids_names:
            base = matrix[(ids_name, dataset_name)]
            config = replace(base, seed=seed, scale=scale)
            cells.append(CellSpec(index=len(cells), config=config))
    return cells


def plan_configs(configs: Iterable[ExperimentConfig]) -> list[CellSpec]:
    """Wrap pre-built configs (e.g. an ablation sweep) into a plan,
    preserving the given order."""
    return [CellSpec(index=i, config=c) for i, c in enumerate(configs)]


def dataset_requirements(
    cells: Sequence[CellSpec],
) -> list[tuple[str, int, float]]:
    """Unique ``(name, seed, scale)`` triples the plan will generate, in
    first-use order — the warm-up list for the dataset cache.

    Includes the DNN's cross-corpus training corpus, which
    :func:`~repro.core.experiment.run_experiment` requests through the
    same provider.
    """
    from repro.core.experiment import cross_corpus_requirement

    seen: set[tuple[str, int, float]] = set()
    ordered: list[tuple[str, int, float]] = []
    for cell in cells:
        needs = [(cell.config.dataset_name, cell.config.seed, cell.config.scale)]
        extra = cross_corpus_requirement(cell.config)
        if extra is not None:
            needs.append(extra)
        for triple in needs:
            if triple not in seen:
                seen.add(triple)
                ordered.append(triple)
    return ordered
