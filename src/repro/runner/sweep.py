"""Multi-seed (and multi-scale) sweeps through the execution engine.

The paper's Table IV numbers are single-run point estimates. A credible
reproduction needs variance: this module expands a base experiment plan
across a seed list (and, optionally, a scale grid), dispatches every
expanded config through :meth:`ExperimentEngine.run_configs` — so the
dataset and whole-cell result caches do all the redundancy elimination —
and aggregates the per-cell metric distributions into a
:class:`SweepResult` that :func:`repro.core.report.render_table4_sweep`
renders as a "Table IV ± std" view.

Determinism: a sweep is just a list of :class:`ExperimentConfig`s, so it
inherits the engine's contract — serial, parallel, cold-cache and
warm-cache sweeps are bit-identical per seed, and a warm rerun of an
unchanged sweep is served entirely from the result cache
(``tests/test_runner_sweep.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.experiment import (
    DATASET_ORDER,
    EXPERIMENT_MATRIX,
    ExperimentConfig,
    ExperimentResult,
)
from repro.core.metrics import MetricReport, average_metrics
from repro.runner.engine import ExperimentEngine
from repro.runner.telemetry import RunTelemetry

#: The four reported metrics, Table IV order.
METRIC_NAMES = ("accuracy", "precision", "recall", "f1")


def expand_configs(
    bases: Sequence[ExperimentConfig],
    *,
    seeds: Sequence[int],
    scales: Sequence[float] | None = None,
) -> list[ExperimentConfig]:
    """Cross ``bases`` with a seed list (and optional scale grid).

    Ordering is scale-major, then seed, then base order: all cells of
    one ``(scale, seed)`` stratum are consecutive, so a dataset-major
    base order keeps the engine's in-memory dataset tier at one live
    dataset per stratum.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    expanded: list[ExperimentConfig] = []
    for scale in scales if scales is not None else (None,):
        for seed in seeds:
            for base in bases:
                config = replace(base, seed=seed)
                if scale is not None:
                    config = replace(config, scale=scale)
                expanded.append(config)
    return expanded


@dataclass(frozen=True)
class MetricDistribution:
    """One metric's distribution across a sweep's seeds."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a distribution needs at least one value")

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Population standard deviation (``np.std`` default)."""
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def format(self, digits: int = 4) -> str:
        """``mean±std`` the way the sweep table prints it."""
        return f"{self.mean:.{digits}f}±{self.std:.{digits}f}"


@dataclass(frozen=True)
class CellSweep:
    """One (IDS, dataset) cell's per-seed results and distributions."""

    ids_name: str
    dataset_name: str
    seeds: tuple[int, ...]
    results: tuple[ExperimentResult, ...]

    def distribution(self, metric: str) -> MetricDistribution:
        if metric not in METRIC_NAMES:
            raise KeyError(
                f"unknown metric {metric!r}; one of {METRIC_NAMES}"
            )
        return MetricDistribution(
            tuple(getattr(r.metrics, metric) for r in self.results)
        )

    @property
    def accuracy(self) -> MetricDistribution:
        return self.distribution("accuracy")

    @property
    def precision(self) -> MetricDistribution:
        return self.distribution("precision")

    @property
    def recall(self) -> MetricDistribution:
        return self.distribution("recall")

    @property
    def f1(self) -> MetricDistribution:
        return self.distribution("f1")

    def per_seed(self) -> list[tuple[int, MetricReport]]:
        """``(seed, metrics)`` rows in seed order."""
        return [(s, r.metrics) for s, r in zip(self.seeds, self.results)]


@dataclass
class SweepResult:
    """Aggregated outcome of a multi-seed matrix sweep."""

    ids_names: tuple[str, ...]
    dataset_names: tuple[str, ...]
    seeds: tuple[int, ...]
    scale: float
    cells: dict[tuple[str, str], CellSweep]
    telemetry: RunTelemetry | None = None

    def cell(self, ids_name: str, dataset_name: str) -> CellSweep:
        return self.cells[(ids_name, dataset_name)]

    def row(self, ids_name: str) -> list[CellSweep]:
        return [self.cells[(ids_name, d)] for d in self.dataset_names]

    def average_for(self, ids_name: str) -> dict[str, MetricDistribution]:
        """The "Average:" row with variance: the per-IDS dataset average
        is computed within each seed, then summarised across seeds."""
        per_seed: list[MetricReport] = []
        for i in range(len(self.seeds)):
            per_seed.append(average_metrics([
                self.cells[(ids_name, d)].results[i].metrics
                for d in self.dataset_names
            ]))
        return {
            metric: MetricDistribution(
                tuple(getattr(m, metric) for m in per_seed)
            )
            for metric in METRIC_NAMES
        }


def _group_by_cell(
    configs: Sequence[ExperimentConfig],
    results: Sequence[ExperimentResult],
) -> dict[tuple[str, str], CellSweep]:
    """Zip expanded configs with their results into per-cell sweeps,
    preserving the expansion's seed order within each cell."""
    grouped: dict[tuple[str, str], list[tuple[int, ExperimentResult]]] = {}
    for config, result in zip(configs, results):
        key = (config.ids_name, config.dataset_name)
        grouped.setdefault(key, []).append((config.seed, result))
    return {
        key: CellSweep(
            ids_name=key[0],
            dataset_name=key[1],
            seeds=tuple(seed for seed, _ in rows),
            results=tuple(result for _, result in rows),
        )
        for key, rows in grouped.items()
    }


def sweep_matrix(
    ids_names: Sequence[str],
    dataset_names: Sequence[str] = DATASET_ORDER,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 0.5,
    engine: ExperimentEngine | None = None,
    matrix: Mapping[tuple[str, str], ExperimentConfig] = EXPERIMENT_MATRIX,
) -> SweepResult:
    """Run a (sub-)matrix of Table IV across ``seeds`` and aggregate.

    Every cell uses its matrix base config re-seeded and re-scaled —
    exactly the configs a single-seed :func:`plan_cells` run would use,
    so seed ``s`` of a sweep is bit-identical to a plain run at seed
    ``s``.
    """
    engine = engine if engine is not None else ExperimentEngine()
    bases = [
        matrix[(ids_name, dataset_name)]
        for dataset_name in dataset_names  # dataset-major, like plan_cells
        for ids_name in ids_names
    ]
    configs = expand_configs(bases, seeds=seeds, scales=[scale])
    results = engine.run_configs(configs)
    return SweepResult(
        ids_names=tuple(ids_names),
        dataset_names=tuple(dataset_names),
        seeds=tuple(seeds),
        scale=scale,
        cells=_group_by_cell(configs, results),
        telemetry=engine.last_telemetry,
    )


def sweep_scale_grid(
    ids_names: Sequence[str],
    dataset_names: Sequence[str] = DATASET_ORDER,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    scales: Sequence[float] = (0.1, 0.5, 1.0),
    engine: ExperimentEngine | None = None,
    matrix: Mapping[tuple[str, str], ExperimentConfig] = EXPERIMENT_MATRIX,
) -> list[SweepResult]:
    """Sweep the matrix across a seeds × scales grid, one
    :class:`SweepResult` per scale.

    All strata dispatch through a *single* :meth:`run_configs` call, so
    cells cache and parallelise across the whole grid exactly like a
    seed sweep; within one scale the configs are identical to a plain
    :func:`sweep_matrix` at that scale, and therefore bit-identical per
    seed (``tests/test_runner_sweep.py``).
    """
    if not scales:
        raise ValueError("at least one scale is required")
    engine = engine if engine is not None else ExperimentEngine()
    bases = [
        matrix[(ids_name, dataset_name)]
        for dataset_name in dataset_names  # dataset-major, like plan_cells
        for ids_name in ids_names
    ]
    configs = expand_configs(bases, seeds=seeds, scales=list(scales))
    results = engine.run_configs(configs)
    stride = len(bases) * len(seeds)
    sweeps: list[SweepResult] = []
    for i, scale in enumerate(scales):
        chunk = slice(i * stride, (i + 1) * stride)
        sweeps.append(
            SweepResult(
                ids_names=tuple(ids_names),
                dataset_names=tuple(dataset_names),
                seeds=tuple(seeds),
                scale=scale,
                cells=_group_by_cell(configs[chunk], results[chunk]),
                telemetry=engine.last_telemetry,
            )
        )
    return sweeps


def sweep_cell(
    ids_name: str,
    dataset_name: str,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 0.5,
    engine: ExperimentEngine | None = None,
) -> CellSweep:
    """Sweep one Table IV cell across seeds."""
    sweep = sweep_matrix(
        (ids_name,), (dataset_name,), seeds=seeds, scale=scale, engine=engine
    )
    return sweep.cell(ids_name, dataset_name)


def sweep_configs(
    bases: Iterable[ExperimentConfig],
    *,
    seeds: Sequence[int],
    engine: ExperimentEngine | None = None,
) -> dict[tuple[str, str], CellSweep]:
    """Sweep ad-hoc base configs (ablation grids) across seeds.

    Returns per-``(ids_name, dataset_name)`` cell sweeps; bases that
    share a cell key must differ in some other axis or they will
    collapse into one distribution.
    """
    engine = engine if engine is not None else ExperimentEngine()
    configs = expand_configs(list(bases), seeds=seeds)
    return _group_by_cell(configs, engine.run_configs(configs))
