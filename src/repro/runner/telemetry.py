"""Per-cell execution telemetry for matrix runs.

The engine records, for every cell: wall-clock time, the IDS-only
fit/score time, how many attempts it took (retries), and whether the
dataset or the whole result came from cache. :class:`RunTelemetry`
aggregates a run and renders the compact summary the CLI prints after
``table4 --jobs N``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, TextIO

from repro import obs


@dataclass
class CellTelemetry:
    """Execution record of one matrix cell."""

    ids_name: str
    dataset_name: str
    status: str = "pending"  # pending | ok | failed
    attempts: int = 0
    wall_seconds: float = 0.0
    fit_score_seconds: float = 0.0
    dataset_cache_hit: bool = False
    result_cache_hit: bool = False
    error: str = ""

    @property
    def key(self) -> tuple[str, str]:
        return (self.ids_name, self.dataset_name)

    def describe(self) -> str:
        source = (
            "result-cache" if self.result_cache_hit
            else "dataset-cache" if self.dataset_cache_hit
            else "generated"
        )
        line = (
            f"{self.ids_name:8s} {self.dataset_name:13s} {self.status:6s} "
            f"wall={self.wall_seconds:6.2f}s fit/score={self.fit_score_seconds:6.2f}s "
            f"[{source}]"
        )
        if self.attempts > 1:
            line += f" attempts={self.attempts}"
        if self.error:
            line += f" error={self.error}"
        return line


@dataclass
class RunTelemetry:
    """Aggregate telemetry for one engine run."""

    jobs: int = 1
    cells: list[CellTelemetry] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Datasets the pre-dispatch warm-up actually generated (cache
    #: misses), and how long the warm-up took. Parallel runs warm
    #: misses through the process pool (see ``ExperimentEngine``).
    datasets_warmed: int = 0
    dataset_warm_seconds: float = 0.0
    #: Invocation id shared with obs snapshots and StreamReport notes
    #: (random hex, deliberately exempt from seeded-RNG determinism).
    run_id: str = field(default_factory=obs.run_id)
    _started: float = field(default=0.0, repr=False)

    def start(self) -> None:
        self._started = time.perf_counter()

    def finish(self) -> None:
        self.wall_seconds = time.perf_counter() - self._started

    def add(self, cell: CellTelemetry) -> None:
        self.cells.append(cell)

    # -- aggregates ----------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(1 for c in self.cells if c.status == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for c in self.cells if c.status == "failed")

    @property
    def retries(self) -> int:
        return sum(max(0, c.attempts - 1) for c in self.cells)

    @property
    def dataset_cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.dataset_cache_hit)

    @property
    def result_cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.result_cache_hit)

    @property
    def fit_score_seconds(self) -> float:
        return sum(c.fit_score_seconds for c in self.cells)

    @property
    def cell_wall_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.cells)

    def summary(self) -> str:
        lines = [
            f"engine: {self.completed}/{len(self.cells)} cells ok "
            f"({self.failed} failed, {self.retries} retries) "
            f"in {self.wall_seconds:.2f}s wall with jobs={self.jobs}",
            f"engine: cache reuse — {self.result_cache_hits} whole-cell, "
            f"{self.dataset_cache_hits} dataset hits; "
            f"cumulative cell time {self.cell_wall_seconds:.2f}s "
            f"(fit/score {self.fit_score_seconds:.2f}s)",
        ]
        if self.datasets_warmed:
            lines.append(
                f"engine: warmed {self.datasets_warmed} dataset(s) in "
                f"{self.dataset_warm_seconds:.2f}s before dispatch"
            )
        return "\n".join(lines)


class ProgressReporter:
    """Streams one line per finished cell.

    The engine invokes :meth:`cell_done` from the collection loop (never
    from worker processes), so lines appear in completion order without
    interleaving.
    """

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stdout
        self.enabled = enabled
        self._done = 0

    def cell_done(self, cell: CellTelemetry) -> None:
        self._done += 1
        if self.enabled:
            print(f"[{self._done:2d}/{self.total}] {cell.describe()}",
                  file=self.stream)


#: Signature accepted by the engine's ``progress`` parameter.
ProgressCallback = Callable[[CellTelemetry], None]
