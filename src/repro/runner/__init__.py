"""Cached, parallel execution engine for the experiment matrix.

See ``docs/RUNNER.md`` for the cache layout, the seeding/determinism
contract, and ``--jobs`` semantics.
"""

from repro.runner.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    DatasetCache,
    ResultCache,
    config_key,
    dataset_key,
)
from repro.runner.engine import EngineError, ExperimentEngine
from repro.runner.scheduling import (
    CellSpec,
    dataset_requirements,
    plan_cells,
    plan_configs,
)
from repro.runner.telemetry import CellTelemetry, ProgressReporter, RunTelemetry

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CellSpec",
    "CellTelemetry",
    "DatasetCache",
    "EngineError",
    "ExperimentEngine",
    "ProgressReporter",
    "ResultCache",
    "RunTelemetry",
    "config_key",
    "dataset_key",
    "dataset_requirements",
    "plan_cells",
    "plan_configs",
]
