"""Cached, parallel execution engine for the experiment matrix.

See ``docs/RUNNER.md`` for the cache layout, the seeding/determinism
contract, and ``--jobs`` semantics.
"""

from repro.runner.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    DatasetCache,
    GCReport,
    ResultCache,
    cache_dir_stats,
    config_key,
    dataset_key,
    gc_cache_dir,
)
from repro.runner.engine import EngineError, ExperimentEngine
from repro.runner.scheduling import (
    CellSpec,
    dataset_requirements,
    plan_cells,
    plan_configs,
)
from repro.runner.sweep import (
    CellSweep,
    MetricDistribution,
    SweepResult,
    expand_configs,
    sweep_cell,
    sweep_configs,
    sweep_matrix,
    sweep_scale_grid,
)
from repro.runner.telemetry import CellTelemetry, ProgressReporter, RunTelemetry

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CellSpec",
    "CellSweep",
    "CellTelemetry",
    "DatasetCache",
    "EngineError",
    "ExperimentEngine",
    "GCReport",
    "MetricDistribution",
    "ProgressReporter",
    "ResultCache",
    "RunTelemetry",
    "SweepResult",
    "cache_dir_stats",
    "config_key",
    "dataset_key",
    "dataset_requirements",
    "expand_configs",
    "gc_cache_dir",
    "plan_cells",
    "plan_configs",
    "sweep_cell",
    "sweep_configs",
    "sweep_matrix",
    "sweep_scale_grid",
]
