"""The experiment execution engine: cached, parallel, deterministic.

:class:`ExperimentEngine` runs a plan of :class:`CellSpec` cells and
returns their results keyed by ``(ids_name, dataset_name)``. Three
levers distinguish it from the seed's serial loop:

* **Dataset caching** — every unique ``(name, seed, scale)`` dataset is
  generated exactly once per run (and reloaded from ``cache_dir`` on
  later runs) instead of once per cell.
* **Process parallelism** — with ``jobs > 1``, independent cells run in
  a :class:`~concurrent.futures.ProcessPoolExecutor`. Workers inherit
  the parent's warmed dataset cache, and results are collected in plan
  order, so output is identical to a serial run.
* **Whole-cell reuse** — with a ``cache_dir``, a finished cell is
  persisted keyed by a digest of its full config; re-running the matrix
  recomputes only cells whose configs changed.

Determinism contract: a cell's result depends only on its
``ExperimentConfig`` (every RNG inside ``run_experiment`` derives from
``config.seed``), never on scheduling. Serial, parallel, cached and
uncached runs are therefore bit-identical — enforced by
``tests/test_runner_engine.py``.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.runner.cache import DatasetCache, ResultCache
from repro.runner.scheduling import (
    CellSpec,
    dataset_requirements,
    plan_cells,
    plan_configs,
)
from repro.runner.telemetry import CellTelemetry, ProgressCallback, RunTelemetry


class EngineError(RuntimeError):
    """A cell failed every attempt; carries the last traceback text."""

    def __init__(self, spec: CellSpec, attempts: int, cause: str) -> None:
        super().__init__(
            f"cell {spec.describe()} failed after {attempts} attempt(s): {cause}"
        )
        self.spec = spec
        self.attempts = attempts
        self.cause = cause


@dataclass
class _CellOutcome:
    """What one execution attempt sends back from a worker."""

    result: ExperimentResult
    wall_seconds: float
    dataset_generated: bool


class _TrackingProvider:
    """Dataset provider backed by a cache, recording whether the current
    cell triggered any actual generation (a cache miss)."""

    def __init__(self, cache: DatasetCache) -> None:
        self.cache = cache
        self.generated = False

    def __call__(self, name: str, *, seed: int = 0, scale: float = 1.0):
        before = self.cache.stats.misses
        dataset = self.cache.get_or_generate(name, seed=seed, scale=scale)
        if self.cache.stats.misses != before:
            self.generated = True
        return dataset


def _execute_cell(config: ExperimentConfig, cache: DatasetCache) -> _CellOutcome:
    """Run one cell against a dataset cache, timing the whole attempt.

    The cache is also installed as the registry-wide hook for the
    duration, so any code that calls ``generate_dataset`` directly
    (rather than through the injected provider) reuses it too.
    """
    from repro.datasets.registry import install_dataset_cache

    provider = _TrackingProvider(cache)
    start = time.perf_counter()
    previous = install_dataset_cache(provider)
    try:
        with obs.span("runner.cell"):
            result = run_experiment(config, dataset_provider=provider)
    finally:
        install_dataset_cache(previous)
    return _CellOutcome(
        result=result,
        wall_seconds=time.perf_counter() - start,
        dataset_generated=provider.generated,
    )


# -- worker-process plumbing ------------------------------------------------

_WORKER_CACHE: DatasetCache | None = None


def _worker_init(cache_dir, preloaded) -> None:
    """Per-process initializer: build this worker's dataset cache,
    seeded with the datasets the parent already generated."""
    global _WORKER_CACHE
    _WORKER_CACHE = DatasetCache(cache_dir=cache_dir)
    if preloaded:
        _WORKER_CACHE.preload(preloaded)


def _worker_run_cell(config: ExperimentConfig) -> _CellOutcome:
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    return _execute_cell(config, _WORKER_CACHE)


def _generate_requirement(requirement: tuple[str, int, float]):
    """Warm-up task: generate one dataset in a pool worker.

    Generation bypasses every cache on purpose — the parent already
    established this requirement is a miss, and warm-pool workers have
    no shared cache to consult.
    """
    from repro.datasets.registry import generate_dataset_uncached

    name, seed, scale = requirement
    return requirement, generate_dataset_uncached(name, seed=seed, scale=scale)


class ExperimentEngine:
    """Cached, optionally parallel executor for experiment cell plans.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (default) runs in-process; higher values
        dispatch cells across a process pool.
    cache_dir:
        Root of the on-disk cache (datasets + whole-cell results).
        ``None`` keeps caching in-memory only and disables whole-cell
        reuse.
    retries:
        Extra attempts per failing cell before the run aborts with
        :class:`EngineError`.
    dataset_cache:
        Inject a pre-built :class:`DatasetCache` (shared across engines
        or pre-warmed by tests). Defaults to a fresh cache rooted at
        ``cache_dir``.
    result_cache_bytes:
        Byte budget for the on-disk result cache; every stored cell
        triggers an LRU eviction pass keeping the namespace at or under
        the budget (see ``repro-cli cache gc`` for offline trimming).
        ``None`` (default) leaves growth unbounded.
    progress:
        Optional callback invoked with each cell's
        :class:`CellTelemetry` as it completes (always from the
        coordinating process, in completion order).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir=None,
        retries: int = 0,
        dataset_cache: DatasetCache | None = None,
        result_cache_bytes: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.retries = retries
        self.dataset_cache = dataset_cache or DatasetCache(cache_dir=cache_dir)
        self.result_cache = (
            ResultCache(cache_dir=cache_dir, max_bytes=result_cache_bytes)
            if cache_dir is not None
            else None
        )
        self.progress = progress
        self.last_telemetry: RunTelemetry | None = None

    # -- public entry points -------------------------------------------
    def run_matrix(
        self,
        ids_names: Sequence[str],
        dataset_names: Sequence[str],
        *,
        seed: int = 0,
        scale: float = 0.5,
    ) -> dict[tuple[str, str], ExperimentResult]:
        """Plan and run a (sub-)matrix of the Table IV evaluation."""
        return self.run(plan_cells(ids_names, dataset_names, seed=seed, scale=scale))

    def run_configs(
        self, configs: Sequence[ExperimentConfig]
    ) -> list[ExperimentResult]:
        """Run ad-hoc configs (ablations, multi-seed sweeps) through the
        engine, returning one result per config in input order — sweeps
        legitimately repeat ``(ids, dataset)`` pairs, so results are
        positional here rather than keyed."""
        cells = plan_configs(configs)
        outcomes = self._run_plan(cells)
        return [outcomes[spec.index] for spec in cells]

    def run(
        self, cells: Sequence[CellSpec]
    ) -> dict[tuple[str, str], ExperimentResult]:
        """Execute a plan; return results keyed by (ids, dataset) in
        plan order (duplicate keys keep the last occurrence — use
        :meth:`run_configs` for sweeps that repeat cells). Raises
        :class:`EngineError` if any cell exhausts its retry budget."""
        outcomes = self._run_plan(cells)
        return {spec.key: outcomes[spec.index] for spec in cells}

    def _run_plan(
        self, cells: Sequence[CellSpec]
    ) -> dict[int, ExperimentResult]:
        """Execute a plan; return results by plan index."""
        telemetry = RunTelemetry(jobs=self.jobs)
        telemetry.start()
        self.last_telemetry = telemetry

        # Whole-cell reuse: satisfy what we can from the result cache.
        outcomes: dict[int, ExperimentResult] = {}
        pending: list[CellSpec] = []
        for spec in cells:
            cached = self.result_cache.get(spec.config) if self.result_cache else None
            if cached is not None:
                outcomes[spec.index] = cached
                self._record(
                    telemetry, spec, status="ok", attempts=0,
                    wall=0.0, fit_score=cached.runtime_seconds,
                    dataset_hit=False, result_hit=True,
                )
            else:
                pending.append(spec)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(pending, outcomes, telemetry)
            else:
                self._run_parallel(pending, outcomes, telemetry)

        telemetry.finish()
        return outcomes

    # -- execution strategies ------------------------------------------
    def _run_serial(self, pending, outcomes, telemetry) -> None:
        for spec in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    outcome = _execute_cell(spec.config, self.dataset_cache)
                except Exception:
                    if attempts > self.retries:
                        cause = traceback.format_exc(limit=8)
                        self._record(
                            telemetry, spec, status="failed", attempts=attempts,
                            wall=0.0, fit_score=0.0,
                            dataset_hit=False, result_hit=False, error=cause,
                        )
                        telemetry.finish()
                        raise EngineError(spec, attempts, cause) from None
                    continue
                self._finish_cell(spec, outcome, attempts, outcomes, telemetry)
                break

    def _warm_datasets(self, requirements, telemetry) -> None:
        """Warm every plan requirement into the dataset cache before
        cell dispatch, generating cache misses *through the process
        pool* when there is more than one — dataset generation was the
        cold-sweep serial bottleneck (one dataset at a time in the
        parent while workers sat idle).

        Generators are deterministic in ``(name, seed, scale)``, so
        where a dataset is generated cannot change any result.
        """
        warm_start = time.perf_counter()
        missing = [
            requirement
            for requirement in requirements
            if self.dataset_cache.lookup(
                requirement[0], seed=requirement[1], scale=requirement[2]
            ) is None
        ]
        if len(missing) > 1 and self.jobs > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(missing))
            ) as pool:
                for requirement, dataset in pool.map(
                    _generate_requirement, missing
                ):
                    name, seed, scale = requirement
                    self.dataset_cache.put(name, dataset, seed=seed, scale=scale)
                    # Pool generation bypasses get_or_generate; account
                    # the miss it would have counted.
                    self.dataset_cache.stats.misses += 1
        else:
            for name, seed, scale in missing:
                self.dataset_cache.get_or_generate(name, seed=seed, scale=scale)
        telemetry.datasets_warmed = len(missing)
        telemetry.dataset_warm_seconds = time.perf_counter() - warm_start
        if missing:
            obs.counter("runner.datasets_warmed").inc(len(missing))

    def _run_parallel(self, pending, outcomes, telemetry) -> None:
        # Warm every dataset the plan needs once (in parallel when
        # several are missing), so cell workers inherit generated
        # datasets instead of racing to regenerate them per process.
        self._warm_datasets(dataset_requirements(pending), telemetry)

        max_workers = min(self.jobs, len(pending))
        attempts: dict[int, int] = {spec.index: 0 for spec in pending}
        current = pending[0]
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_worker_init,
                initargs=(self.cache_dir, self.dataset_cache.preloaded()),
            ) as pool:
                futures = {}
                for spec in pending:
                    attempts[spec.index] += 1
                    futures[pool.submit(_worker_run_cell, spec.config)] = spec
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        spec = current = futures.pop(future)
                        error = future.exception()
                        if error is not None:
                            # A broken pool is fatal for the whole run,
                            # not a per-cell failure: retrying against a
                            # dead executor cannot succeed.
                            if isinstance(error, BrokenProcessPool):
                                raise error
                            if attempts[spec.index] > self.retries:
                                cause = "".join(
                                    traceback.format_exception_only(
                                        type(error), error
                                    )
                                ).strip()
                                self._record(
                                    telemetry, spec, status="failed",
                                    attempts=attempts[spec.index],
                                    wall=0.0, fit_score=0.0,
                                    dataset_hit=False, result_hit=False,
                                    error=cause,
                                )
                                for other in futures:
                                    other.cancel()
                                telemetry.finish()
                                raise EngineError(
                                    spec, attempts[spec.index], cause
                                ) from error
                            attempts[spec.index] += 1
                            futures[pool.submit(_worker_run_cell, spec.config)] = spec
                            continue
                        self._finish_cell(
                            spec, future.result(), attempts[spec.index],
                            outcomes, telemetry,
                        )
        except BrokenProcessPool as error:
            cause = f"worker process pool broke (worker killed?): {error!r}"
            self._record(
                telemetry, current, status="failed",
                attempts=attempts.get(current.index, 1),
                wall=0.0, fit_score=0.0,
                dataset_hit=False, result_hit=False, error=cause,
            )
            telemetry.finish()
            raise EngineError(
                current, attempts.get(current.index, 1), cause
            ) from error

    # -- bookkeeping ----------------------------------------------------
    def _finish_cell(self, spec, outcome, attempts, outcomes, telemetry) -> None:
        outcomes[spec.index] = outcome.result
        if self.result_cache is not None:
            self.result_cache.put(spec.config, outcome.result)
        self._record(
            telemetry, spec, status="ok", attempts=attempts,
            wall=outcome.wall_seconds,
            fit_score=outcome.result.runtime_seconds,
            dataset_hit=not outcome.dataset_generated, result_hit=False,
        )

    def _record(
        self, telemetry, spec, *, status, attempts, wall, fit_score,
        dataset_hit, result_hit, error="",
    ) -> None:
        # Once-per-cell bookkeeping: recorded unconditionally so cache
        # behaviour shows up in obs snapshots (e.g. the ones embedded
        # in bench JSON) without anyone having to opt in.
        registry = obs.get_registry()
        registry.counter("runner.cells_total").inc()
        if result_hit:
            registry.counter("runner.result_cache_hits").inc()
        if dataset_hit:
            registry.counter("runner.dataset_cache_hits").inc()
        if status == "failed":
            registry.counter("runner.cells_failed").inc()
        if attempts > 1:
            registry.counter("runner.retries").inc(attempts - 1)
        registry.histogram("runner.cell_wall_seconds").observe(wall)
        registry.histogram("runner.cell_fit_score_seconds").observe(fit_score)
        cell = CellTelemetry(
            ids_name=spec.config.ids_name,
            dataset_name=spec.config.dataset_name,
            status=status,
            attempts=attempts,
            wall_seconds=wall,
            fit_score_seconds=fit_score,
            dataset_cache_hit=dataset_hit,
            result_cache_hit=result_hit,
            error=error,
        )
        telemetry.add(cell)
        if self.progress is not None:
            self.progress(cell)
