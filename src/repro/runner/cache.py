"""Content-addressed caches for datasets and experiment results.

The full Table IV matrix evaluates 4 IDSs against 5 datasets, but the
seed reproduction regenerated every dataset once *per cell* — 4x the
necessary work. :class:`DatasetCache` addresses a generated
:class:`~repro.datasets.base.SyntheticDataset` by the complete set of
inputs that determine it — ``(name, seed, scale)`` — so a matrix run
synthesises each dataset exactly once, and repeated runs can reload it
from disk.

:class:`ResultCache` extends the same idea across runs, in the spirit
of precomputed-ruleset reuse in network simulators: a finished
:class:`~repro.core.experiment.ExperimentResult` is addressed by a
digest of its *entire* :class:`ExperimentConfig`, so re-running the
matrix after touching one IDS recomputes only the affected cells.

Keys are hex SHA-256 digests of a canonical string form of the inputs;
floats are serialised with ``repr`` so every distinguishable scale gets
its own entry. On-disk entries are pickles written atomically
(temp file + rename) under::

    <cache_dir>/
      datasets/<key>.pkl
      results/<key>.pkl

Cache entries do not observe code changes: after editing generators or
IDSs, point the engine at a fresh ``cache_dir`` (or delete the old
one). ``CACHE_FORMAT_VERSION`` is baked into every key so incompatible
layout changes invalidate stale directories automatically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.experiment import ExperimentConfig, ExperimentResult
    from repro.datasets.base import SyntheticDataset

#: Bump when the key derivation or pickle layout changes incompatibly.
CACHE_FORMAT_VERSION = 1


def dataset_key(name: str, *, seed: int, scale: float) -> str:
    """Content address of a generated dataset: every input that
    determines its packets, and nothing else."""
    payload = f"v{CACHE_FORMAT_VERSION}:dataset:{name}:{int(seed)}:{scale!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_key(config: "ExperimentConfig") -> str:
    """Content address of one experiment cell: a digest over every
    config field, in sorted-field order so dict insertion order cannot
    perturb the key."""
    fields = asdict(config)
    overrides = fields.pop("ids_overrides", {})
    parts = [f"{k}={fields[k]!r}" for k in sorted(fields)]
    parts.append(
        "ids_overrides={%s}"
        % ", ".join(f"{k!r}: {overrides[k]!r}" for k in sorted(overrides))
    )
    payload = f"v{CACHE_FORMAT_VERSION}:result:" + ";".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk)"
        )


class _DiskStore:
    """Atomic pickle store for one namespace of a cache directory."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str):
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # Corrupt or stale entry (e.g. interrupted write with an old
            # library version): drop it and regenerate.
            path.unlink(missing_ok=True)
            return None

    def store(self, key: str, value) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path(key))
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise


@dataclass
class DatasetCache:
    """Two-tier (memory + optional disk) cache of generated datasets.

    Parameters
    ----------
    cache_dir:
        Root directory for the on-disk tier; ``None`` keeps the cache
        purely in-memory (still removes the 4x regeneration within one
        matrix run).
    max_memory_items:
        In-memory entry budget, evicting least-recently-inserted first.
        The full matrix needs 6 live datasets (5 evaluated + the DNN's
        training corpus); the default leaves headroom for multi-seed
        sweeps.
    """

    cache_dir: str | os.PathLike | None = None
    max_memory_items: int = 16
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._memory: dict[str, "SyntheticDataset"] = {}
        self._disk = (
            _DiskStore(Path(self.cache_dir) / "datasets")
            if self.cache_dir is not None
            else None
        )

    def get_or_generate(
        self,
        name: str,
        *,
        seed: int = 0,
        scale: float = 1.0,
        generator: Callable[..., "SyntheticDataset"] | None = None,
    ) -> "SyntheticDataset":
        """Return the dataset for ``(name, seed, scale)``, generating it
        via ``generator`` (default: the registry's uncached generator)
        only on a full miss."""
        key = dataset_key(name, seed=seed, scale=scale)
        dataset = self._memory.get(key)
        if dataset is not None:
            self.stats.memory_hits += 1
            return dataset
        if self._disk is not None:
            dataset = self._disk.load(key)
            if dataset is not None:
                self.stats.disk_hits += 1
                self._remember(key, dataset)
                return dataset
        self.stats.misses += 1
        if generator is None:
            from repro.datasets.registry import generate_dataset_uncached

            generator = generate_dataset_uncached
        dataset = generator(name, seed=seed, scale=scale)
        self._remember(key, dataset)
        if self._disk is not None:
            self._disk.store(key, dataset)
        return dataset

    def _remember(self, key: str, dataset: "SyntheticDataset") -> None:
        while len(self._memory) >= self.max_memory_items:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = dataset

    def preloaded(self) -> dict[str, "SyntheticDataset"]:
        """A snapshot of the in-memory tier (for seeding worker caches)."""
        return dict(self._memory)

    def preload(self, entries: dict[str, "SyntheticDataset"]) -> None:
        """Seed the in-memory tier (workers inherit the parent's warmup)."""
        for key, dataset in entries.items():
            self._remember(key, dataset)

    def __len__(self) -> int:
        return len(self._memory)


@dataclass
class ResultCache:
    """On-disk cache of finished experiment cells, keyed by the full
    config digest. Purely disk-backed: a hit means the identical cell
    (same IDS, dataset, seed, scale, thresholds, budgets, overrides)
    already ran under this ``cache_dir``."""

    cache_dir: str | os.PathLike
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._disk = _DiskStore(Path(self.cache_dir) / "results")

    def get(self, config: "ExperimentConfig") -> "ExperimentResult | None":
        result = self._disk.load(config_key(config))
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.disk_hits += 1
        return result

    def put(self, config: "ExperimentConfig", result: "ExperimentResult") -> None:
        self._disk.store(config_key(config), result)
