"""Content-addressed caches for datasets and experiment results.

The full Table IV matrix evaluates 4 IDSs against 5 datasets, but the
seed reproduction regenerated every dataset once *per cell* — 4x the
necessary work. :class:`DatasetCache` addresses a generated
:class:`~repro.datasets.base.SyntheticDataset` by the complete set of
inputs that determine it — ``(name, seed, scale)`` — so a matrix run
synthesises each dataset exactly once, and repeated runs can reload it
from disk.

:class:`ResultCache` extends the same idea across runs, in the spirit
of precomputed-ruleset reuse in network simulators: a finished
:class:`~repro.core.experiment.ExperimentResult` is addressed by a
digest of its *entire* :class:`ExperimentConfig`, so re-running the
matrix after touching one IDS recomputes only the affected cells.

Keys are hex SHA-256 digests of a canonical string form of the inputs;
floats are serialised with ``repr`` so every distinguishable scale gets
its own entry. On-disk entries are pickles written atomically
(temp file + rename) under::

    <cache_dir>/
      datasets/<key>.pkl
      results/<key>.pkl

Cache entries do not observe code changes: after editing generators or
IDSs, point the engine at a fresh ``cache_dir`` (or delete the old
one). ``CACHE_FORMAT_VERSION`` is baked into every key so incompatible
layout changes invalidate stale directories automatically.

Long multi-seed sweeps would otherwise grow the disk tiers without
bound, so both stores support **size-capped LRU eviction**: every disk
hit refreshes the entry's mtime, and :meth:`_DiskStore.gc` removes
least-recently-used entries until the namespace fits a byte budget.
:class:`ResultCache` can enforce its budget automatically on every
``put`` (``max_bytes``); :func:`gc_cache_dir` applies budgets offline —
the ``repro-cli cache gc`` verb.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.experiment import ExperimentConfig, ExperimentResult
    from repro.datasets.base import SyntheticDataset

#: Bump when the key derivation or pickle layout changes incompatibly,
#: or when scoring semantics shift (even in the last ulp) — cached
#: cells must never mix with bit-different fresh computations.
#: v2: ExperimentConfig gained experiment-kind dispatch fields.
#: v3: execute-phase autoencoder forwards moved from BLAS to einsum
#:     (the batched-engine parity contract), shifting Kitsune/HELAD
#:     scores in the last ulp.
CACHE_FORMAT_VERSION = 3


def dataset_key(name: str, *, seed: int, scale: float) -> str:
    """Content address of a generated dataset: every input that
    determines its packets, and nothing else."""
    payload = f"v{CACHE_FORMAT_VERSION}:dataset:{name}:{int(seed)}:{scale!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_key(config: "ExperimentConfig") -> str:
    """Content address of one experiment cell: a digest over every
    config field, in sorted-field order so dict insertion order cannot
    perturb the key."""
    fields = asdict(config)
    parts = []
    # Dict-valued fields are serialised key-sorted so insertion order
    # cannot perturb the digest.
    for dict_field in ("ids_overrides", "experiment_params"):
        mapping = fields.pop(dict_field, {})
        parts.append(
            "%s={%s}" % (
                dict_field,
                ", ".join(f"{k!r}: {mapping[k]!r}" for k in sorted(mapping)),
            )
        )
    parts = [f"{k}={fields[k]!r}" for k in sorted(fields)] + parts
    payload = f"v{CACHE_FORMAT_VERSION}:result:" + ";".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk)"
        )


@dataclass(frozen=True)
class GCReport:
    """Outcome of one namespace's eviction pass."""

    namespace: str
    kept_files: int
    kept_bytes: int
    removed_files: int
    removed_bytes: int

    def describe(self) -> str:
        return (
            f"{self.namespace}: removed {self.removed_files} entr"
            f"{'y' if self.removed_files == 1 else 'ies'} "
            f"({self.removed_bytes} bytes), kept {self.kept_files} "
            f"({self.kept_bytes} bytes)"
        )


class _DiskStore:
    """Atomic pickle store for one namespace of a cache directory.

    Entry mtimes double as LRU recency: :meth:`load` refreshes the
    mtime on every hit, and :meth:`gc` evicts oldest-mtime-first.
    """

    def __init__(self, root: Path) -> None:
        self.root = root

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str):
        path = self.path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # Corrupt or stale entry (e.g. interrupted write with an old
            # library version): drop it and regenerate.
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)  # mark recently-used for LRU eviction
        except OSError:  # pragma: no cover - entry raced away
            pass
        return value

    def store(self, key: str, value) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path(key))
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    #: A ``.tmp`` file older than this is a killed write, not a write
    #: in flight from a concurrent process, and is safe to sweep.
    STALE_TMP_SECONDS = 3600.0

    def entries(self) -> list[tuple[Path, int, float]]:
        """``(path, size_bytes, mtime)`` per entry, least recent first.

        Stale ``.tmp`` files from killed writes are swept here rather
        than listed; *fresh* ones are left alone — they may belong to a
        concurrent writer that has not yet ``os.replace``d them.
        """
        rows: list[tuple[Path, int, float]] = []
        try:
            children = list(self.root.iterdir())
        except FileNotFoundError:
            return rows
        now = time.time()
        for path in children:
            if path.suffix == ".tmp":
                try:
                    if now - path.stat().st_mtime > self.STALE_TMP_SECONDS:
                        path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - entry raced away
                    pass
                continue
            if path.suffix != ".pkl":
                continue
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - entry raced away
                continue
            rows.append((path, stat.st_size, stat.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0].name))
        return rows

    def gc(self, max_bytes: int) -> GCReport:
        """Evict least-recently-used entries until the namespace holds
        at most ``max_bytes``. Returns what was removed and kept."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        rows = self.entries()
        total = sum(size for _, size, _ in rows)
        removed_files = removed_bytes = 0
        for path, size, _ in rows:
            if total <= max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            removed_files += 1
            removed_bytes += size
        return GCReport(
            namespace=self.root.name,
            kept_files=len(rows) - removed_files,
            kept_bytes=total,
            removed_files=removed_files,
            removed_bytes=removed_bytes,
        )


@dataclass
class DatasetCache:
    """Two-tier (memory + optional disk) cache of generated datasets.

    Parameters
    ----------
    cache_dir:
        Root directory for the on-disk tier; ``None`` keeps the cache
        purely in-memory (still removes the 4x regeneration within one
        matrix run).
    max_memory_items:
        In-memory entry budget, evicting least-recently-used first.
        The full matrix needs 6 live datasets (5 evaluated + the DNN's
        training corpus); the default leaves headroom for multi-seed
        sweeps.
    """

    cache_dir: str | os.PathLike | None = None
    max_memory_items: int = 16
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._memory: dict[str, "SyntheticDataset"] = {}
        self._disk = (
            _DiskStore(Path(self.cache_dir) / "datasets")
            if self.cache_dir is not None
            else None
        )

    def get_or_generate(
        self,
        name: str,
        *,
        seed: int = 0,
        scale: float = 1.0,
        generator: Callable[..., "SyntheticDataset"] | None = None,
    ) -> "SyntheticDataset":
        """Return the dataset for ``(name, seed, scale)``, generating it
        via ``generator`` (default: the registry's uncached generator)
        only on a full miss."""
        dataset = self.lookup(name, seed=seed, scale=scale)
        if dataset is not None:
            return dataset
        self.stats.misses += 1
        if generator is None:
            from repro.datasets.registry import generate_dataset_uncached

            generator = generate_dataset_uncached
        dataset = generator(name, seed=seed, scale=scale)
        key = dataset_key(name, seed=seed, scale=scale)
        self._remember(key, dataset)
        if self._disk is not None:
            self._disk.store(key, dataset)
        return dataset

    def lookup(
        self, name: str, *, seed: int = 0, scale: float = 1.0
    ) -> "SyntheticDataset | None":
        """The cached dataset for ``(name, seed, scale)``, or ``None``
        without generating. Hits count in :attr:`stats` (a miss does
        not — the caller decides whether it leads to generation); this
        is both :meth:`get_or_generate`'s probe and how the engine's
        parallel warm-up decides which datasets need a worker."""
        key = dataset_key(name, seed=seed, scale=scale)
        dataset = self._memory.get(key)
        if dataset is not None:
            self.stats.memory_hits += 1
            # True LRU: a hit moves the entry to the most-recent end.
            self._memory.pop(key)
            self._memory[key] = dataset
            return dataset
        if self._disk is not None:
            dataset = self._disk.load(key)
            if dataset is not None:
                self.stats.disk_hits += 1
                self._remember(key, dataset)
                return dataset
        return None

    def put(
        self, name: str, dataset: "SyntheticDataset",
        *, seed: int = 0, scale: float = 1.0,
    ) -> None:
        """Insert an externally-generated dataset (e.g. one a warm-up
        worker produced) into both tiers."""
        key = dataset_key(name, seed=seed, scale=scale)
        self._remember(key, dataset)
        if self._disk is not None:
            self._disk.store(key, dataset)

    def _remember(self, key: str, dataset: "SyntheticDataset") -> None:
        while len(self._memory) >= self.max_memory_items:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = dataset

    def gc(self, max_bytes: int) -> GCReport | None:
        """LRU-evict the disk tier down to ``max_bytes`` (no-op without
        a ``cache_dir``)."""
        if self._disk is None:
            return None
        return self._disk.gc(max_bytes)

    def preloaded(self) -> dict[str, "SyntheticDataset"]:
        """A snapshot of the in-memory tier (for seeding worker caches)."""
        return dict(self._memory)

    def preload(self, entries: dict[str, "SyntheticDataset"]) -> None:
        """Seed the in-memory tier (workers inherit the parent's warmup)."""
        for key, dataset in entries.items():
            self._remember(key, dataset)

    def __len__(self) -> int:
        return len(self._memory)


@dataclass
class ResultCache:
    """On-disk cache of finished experiment cells, keyed by the full
    config digest. Purely disk-backed: a hit means the identical cell
    (same IDS, dataset, seed, scale, thresholds, budgets, overrides)
    already ran under this ``cache_dir``.

    ``max_bytes`` arms the size cap: every ``put`` triggers an LRU
    eviction pass keeping the namespace at or under the budget, so
    long sweeps cannot grow the cache without bound. ``None`` (the
    default) leaves growth unbounded — use ``repro-cli cache gc`` for
    offline trimming.
    """

    cache_dir: str | os.PathLike
    max_bytes: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {self.max_bytes}")
        self._disk = _DiskStore(Path(self.cache_dir) / "results")
        # Running byte total for the online cap: initialised lazily from
        # one directory scan, then maintained incrementally so a long
        # sweep does not rescan the namespace after every stored cell.
        self._approx_bytes: int | None = None

    def get(self, config: "ExperimentConfig") -> "ExperimentResult | None":
        result = self._disk.load(config_key(config))
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.disk_hits += 1
        return result

    def put(self, config: "ExperimentConfig", result: "ExperimentResult") -> None:
        key = config_key(config)
        self._disk.store(key, result)
        if self.max_bytes is None:
            return
        if self._approx_bytes is None:
            self._approx_bytes = sum(
                size for _, size, _ in self._disk.entries()
            )
        else:
            try:
                self._approx_bytes += self._disk.path(key).stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                pass
        if self._approx_bytes > self.max_bytes:
            # The full scan runs only on overflow; its report re-syncs
            # the running total (other processes may share the dir).
            self._approx_bytes = self.gc(self.max_bytes).kept_bytes

    def gc(self, max_bytes: int) -> GCReport:
        """LRU-evict the results namespace down to ``max_bytes``."""
        return self._disk.gc(max_bytes)


def cache_dir_stats(cache_dir: str | os.PathLike) -> dict[str, tuple[int, int]]:
    """``{namespace: (entry_count, total_bytes)}`` for one cache root."""
    stats: dict[str, tuple[int, int]] = {}
    for namespace in ("datasets", "results"):
        entries = _DiskStore(Path(cache_dir) / namespace).entries()
        stats[namespace] = (len(entries), sum(size for _, size, _ in entries))
    return stats


def gc_cache_dir(
    cache_dir: str | os.PathLike,
    *,
    max_result_bytes: int | None = None,
    max_dataset_bytes: int | None = None,
) -> list[GCReport]:
    """Apply LRU byte budgets to a cache root's namespaces offline.

    ``None`` skips a namespace. This is the implementation behind the
    ``repro-cli cache gc`` verb.
    """
    reports: list[GCReport] = []
    if max_result_bytes is not None:
        reports.append(_DiskStore(Path(cache_dir) / "results").gc(max_result_bytes))
    if max_dataset_bytes is not None:
        reports.append(_DiskStore(Path(cache_dir) / "datasets").gc(max_dataset_bytes))
    return reports
