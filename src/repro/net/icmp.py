"""ICMP header codec (RFC 792) — echo, unreachable, and generic types."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import ones_complement_checksum

HEADER_LEN = 8

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11


@dataclass
class ICMPHeader:
    """An ICMP header; ``identifier``/``sequence`` are meaningful for echo
    messages and carried opaquely for other types."""

    icmp_type: int = TYPE_ECHO_REQUEST
    code: int = 0
    identifier: int = 0
    sequence: int = 0

    def to_bytes(self, payload: bytes = b"") -> bytes:
        header = struct.pack(
            "!BBHHH",
            self.icmp_type & 0xFF,
            self.code & 0xFF,
            0,
            self.identifier & 0xFFFF,
            self.sequence & 0xFFFF,
        )
        checksum = ones_complement_checksum(header + payload)
        return header[:2] + struct.pack("!H", checksum) + header[4:]

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["ICMPHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError(f"ICMP header too short: {len(data)} bytes")
        icmp_type, code, _checksum, identifier, sequence = struct.unpack(
            "!BBHHH", data[:HEADER_LEN]
        )
        header = cls(
            icmp_type=icmp_type, code=code, identifier=identifier, sequence=sequence
        )
        return header, data[HEADER_LEN:]

    @property
    def header_len(self) -> int:
        return HEADER_LEN

    @property
    def is_echo(self) -> bool:
        return self.icmp_type in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY)
