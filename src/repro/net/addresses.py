"""IPv4 and MAC address helpers.

Addresses are carried as dotted-quad strings in the object model (for
readability in tests and reports) and converted to integers/bytes at the
wire-format boundary.
"""

from __future__ import annotations

from repro.utils.rng import SeededRNG


def ip_to_int(ip: str) -> int:
    """Convert dotted-quad ``"a.b.c.d"`` to a 32-bit integer.

    >>> ip_to_int("192.168.0.1")
    3232235521
    """
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet {part!r} in {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation.

    >>> int_to_ip(3232235521)
    '192.168.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(mac: str) -> bytes:
    """Convert ``"aa:bb:cc:dd:ee:ff"`` to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address {mac!r}")
    try:
        return bytes(int(p, 16) for p in parts)
    except ValueError as exc:
        raise ValueError(f"invalid MAC address {mac!r}") from exc


def bytes_to_mac(raw: bytes) -> str:
    """Convert 6 raw bytes to colon-separated hex notation."""
    if len(raw) != 6:
        raise ValueError(f"MAC must be 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02x}" for b in raw)


def is_private_ip(ip: str) -> bool:
    """True for RFC1918 private ranges (10/8, 172.16/12, 192.168/16)."""
    value = ip_to_int(ip)
    if value >> 24 == 10:
        return True
    if value >> 20 == (172 << 4) | 1:  # 172.16.0.0/12
        return True
    if value >> 16 == (192 << 8) | 168:
        return True
    return False


def random_mac(rng: SeededRNG, *, vendor_prefix: bytes | None = None) -> str:
    """Generate a locally-administered unicast MAC address."""
    if vendor_prefix is not None:
        if len(vendor_prefix) != 3:
            raise ValueError("vendor_prefix must be 3 bytes")
        head = bytearray(vendor_prefix)
    else:
        head = bytearray(int(x) for x in rng.integers(0, 256, size=3))
        head[0] = (head[0] | 0x02) & 0xFE  # locally administered, unicast
    tail = bytes(int(x) for x in rng.integers(0, 256, size=3))
    return bytes_to_mac(bytes(head) + tail)
