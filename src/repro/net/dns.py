"""Minimal DNS message codec (RFC 1035) — queries and A-record answers.

IoT benign-traffic models emit periodic DNS lookups, and Slips' baseline
"connection without DNS resolution" heuristic needs to see them, so the
codec supports exactly the subset the generators produce: a single
question, optional A answers, no compression pointers on encode (they
are accepted on decode for robustness).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

QTYPE_A = 1
QCLASS_IN = 1

FLAG_QR_RESPONSE = 0x8000
FLAG_RD = 0x0100
FLAG_RA = 0x0080


def encode_name(name: str) -> bytes:
    """Encode a domain name as length-prefixed labels."""
    out = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not 0 < len(raw) < 64:
            raise ValueError(f"invalid DNS label {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) domain name.

    Returns ``(name, next_offset)`` where ``next_offset`` is the offset
    just past the name in the original stream.
    """
    labels: list[str] = []
    jumped = False
    next_offset = offset
    seen: set[int] = set()
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise ValueError("truncated DNS compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if pointer in seen:
                raise ValueError("DNS compression loop")
            seen.add(pointer)
            if not jumped:
                next_offset = offset + 2
                jumped = True
            offset = pointer
            continue
        offset += 1
        if length == 0:
            break
        labels.append(data[offset : offset + length].decode("ascii", "replace"))
        offset += length
    if not jumped:
        next_offset = offset
    return ".".join(labels), next_offset


@dataclass
class DNSQuestion:
    """One DNS question entry."""

    name: str
    qtype: int = QTYPE_A
    qclass: int = QCLASS_IN

    def to_bytes(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype, self.qclass)


@dataclass
class DNSAnswer:
    """One DNS A-record answer."""

    name: str
    address: str
    ttl: int = 300

    def to_bytes(self) -> bytes:
        from repro.net.addresses import ip_to_int

        return (
            encode_name(self.name)
            + struct.pack("!HHIH", QTYPE_A, QCLASS_IN, self.ttl, 4)
            + struct.pack("!I", ip_to_int(self.address))
        )


@dataclass
class DNSMessage:
    """A DNS message restricted to single-question A lookups."""

    transaction_id: int = 0
    is_response: bool = False
    questions: list[DNSQuestion] = field(default_factory=list)
    answers: list[DNSAnswer] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        flags = FLAG_RD
        if self.is_response:
            flags |= FLAG_QR_RESPONSE | FLAG_RA
        header = struct.pack(
            "!HHHHHH",
            self.transaction_id & 0xFFFF,
            flags,
            len(self.questions),
            len(self.answers),
            0,
            0,
        )
        body = b"".join(q.to_bytes() for q in self.questions)
        body += b"".join(a.to_bytes() for a in self.answers)
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DNSMessage":
        if len(data) < 12:
            raise ValueError("DNS message too short")
        tid, flags, qdcount, ancount, _ns, _ar = struct.unpack("!HHHHHH", data[:12])
        message = cls(transaction_id=tid, is_response=bool(flags & FLAG_QR_RESPONSE))
        offset = 12
        for _ in range(qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise ValueError("truncated DNS question")
            qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            message.questions.append(DNSQuestion(name=name, qtype=qtype, qclass=qclass))
        for _ in range(ancount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise ValueError("truncated DNS answer")
            rtype, rclass, ttl, rdlength = struct.unpack(
                "!HHIH", data[offset : offset + 10]
            )
            offset += 10
            rdata = data[offset : offset + rdlength]
            offset += rdlength
            if rtype == QTYPE_A and rclass == QCLASS_IN and rdlength == 4:
                from repro.net.addresses import int_to_ip

                address = int_to_ip(struct.unpack("!I", rdata)[0])
                message.answers.append(DNSAnswer(name=name, address=address, ttl=ttl))
        return message
