"""ARP codec (RFC 826) for Ethernet/IPv4."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addresses import bytes_to_mac, int_to_ip, ip_to_int, mac_to_bytes

HEADER_LEN = 28

OP_REQUEST = 1
OP_REPLY = 2


@dataclass
class ARPHeader:
    """An ARP message for the Ethernet/IPv4 combination."""

    operation: int = OP_REQUEST
    sender_mac: str = "00:00:00:00:00:00"
    sender_ip: str = "0.0.0.0"
    target_mac: str = "00:00:00:00:00:00"
    target_ip: str = "0.0.0.0"

    def to_bytes(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, 0x0800, 6, 4, self.operation)
            + mac_to_bytes(self.sender_mac)
            + struct.pack("!I", ip_to_int(self.sender_ip))
            + mac_to_bytes(self.target_mac)
            + struct.pack("!I", ip_to_int(self.target_ip))
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["ARPHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError(f"ARP message too short: {len(data)} bytes")
        htype, ptype, hlen, plen, oper = struct.unpack("!HHBBH", data[:8])
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise ValueError("unsupported ARP hardware/protocol combination")
        header = cls(
            operation=oper,
            sender_mac=bytes_to_mac(data[8:14]),
            sender_ip=int_to_ip(struct.unpack("!I", data[14:18])[0]),
            target_mac=bytes_to_mac(data[18:24]),
            target_ip=int_to_ip(struct.unpack("!I", data[24:28])[0]),
        )
        return header, data[HEADER_LEN:]

    @property
    def header_len(self) -> int:
        return HEADER_LEN
