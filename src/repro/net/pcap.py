"""Classic libpcap capture-file reader and writer.

Implements the original ``.pcap`` format (magic ``0xa1b2c3d4``,
microsecond timestamps, LINKTYPE_ETHERNET) that the public datasets in
the paper ship in. Both byte orders are accepted on read, and the
nanosecond-resolution magic (``0xa1b23c4d``) is supported on both read
and write. The vectorized column decoder in :mod:`repro.net.columnar`
shares :func:`decode_global_header` so the two readers accept and
reject exactly the same files.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import Packet

MAGIC_US = 0xA1B2C3D4  # microsecond timestamps
MAGIC_NS = 0xA1B23C4D  # nanosecond timestamps
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapFormatError(ValueError):
    """Raised when a capture file is malformed."""


def decode_global_header(header: bytes) -> tuple[str, int]:
    """Validate a 24-byte global header; return ``(endian, divisor)``.

    ``endian`` is the struct prefix (``"<"`` or ``">"``) the record
    headers use; ``divisor`` converts the fractional timestamp field to
    seconds (1e6 for microsecond magic, 1e9 for nanosecond magic).
    """
    if len(header) < 24:
        raise PcapFormatError("file too short for pcap global header")
    (magic,) = struct.unpack("<I", header[:4])
    if magic in (MAGIC_US, MAGIC_NS):
        endian = "<"
    else:
        (magic_be,) = struct.unpack(">I", header[:4])
        if magic_be not in (MAGIC_US, MAGIC_NS):
            raise PcapFormatError(f"bad pcap magic {magic:#x}")
        magic = magic_be
        endian = ">"
    divisor = 1_000_000 if magic == MAGIC_US else 1_000_000_000
    _vmaj, _vmin, _tz, _sig, _snap, linktype = struct.unpack(
        f"{endian}HHiIII", header[4:]
    )
    if linktype != LINKTYPE_ETHERNET:
        raise PcapFormatError(
            f"unsupported linktype {linktype}; only Ethernet is supported"
        )
    return endian, divisor


class PcapWriter:
    """Streams packets to a libpcap file.

    Use as a context manager::

        with PcapWriter(path) as writer:
            for packet in packets:
                writer.write(packet)

    With ``nanosecond=True`` the file carries the nanosecond magic and
    timestamps round-trip at full float64 resolution instead of being
    quantized to microseconds.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        snaplen: int = 65535,
        nanosecond: bool = False,
    ) -> None:
        self.path = Path(path)
        self.snaplen = snaplen
        self.nanosecond = nanosecond
        self._fh: BinaryIO | None = None
        self.packets_written = 0

    @property
    def _ts_scale(self) -> int:
        return 1_000_000_000 if self.nanosecond else 1_000_000

    def __enter__(self) -> "PcapWriter":
        self._fh = open(self.path, "wb")
        magic = MAGIC_NS if self.nanosecond else MAGIC_US
        self._fh.write(
            _GLOBAL_HEADER.pack(
                magic, 2, 4, 0, 0, self.snaplen, LINKTYPE_ETHERNET
            )
        )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def write(self, packet: Packet) -> None:
        """Append one packet. Frames longer than ``snaplen`` are truncated
        on capture length, preserving the original length field."""
        if self._fh is None:
            raise RuntimeError("PcapWriter must be used as a context manager")
        frame = packet.to_bytes()
        scale = self._ts_scale
        ts_sec = int(packet.timestamp)
        ts_frac = int(round((packet.timestamp - ts_sec) * scale))
        if ts_frac >= scale:  # rounding carried into the next second
            ts_sec += 1
            ts_frac -= scale
        captured = frame[: self.snaplen]
        self._fh.write(
            _RECORD_HEADER.pack(ts_sec, ts_frac, len(captured), len(frame))
        )
        self._fh.write(captured)
        self.packets_written += 1


class PcapReader:
    """Iterates packets out of a libpcap file.

    Handles both byte orders and both microsecond and nanosecond magic.
    Yields :class:`Packet` objects with timestamps restored; labels are
    absent (pcap carries no ground truth — see module docstring of
    :mod:`repro.net.packet`).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._endian = "<"
        self._ts_divisor = 1_000_000

    def __iter__(self) -> Iterator[Packet]:
        with open(self.path, "rb") as fh:
            self._read_global_header(fh)
            while True:
                record = fh.read(16)
                if not record:
                    return
                if len(record) < 16:
                    raise PcapFormatError("truncated pcap record header")
                ts_sec, ts_frac, incl_len, orig_len = struct.unpack(
                    f"{self._endian}IIII", record
                )
                frame = fh.read(incl_len)
                if len(frame) < incl_len:
                    raise PcapFormatError("truncated pcap packet body")
                timestamp = ts_sec + ts_frac / self._ts_divisor
                packet = Packet.from_bytes(frame, timestamp=timestamp)
                packet.meta["orig_len"] = orig_len
                yield packet

    def _read_global_header(self, fh: BinaryIO) -> None:
        self._endian, self._ts_divisor = decode_global_header(fh.read(24))


def write_pcap(
    path: str | Path,
    packets: Iterable[Packet],
    *,
    nanosecond: bool = False,
) -> int:
    """Write ``packets`` to ``path``; returns the number written."""
    with PcapWriter(path, nanosecond=nanosecond) as writer:
        for packet in packets:
            writer.write(packet)
        return writer.packets_written


def read_pcap(path: str | Path) -> list[Packet]:
    """Read every packet from ``path`` into a list."""
    return list(PcapReader(path))
