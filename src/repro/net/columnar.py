"""Columnar zero-copy packet ingest: mmap pcap decode into column batches.

The object pipeline (``PcapReader`` → per-packet ``Packet.from_bytes``)
tops out around 66k pps because every record pays Python-level struct
unpacking and dataclass construction. NetStat, however, only ever reads
seven things per packet: timestamp, wire length, source MAC, the two
IPs, and the two ports. This module decodes exactly those fields for a
whole batch of records at once with vectorized NumPy gathers over a
memory-mapped capture file — structure-of-arrays instead of
array-of-structures — and never materializes a ``Packet`` on the hot
path.

* :class:`ColumnBatch` — the structure-of-arrays record: one NumPy
  column per field, plus lazy per-row :meth:`~ColumnBatch.hydrate` back
  into a full :class:`~repro.net.packet.Packet` when a caller needs
  complete decode (warmup training, DNS/HTTP layers).
* :class:`ColumnarPcapReader` — mmap + vectorized decode of a libpcap
  file into ``ColumnBatch`` chunks.
* :meth:`ColumnBatch.from_packets` — the adapter for in-memory packet
  sequences (dataset replays), so sharded streaming can use column-slice
  IPC for any source.

Parity contract (enforced by tests and ``bench_ingest_throughput``):
every value the columnar path exposes — timestamps, wire lengths,
NetStat key strings, shard keys, error messages and the row at which
they fire — is bit-for-bit identical to what the object path produces
for the same capture, including ARP, non-IP, snaplen-clipped and
truncated edge records. See ``docs/PERFORMANCE.md`` ("Ingest").
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Iterable, Iterator, NamedTuple

import numpy as np

from repro.net.addresses import ip_to_int, mac_to_bytes
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.net.packet import Packet
from repro.net.pcap import PcapFormatError, decode_global_header

#: Default rows per decoded :class:`ColumnBatch`.
DEFAULT_BATCH_SIZE = 8192

# Row classification codes (``ColumnBatch.kind``). These are a decode
# detail — NetStat keys and shard keys depend only on the address
# columns plus the ``has_ether`` / ``ip_present`` flags.
KIND_L2 = 0  #: Ethernet frame that is neither IPv4 nor ARP.
KIND_ARP = 1
KIND_IPV4 = 2  #: IPv4 with a transport NetStat does not read ports from.
KIND_ICMP = 3
KIND_TCP = 4
KIND_UDP = 5


class FlowKey(NamedTuple):
    """One unique flow of a batch, with object-path-identical strings."""

    src_mac: str
    dst_mac: str
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    has_ether: bool
    ip_present: bool


class ColumnBatch:
    """A batch of packets as columns (structure-of-arrays).

    Columns (all length ``n``):

    * ``timestamps`` — float64 epoch seconds, bit-identical to the
      object reader's ``ts_sec + ts_frac / divisor``;
    * ``wire_len`` — float64 NetStat packet size
      (``Packet.wire_len`` semantics, already float for the kernel);
    * ``kind`` — uint8 ``KIND_*`` classification;
    * ``has_ether`` / ``ip_present`` — bools driving the ``"??"`` MAC
      fallback and the IP-vs-MAC shard key choice;
    * ``src_mac`` / ``dst_mac`` — ``(n, 6)`` uint8 raw MAC bytes;
    * ``src_ip`` / ``dst_ip`` — uint32 addresses (0 when absent);
    * ``src_port`` / ``dst_port`` — uint16 (0 when absent).

    ``labels`` / ``attack_types`` are ``None`` for unlabelled captures
    (meaning all-0 / all-``""``) or plain lists mirroring the source
    packets. Use :meth:`row_labels` / :meth:`row_attack_types` to
    materialize.

    Batches sliced out of a reader keep a reference to the mmap'd file
    for lazy :meth:`hydrate`; :meth:`take` (used for shard fan-out)
    drops it so column slices pickle small for worker IPC.
    """

    __slots__ = (
        "timestamps",
        "wire_len",
        "kind",
        "has_ether",
        "ip_present",
        "src_mac",
        "dst_mac",
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "labels",
        "attack_types",
        "_frames",
        "_packets",
        "_flows",
    )

    def __init__(
        self,
        timestamps: np.ndarray,
        wire_len: np.ndarray,
        kind: np.ndarray,
        has_ether: np.ndarray,
        ip_present: np.ndarray,
        src_mac: np.ndarray,
        dst_mac: np.ndarray,
        src_ip: np.ndarray,
        dst_ip: np.ndarray,
        src_port: np.ndarray,
        dst_port: np.ndarray,
        *,
        labels: list | None = None,
        attack_types: list | None = None,
        frames: tuple | None = None,
        packets: list | None = None,
    ) -> None:
        self.timestamps = timestamps
        self.wire_len = wire_len
        self.kind = kind
        self.has_ether = has_ether
        self.ip_present = ip_present
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.labels = labels
        self.attack_types = attack_types
        self._frames = frames
        self._packets = packets
        self._flows = None

    def __len__(self) -> int:
        return self.timestamps.shape[0]

    # -- construction ----------------------------------------------------
    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "ColumnBatch":
        """Columnize an in-memory packet sequence.

        Accepts anything packet-shaped (``Packet``, ``WirePacket``):
        only ``timestamp``, ``ether``, ``src_ip``/``dst_ip``,
        ``src_port``/``dst_port``, ``wire_len``, ``label`` and
        ``attack_type`` are read. The originals are retained so
        :meth:`hydrate` is free and exact."""
        packets = list(packets)
        n = len(packets)
        timestamps = np.empty(n)
        wire_len = np.empty(n)
        kind = np.zeros(n, dtype=np.uint8)
        has_ether = np.zeros(n, dtype=bool)
        ip_present = np.zeros(n, dtype=bool)
        src_mac = np.zeros((n, 6), dtype=np.uint8)
        dst_mac = np.zeros((n, 6), dtype=np.uint8)
        src_ip = np.zeros(n, dtype=np.uint32)
        dst_ip = np.zeros(n, dtype=np.uint32)
        src_port = np.zeros(n, dtype=np.uint16)
        dst_port = np.zeros(n, dtype=np.uint16)
        labels: list = []
        attacks: list = []
        for i, packet in enumerate(packets):
            timestamps[i] = packet.timestamp
            wire_len[i] = packet.wire_len
            ether = packet.ether
            if ether is not None:
                has_ether[i] = True
                src_mac[i] = np.frombuffer(
                    mac_to_bytes(ether.src_mac), dtype=np.uint8
                )
                dst_mac[i] = np.frombuffer(
                    mac_to_bytes(ether.dst_mac), dtype=np.uint8
                )
            sip = packet.src_ip
            dip = packet.dst_ip
            if sip is not None or dip is not None:
                ip_present[i] = True
                kind[i] = KIND_IPV4
            if sip is not None:
                src_ip[i] = ip_to_int(sip)
            if dip is not None:
                dst_ip[i] = ip_to_int(dip)
            sport = packet.src_port
            if sport is not None:
                src_port[i] = sport
            dport = packet.dst_port
            if dport is not None:
                dst_port[i] = dport
            labels.append(packet.label)
            attacks.append(packet.attack_type)
        return cls(
            timestamps, wire_len, kind, has_ether, ip_present,
            src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port,
            labels=labels, attack_types=attacks, packets=packets,
        )

    # -- reshaping -------------------------------------------------------
    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """Contiguous row range as views (no copies); hydration kept."""
        frames = self._frames
        if frames is not None:
            buf, off, length, orig = frames
            frames = (buf, off[start:stop], length[start:stop], orig[start:stop])
        return ColumnBatch(
            self.timestamps[start:stop],
            self.wire_len[start:stop],
            self.kind[start:stop],
            self.has_ether[start:stop],
            self.ip_present[start:stop],
            self.src_mac[start:stop],
            self.dst_mac[start:stop],
            self.src_ip[start:stop],
            self.dst_ip[start:stop],
            self.src_port[start:stop],
            self.dst_port[start:stop],
            labels=None if self.labels is None else self.labels[start:stop],
            attack_types=(
                None
                if self.attack_types is None
                else self.attack_types[start:stop]
            ),
            frames=frames,
            packets=None if self._packets is None else self._packets[start:stop],
        )

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Gather ``indices`` into a compact copy for worker IPC.

        Drops the hydration sources (mmap buffer / retained packets) so
        the result pickles as bare columns — a shard's column slice must
        not drag the whole capture file through the queue."""
        idx = np.asarray(indices, dtype=np.int64)
        rows = idx.tolist()
        return ColumnBatch(
            self.timestamps[idx],
            self.wire_len[idx],
            self.kind[idx],
            self.has_ether[idx],
            self.ip_present[idx],
            self.src_mac[idx],
            self.dst_mac[idx],
            self.src_ip[idx],
            self.dst_ip[idx],
            self.src_port[idx],
            self.dst_port[idx],
            labels=(
                None
                if self.labels is None
                else [self.labels[j] for j in rows]
            ),
            attack_types=(
                None
                if self.attack_types is None
                else [self.attack_types[j] for j in rows]
            ),
        )

    # -- pickling (worker IPC) -------------------------------------------
    def __getstate__(self) -> dict:
        # Hydration sources never cross process boundaries: the mmap
        # buffer would serialize the whole capture and retained packet
        # objects defeat column-slice IPC.
        return {
            "timestamps": np.ascontiguousarray(self.timestamps),
            "wire_len": np.ascontiguousarray(self.wire_len),
            "kind": np.ascontiguousarray(self.kind),
            "has_ether": np.ascontiguousarray(self.has_ether),
            "ip_present": np.ascontiguousarray(self.ip_present),
            "src_mac": np.ascontiguousarray(self.src_mac),
            "dst_mac": np.ascontiguousarray(self.dst_mac),
            "src_ip": np.ascontiguousarray(self.src_ip),
            "dst_ip": np.ascontiguousarray(self.dst_ip),
            "src_port": np.ascontiguousarray(self.src_port),
            "dst_port": np.ascontiguousarray(self.dst_port),
            "labels": self.labels,
            "attack_types": self.attack_types,
        }

    def __setstate__(self, state: dict) -> None:
        for name in (
            "timestamps", "wire_len", "kind", "has_ether", "ip_present",
            "src_mac", "dst_mac", "src_ip", "dst_ip", "src_port", "dst_port",
            "labels", "attack_types",
        ):
            setattr(self, name, state[name])
        self._frames = None
        self._packets = None
        self._flows = None

    # -- row materialization ---------------------------------------------
    def row_labels(self) -> list:
        """Per-row labels (``0`` for unlabelled captures)."""
        if self.labels is not None:
            return list(self.labels)
        return [0] * len(self)

    def row_attack_types(self) -> list:
        """Per-row attack types (``""`` for unlabelled captures)."""
        if self.attack_types is not None:
            return list(self.attack_types)
        return [""] * len(self)

    @property
    def can_hydrate(self) -> bool:
        return self._frames is not None or self._packets is not None

    def hydrate(self, index: int) -> Packet:
        """Fully decode row ``index`` into a :class:`Packet`.

        Off the hot path by design: warmup training and protocol-layer
        consumers (DNS/HTTP) get complete objects; the feature path
        never calls this."""
        if self._packets is not None:
            return self._packets[index]
        if self._frames is None:
            raise RuntimeError(
                "ColumnBatch cannot hydrate: no frame buffer retained "
                "(batches sent through take()/IPC are columns only)"
            )
        buf, off, length, orig = self._frames
        start = int(off[index])
        frame = bytes(memoryview(buf)[start : start + int(length[index])])
        packet = Packet.from_bytes(
            frame, timestamp=float(self.timestamps[index])
        )
        packet.meta["orig_len"] = int(orig[index])
        return packet

    def hydrate_range(self, start: int, stop: int) -> list[Packet]:
        return [self.hydrate(i) for i in range(start, stop)]

    def iter_packets(self) -> Iterator[Packet]:
        for i in range(len(self)):
            yield self.hydrate(i)

    # -- flow keys --------------------------------------------------------
    def flow_table(self) -> tuple[np.ndarray, list[FlowKey]]:
        """``(inverse, flows)``: per-row index into unique flows.

        A flow is the tuple of everything NetStat keys and shard keys
        depend on. Packing it into 25 bytes per row and deduplicating
        through one dict pass means the string formatting
        (``"a.b.c.d"``, ``"aa:bb:..."``) runs once per unique flow, not
        once per packet — the object path pays it per packet. Flows are
        listed in first-occurrence order (``flow_first_rows`` maps each
        back to its first row), which is exactly the order the per-row
        walk would intern new streams in."""
        if self._flows is None:
            self._build_flows()
        inverse, flows, _ = self._flows
        return inverse, flows

    def flow_first_rows(self) -> list[int]:
        """Row index of each unique flow's first packet."""
        if self._flows is None:
            self._build_flows()
        return self._flows[2]

    def _build_flows(self) -> None:
        n = len(self)
        if n == 0:
            self._flows = (np.empty(0, dtype=np.int64), [], [])
            return
        packed = np.empty((n, 25), dtype=np.uint8)
        packed[:, 0] = self.has_ether + (
            self.ip_present.astype(np.uint8) << 1
        )
        packed[:, 1:7] = self.src_mac
        packed[:, 7:13] = self.dst_mac
        packed[:, 13:17] = (
            self.src_ip.astype(">u4").view(np.uint8).reshape(n, 4)
        )
        packed[:, 17:21] = (
            self.dst_ip.astype(">u4").view(np.uint8).reshape(n, 4)
        )
        packed[:, 21:23] = (
            self.src_port.astype(">u2").view(np.uint8).reshape(n, 2)
        )
        packed[:, 23:25] = (
            self.dst_port.astype(">u2").view(np.uint8).reshape(n, 2)
        )
        # Vectorized first-occurrence dedup: view each padded record as
        # four u64 words, lexsort (stable, so equal records keep row
        # order), then group runs of equal words. Groups come out in
        # key order; re-ranking by each group's first row restores the
        # first-occurrence numbering the per-row walk would produce.
        padded = np.zeros((n, 32), dtype=np.uint8)
        padded[:, :25] = packed
        words = padded.view(np.uint64)
        order = np.lexsort(
            (words[:, 3], words[:, 2], words[:, 1], words[:, 0])
        )
        sorted_words = words[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        if n > 1:
            np.any(
                sorted_words[1:] != sorted_words[:-1],
                axis=1, out=new_group[1:],
            )
        group_of_sorted = np.cumsum(new_group) - 1
        firsts_sorted = order[np.nonzero(new_group)[0]]
        perm = np.argsort(firsts_sorted, kind="stable")
        rank = np.empty(perm.shape[0], dtype=np.int64)
        rank[perm] = np.arange(perm.shape[0])
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = rank[group_of_sorted]
        first_rows_arr = firsts_sorted[perm]
        uniq_raw = packed.take(first_rows_arr, axis=0).tobytes()
        flows = [
            _flow_from_record(uniq_raw[pos : pos + 25])
            for pos in range(0, len(uniq_raw), 25)
        ]
        self._flows = (inverse, flows, first_rows_arr.tolist())


#: Byte → formatted-octet tables: identical output to
#: :func:`repro.net.addresses.bytes_to_mac` / ``int_to_ip`` at a
#: fraction of the per-call cost (flow_table runs these per unique flow).
_HEX_OCTET = tuple(f"{i:02x}" for i in range(256))
_DEC_OCTET = tuple(str(i) for i in range(256))


def _flow_from_record(rec: bytes) -> FlowKey:
    flags = rec[0]
    has_ether = bool(flags & 1)
    hx = _HEX_OCTET
    dc = _DEC_OCTET
    if has_ether:
        src_mac = (
            f"{hx[rec[1]]}:{hx[rec[2]]}:{hx[rec[3]]}:"
            f"{hx[rec[4]]}:{hx[rec[5]]}:{hx[rec[6]]}"
        )
        dst_mac = (
            f"{hx[rec[7]]}:{hx[rec[8]]}:{hx[rec[9]]}:"
            f"{hx[rec[10]]}:{hx[rec[11]]}:{hx[rec[12]]}"
        )
    else:
        src_mac = dst_mac = "??"
    return FlowKey(
        src_mac,
        dst_mac,
        f"{dc[rec[13]]}.{dc[rec[14]]}.{dc[rec[15]]}.{dc[rec[16]]}",
        f"{dc[rec[17]]}.{dc[rec[18]]}.{dc[rec[19]]}.{dc[rec[20]]}",
        (rec[21] << 8) | rec[22],
        (rec[23] << 8) | rec[24],
        has_ether,
        bool(flags & 2),
    )


class ColumnarPcapReader:
    """Vectorized libpcap decode: mmap the file, gather columns.

    Iterating yields :class:`ColumnBatch` chunks of ``batch_size``
    rows. Handles both byte orders and both microsecond and nanosecond
    magic, exactly like :class:`~repro.net.pcap.PcapReader`, and raises
    the same errors at the same record — complete records decoded
    before a malformed one are still yielded first, mirroring how the
    object reader yields packets until it hits the bad record."""

    def __init__(
        self, path: str | Path, *, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> None:
        self.path = Path(path)
        self.batch_size = int(batch_size)
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def __iter__(self) -> Iterator[ColumnBatch]:
        with open(self.path, "rb") as fh:
            header = fh.read(24)
            if len(header) < 24:
                raise PcapFormatError("file too short for pcap global header")
            endian, divisor = decode_global_header(header)
            try:
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:
                return  # header-only file already consumed above
        # The mmap (not the fh) backs every yielded batch's frame
        # buffer; it is unmapped when the last batch is collected.
        yield from self._batches(mapped, endian == "<", divisor)

    def _batches(
        self, mapped: mmap.mmap, little: bool, divisor: int
    ) -> Iterator[ColumnBatch]:
        data = np.frombuffer(mapped, dtype=np.uint8)
        file_len = data.size
        byteorder = "little" if little else "big"
        pos = 24
        offsets: list[int] = []
        while pos < file_len:
            if file_len - pos < 16:
                yield from self._flush(offsets, data, little, divisor)
                raise PcapFormatError("truncated pcap record header")
            incl_len = int.from_bytes(mapped[pos + 8 : pos + 12], byteorder)
            if file_len - pos - 16 < incl_len:
                yield from self._flush(offsets, data, little, divisor)
                raise PcapFormatError("truncated pcap packet body")
            offsets.append(pos)
            pos += 16 + incl_len
            if len(offsets) == self.batch_size:
                yield from self._flush(offsets, data, little, divisor)
                offsets = []
        yield from self._flush(offsets, data, little, divisor)

    def _flush(
        self,
        offsets: list[int],
        data: np.ndarray,
        little: bool,
        divisor: int,
    ) -> Iterator[ColumnBatch]:
        if not offsets:
            return
        batch, error = _decode_records(data, offsets, little, divisor)
        if batch is not None:
            yield batch
        if error is not None:
            raise error


def iter_column_batches(
    source, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[ColumnBatch]:
    """Column batches from any packet source.

    Sources exposing ``iter_batches`` (``PcapReplaySource``) decode
    columns natively; anything else is columnized from its object
    packets — slower, but it gives dataset replays the same column-slice
    IPC path in sharded streaming."""
    iter_batches = getattr(source, "iter_batches", None)
    if iter_batches is not None:
        yield from iter_batches(batch_size)
        return
    buffered: list[Packet] = []
    for packet in source:
        buffered.append(packet)
        if len(buffered) >= batch_size:
            yield ColumnBatch.from_packets(buffered)
            buffered = []
    if buffered:
        yield ColumnBatch.from_packets(buffered)


def _decode_records(
    data: np.ndarray, offsets: list[int], little: bool, divisor: int
) -> tuple[ColumnBatch | None, ValueError | None]:
    """Decode the records at ``offsets`` into one :class:`ColumnBatch`.

    Returns ``(batch, error)``. When a record's frame is malformed the
    batch covers the rows before it (``None`` when it is the first row)
    and ``error`` carries the exact ``ValueError`` the object decoders
    raise for that frame, so consumers see failures in record order."""
    o = np.asarray(offsets, dtype=np.int64)
    k = o.size
    nb = data.size
    clamp = nb - 1

    def g8(idx: np.ndarray) -> np.ndarray:
        # Clamped gather: malformed rows may point past the buffer;
        # their garbage values are discarded once the error row is cut.
        return data[np.minimum(idx, clamp)]

    def be16(idx: np.ndarray) -> np.ndarray:
        return (g8(idx).astype(np.uint16) << 8) | g8(idx + 1)

    def be32(idx: np.ndarray) -> np.ndarray:
        return (
            (g8(idx).astype(np.uint32) << 24)
            | (g8(idx + 1).astype(np.uint32) << 16)
            | (g8(idx + 2).astype(np.uint32) << 8)
            | g8(idx + 3)
        )

    def rec32(idx: np.ndarray) -> np.ndarray:
        # Record-header field in file byte order (always in-bounds).
        if little:
            return (
                (data[idx + 3].astype(np.uint32) << 24)
                | (data[idx + 2].astype(np.uint32) << 16)
                | (data[idx + 1].astype(np.uint32) << 8)
                | data[idx]
            )
        return be32(idx)

    ts_sec = rec32(o)
    ts_frac = rec32(o + 4)
    incl = rec32(o + 8)
    orig = rec32(o + 12)
    timestamps = ts_sec.astype(np.float64) + ts_frac.astype(np.float64) / divisor

    f = o + 16  # frame start per record
    L = incl.astype(np.int64)  # captured frame length

    err_idx = k
    err: ValueError | None = None

    def flag(mask: np.ndarray, render) -> None:
        nonlocal err_idx, err
        if mask.any():
            i = int(np.flatnonzero(mask)[0])
            if i < err_idx:
                err_idx = i
                err = render(i)

    ok = L >= 14
    flag(~ok, lambda i: ValueError(
        f"Ethernet frame too short: {int(L[i])} bytes"
    ))
    ethertype = np.where(ok, be16(f + 12), 0)
    arp = ok & (ethertype == ETHERTYPE_ARP)
    ip4 = ok & (ethertype == ETHERTYPE_IPV4)
    l2 = ok & ~arp & ~ip4

    # ARP: fixed 28-byte body, sender/target IPs at frame offsets 28/38.
    arp_len = L - 14
    bad = arp & (arp_len < 28)
    flag(bad, lambda i: ValueError(
        f"ARP message too short: {int(arp_len[i])} bytes"
    ))
    arp_ok = arp & ~bad
    combo_bad = arp_ok & ~(
        (be16(f + 14) == 1)
        & (be16(f + 16) == ETHERTYPE_IPV4)
        & (g8(f + 18) == 6)
        & (g8(f + 19) == 4)
    )
    flag(combo_bad, lambda i: ValueError(
        "unsupported ARP hardware/protocol combination"
    ))
    arp_ok &= ~combo_bad

    # IPv4 header: the object decoder's checks in its exact order.
    ip_len = L - 14
    bad = ip4 & (ip_len < 20)
    flag(bad, lambda i: ValueError(
        f"IPv4 header too short: {int(ip_len[i])} bytes"
    ))
    ip_ok = ip4 & ~bad
    vihl = g8(f + 14).astype(np.int64)
    version = vihl >> 4
    bad = ip_ok & (version != 4)
    flag(bad, lambda i: ValueError(
        f"not an IPv4 packet (version={int(version[i])})"
    ))
    ip_ok &= ~bad
    ihl = (vihl & 0xF) * 4
    bad = ip_ok & ((ihl < 20) | (ip_len < ihl))
    flag(bad, lambda i: ValueError(f"invalid IHL {int(ihl[i])}"))
    ip_ok &= ~bad

    total_length = be16(f + 16).astype(np.int64)
    proto = g8(f + 23)
    # Ethernet padding past total_length is clipped, exactly like the
    # object decoder's payload_end.
    payload_end = np.where(
        total_length >= ihl, np.minimum(ip_len, total_length), ip_len
    )
    rest = payload_end - ihl  # transport header + payload bytes
    t = f + 14 + ihl  # transport start per record

    tcp = ip_ok & (proto == 6)
    udp = ip_ok & (proto == 17)
    icmp = ip_ok & (proto == 1)
    ip_other = ip_ok & ~tcp & ~udp & ~icmp

    bad = tcp & (rest < 20)
    flag(bad, lambda i: ValueError(
        f"TCP header too short: {int(rest[i])} bytes"
    ))
    tcp_ok = tcp & ~bad
    doff = (g8(t + 12).astype(np.int64) >> 4) * 4
    bad = tcp_ok & ((doff < 20) | (rest < doff))
    flag(bad, lambda i: ValueError(
        f"invalid TCP data offset {int(doff[i])}"
    ))
    tcp_ok &= ~bad

    bad = udp & (rest < 8)
    flag(bad, lambda i: ValueError(
        f"UDP header too short: {int(rest[i])} bytes"
    ))
    udp_ok = udp & ~bad
    udp_total = be16(t + 4).astype(np.int64)
    udp_end = np.where(udp_total >= 8, np.minimum(rest, udp_total), rest)

    bad = icmp & (rest < 8)
    flag(bad, lambda i: ValueError(
        f"ICMP header too short: {int(rest[i])} bytes"
    ))
    icmp_ok = icmp & ~bad

    # wire_len: Packet.wire_len semantics (IPv4 header_len is a fixed
    # 20 regardless of options; transports contribute header + payload).
    wire = np.zeros(k)
    wire[l2] = L[l2]
    wire[arp_ok] = 42.0
    wire[ip_other] = 34 + rest[ip_other]
    wire[icmp_ok] = 34 + rest[icmp_ok]
    wire[tcp_ok] = (54 + rest - doff)[tcp_ok]
    wire[udp_ok] = (34 + udp_end)[udp_ok]

    kind = np.zeros(k, dtype=np.uint8)
    kind[arp_ok] = KIND_ARP
    kind[ip_other] = KIND_IPV4
    kind[icmp_ok] = KIND_ICMP
    kind[tcp_ok] = KIND_TCP
    kind[udp_ok] = KIND_UDP

    src_ip = np.where(ip_ok, be32(f + 26), np.uint32(0))
    src_ip = np.where(arp_ok, be32(f + 28), src_ip).astype(np.uint32)
    dst_ip = np.where(ip_ok, be32(f + 30), np.uint32(0))
    dst_ip = np.where(arp_ok, be32(f + 38), dst_ip).astype(np.uint32)
    ports = tcp_ok | udp_ok
    src_port = np.where(ports, be16(t), np.uint16(0)).astype(np.uint16)
    dst_port = np.where(ports, be16(t + 2), np.uint16(0)).astype(np.uint16)

    mac_idx = f[:, None] + np.arange(6)
    dst_mac = data[np.minimum(mac_idx, clamp)]
    src_mac = data[np.minimum(mac_idx + 6, clamp)]

    if err_idx < k:
        if err_idx == 0:
            return None, err
        sl = slice(0, err_idx)
        batch = ColumnBatch(
            timestamps[sl], wire[sl], kind[sl],
            np.ones(err_idx, dtype=bool), (arp_ok | ip_ok)[sl],
            src_mac[sl], dst_mac[sl], src_ip[sl], dst_ip[sl],
            src_port[sl], dst_port[sl],
            frames=(data, f[sl], L[sl], orig[sl]),
        )
        return batch, err

    batch = ColumnBatch(
        timestamps, wire, kind,
        np.ones(k, dtype=bool), arp_ok | ip_ok,
        src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port,
        frames=(data, f, L, orig),
    )
    return batch, None
