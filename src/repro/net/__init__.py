"""Packet substrate: protocol layers, serialization and pcap files.

This subpackage replaces the role scapy/pyshark and the dataset authors'
pcap files play in the paper: it defines a typed in-memory packet model
(:class:`repro.net.packet.Packet`), binary codecs for the protocol layers
the evaluated IDSs observe (Ethernet, IPv4, TCP, UDP, ICMP, ARP, and
application-layer DNS/HTTP payloads), and a reader/writer for the classic
libpcap capture file format so synthetic datasets can be persisted and
re-read exactly like the public captures.
"""

from repro.net.addresses import (
    ip_to_int,
    int_to_ip,
    mac_to_bytes,
    bytes_to_mac,
    is_private_ip,
    random_mac,
)
from repro.net.checksum import ones_complement_checksum
from repro.net.packet import Packet
from repro.net.ethernet import EthernetHeader, ETHERTYPE_IPV4, ETHERTYPE_ARP
from repro.net.ipv4 import IPv4Header, PROTO_TCP, PROTO_UDP, PROTO_ICMP
from repro.net.tcp import TCPHeader, TCPFlags
from repro.net.udp import UDPHeader
from repro.net.icmp import ICMPHeader
from repro.net.arp import ARPHeader
from repro.net.dns import DNSMessage, DNSQuestion
from repro.net.http import HTTPRequest, HTTPResponse
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.columnar import (
    ColumnBatch,
    ColumnarPcapReader,
    iter_column_batches,
)

__all__ = [
    "Packet",
    "ColumnBatch",
    "ColumnarPcapReader",
    "iter_column_batches",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "TCPFlags",
    "UDPHeader",
    "ICMPHeader",
    "ARPHeader",
    "DNSMessage",
    "DNSQuestion",
    "HTTPRequest",
    "HTTPResponse",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "ip_to_int",
    "int_to_ip",
    "mac_to_bytes",
    "bytes_to_mac",
    "is_private_ip",
    "random_mac",
    "ones_complement_checksum",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_ARP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
]
