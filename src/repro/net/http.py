"""Minimal HTTP/1.1 request/response codecs.

The enterprise benign-traffic model and the web-attack generators
(brute force, DoS slow-rate, web attacks from CICIDS2017) exchange HTTP
payloads; the codecs cover start-line + headers + opaque body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_CRLF = "\r\n"


@dataclass
class HTTPRequest:
    """An HTTP/1.1 request with an opaque byte body."""

    method: str = "GET"
    path: str = "/"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = _CRLF.join(lines) + _CRLF + _CRLF
        return head.encode("latin-1") + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPRequest":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1", "replace").split(_CRLF)
        parts = lines[0].split(" ") if lines else []
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError("malformed HTTP request line")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed HTTP header line {line!r}")
            headers[key.strip()] = value.strip()
        return cls(method=method, path=path, headers=headers, body=body)


@dataclass
class HTTPResponse:
    """An HTTP/1.1 response with an opaque byte body."""

    status: int = 200
    reason: str = "OK"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = _CRLF.join(lines) + _CRLF + _CRLF
        return head.encode("latin-1") + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPResponse":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1", "replace").split(_CRLF)
        parts = lines[0].split(" ", 2) if lines else []
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ValueError("malformed HTTP status line")
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed HTTP header line {line!r}")
            headers[key.strip()] = value.strip()
        return cls(status=status, reason=reason, headers=headers, body=body)
