"""The in-memory packet model shared by generators, features and IDSs.

A :class:`Packet` is a timestamped stack of typed layers (Ethernet →
IPv4 → TCP/UDP/ICMP, or Ethernet → ARP) plus an opaque payload. Ground
truth (``label``/``attack_type``) rides on the object as metadata; it is
deliberately *not* part of the wire format, so writing a packet to pcap
and reading it back loses labels — exactly the situation the paper
describes for unlabelled public captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.arp import ARPHeader
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetHeader
from repro.net.icmp import ICMPHeader
from repro.net.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Header
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader

Transport = TCPHeader | UDPHeader | ICMPHeader


@dataclass
class Packet:
    """A parsed (or generated) network packet.

    Attributes
    ----------
    timestamp:
        Seconds since the epoch, float (microsecond precision survives
        a pcap round-trip).
    ether / ip / transport / arp:
        Typed layer objects; ``None`` where a layer is absent.
    payload:
        Application-layer bytes after the innermost parsed header.
    label:
        Ground-truth 0 (benign) / 1 (attack); metadata only.
    attack_type:
        Human-readable attack family (e.g. ``"ddos-http"``), or ``""``.
    """

    timestamp: float = 0.0
    ether: EthernetHeader | None = None
    ip: IPv4Header | None = None
    transport: Transport | None = None
    arp: ARPHeader | None = None
    payload: bytes = b""
    label: int = 0
    attack_type: str = ""
    meta: dict = field(default_factory=dict)

    # -- convenience accessors -----------------------------------------
    @property
    def src_ip(self) -> str | None:
        if self.ip is not None:
            return self.ip.src_ip
        if self.arp is not None:
            return self.arp.sender_ip
        return None

    @property
    def dst_ip(self) -> str | None:
        if self.ip is not None:
            return self.ip.dst_ip
        if self.arp is not None:
            return self.arp.target_ip
        return None

    @property
    def src_port(self) -> int | None:
        if isinstance(self.transport, (TCPHeader, UDPHeader)):
            return self.transport.src_port
        return None

    @property
    def dst_port(self) -> int | None:
        if isinstance(self.transport, (TCPHeader, UDPHeader)):
            return self.transport.dst_port
        return None

    @property
    def protocol_name(self) -> str:
        if self.arp is not None:
            return "arp"
        if isinstance(self.transport, TCPHeader):
            return "tcp"
        if isinstance(self.transport, UDPHeader):
            return "udp"
        if isinstance(self.transport, ICMPHeader):
            return "icmp"
        if self.ip is not None:
            return self.ip.protocol_name
        return "unknown"

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.transport, TCPHeader)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.transport, UDPHeader)

    @property
    def is_icmp(self) -> bool:
        return isinstance(self.transport, ICMPHeader)

    @property
    def wire_len(self) -> int:
        """Total serialized frame length in bytes."""
        length = 0
        if self.ether is not None:
            length += self.ether.header_len
        if self.arp is not None:
            return length + self.arp.header_len
        if self.ip is not None:
            length += self.ip.header_len
        if self.transport is not None:
            length += self.transport.header_len
        return length + len(self.payload)

    # -- serialization ---------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the layer stack to wire bytes (Ethernet frame)."""
        if self.arp is not None:
            ether = self.ether or EthernetHeader(ethertype=ETHERTYPE_ARP)
            if ether.ethertype != ETHERTYPE_ARP:
                raise ValueError("ARP packet requires ethertype 0x0806")
            return ether.to_bytes() + self.arp.to_bytes()
        if self.ip is None:
            raise ValueError("cannot serialize a packet with no IP or ARP layer")
        inner = b""
        if isinstance(self.transport, TCPHeader):
            inner = self.transport.to_bytes() + self.payload
        elif isinstance(self.transport, UDPHeader):
            inner = self.transport.to_bytes(payload_len=len(self.payload)) + self.payload
        elif isinstance(self.transport, ICMPHeader):
            inner = self.transport.to_bytes(self.payload) + self.payload
        else:
            inner = self.payload
        ether = self.ether or EthernetHeader(ethertype=ETHERTYPE_IPV4)
        return ether.to_bytes() + self.ip.to_bytes(payload_len=len(inner)) + inner

    @classmethod
    def from_bytes(cls, data: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse wire bytes into a :class:`Packet`.

        Unknown ethertypes and IP protocols keep their bytes in
        ``payload`` rather than failing, mirroring how capture tooling
        degrades gracefully on unusual traffic.
        """
        ether, rest = EthernetHeader.from_bytes(data)
        packet = cls(timestamp=timestamp, ether=ether)
        if ether.ethertype == ETHERTYPE_ARP:
            packet.arp, _ = ARPHeader.from_bytes(rest)
            return packet
        if ether.ethertype != ETHERTYPE_IPV4:
            packet.payload = rest
            return packet
        packet.ip, rest = IPv4Header.from_bytes(rest)
        if packet.ip.protocol == PROTO_TCP:
            packet.transport, packet.payload = TCPHeader.from_bytes(rest)
        elif packet.ip.protocol == PROTO_UDP:
            packet.transport, packet.payload = UDPHeader.from_bytes(rest)
        elif packet.ip.protocol == PROTO_ICMP:
            packet.transport, packet.payload = ICMPHeader.from_bytes(rest)
        else:
            packet.payload = rest
        return packet
