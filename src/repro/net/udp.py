"""UDP header codec (RFC 768)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

HEADER_LEN = 8


@dataclass
class UDPHeader:
    """A UDP header. ``length`` covers header + payload; 0 means "fill
    in at serialization time"."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 0

    def to_bytes(self, payload_len: int | None = None) -> bytes:
        length = self.length
        if payload_len is not None:
            length = HEADER_LEN + payload_len
        if length == 0:
            length = HEADER_LEN
        return struct.pack(
            "!HHHH",
            self.src_port & 0xFFFF,
            self.dst_port & 0xFFFF,
            length & 0xFFFF,
            0,  # checksum: optional in IPv4, omitted in synthetic captures
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["UDPHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError(f"UDP header too short: {len(data)} bytes")
        src, dst, length, _checksum = struct.unpack("!HHHH", data[:HEADER_LEN])
        payload_end = min(len(data), length) if length >= HEADER_LEN else len(data)
        return cls(src_port=src, dst_port=dst, length=length), data[HEADER_LEN:payload_end]

    @property
    def header_len(self) -> int:
        return HEADER_LEN
