"""TCP header codec (RFC 793), without options."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntFlag

HEADER_LEN = 20


class TCPFlags(IntFlag):
    """TCP control flags. Combine with ``|``: ``TCPFlags.SYN | TCPFlags.ACK``."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


@dataclass
class TCPHeader:
    """A TCP header with data offset fixed at 5 words (no options)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags.ACK
    window: int = 65535
    urgent: int = 0

    def to_bytes(self) -> bytes:
        offset_flags = (5 << 12) | int(self.flags)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port & 0xFFFF,
            self.dst_port & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            offset_flags,
            self.window & 0xFFFF,
            0,  # checksum: omitted — synthetic captures do not model it
            self.urgent & 0xFFFF,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["TCPHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError(f"TCP header too short: {len(data)} bytes")
        (src, dst, seq, ack, offset_flags, window, _checksum, urgent) = struct.unpack(
            "!HHIIHHHH", data[:HEADER_LEN]
        )
        offset = (offset_flags >> 12) * 4
        if offset < HEADER_LEN or len(data) < offset:
            raise ValueError(f"invalid TCP data offset {offset}")
        header = cls(
            src_port=src,
            dst_port=dst,
            seq=seq,
            ack=ack,
            flags=TCPFlags(offset_flags & 0x1FF),
            window=window,
            urgent=urgent,
        )
        return header, data[offset:]

    @property
    def header_len(self) -> int:
        return HEADER_LEN

    def has(self, flag: TCPFlags) -> bool:
        return bool(self.flags & flag)
