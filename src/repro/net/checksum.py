"""RFC 1071 ones-complement checksum used by IPv4, ICMP, TCP and UDP."""

from __future__ import annotations


def ones_complement_checksum(data: bytes) -> int:
    """Compute the 16-bit ones-complement checksum of ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071.

    >>> ones_complement_checksum(b"\\x00\\x00")
    65535
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    # Fold any remaining carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
