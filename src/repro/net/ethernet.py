"""Ethernet II frame header."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addresses import bytes_to_mac, mac_to_bytes

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

HEADER_LEN = 14


@dataclass
class EthernetHeader:
    """An Ethernet II header (no 802.1Q tag support — none of the
    evaluated datasets rely on VLAN tagging)."""

    src_mac: str = "00:00:00:00:00:01"
    dst_mac: str = "00:00:00:00:00:02"
    ethertype: int = ETHERTYPE_IPV4

    def to_bytes(self) -> bytes:
        return (
            mac_to_bytes(self.dst_mac)
            + mac_to_bytes(self.src_mac)
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["EthernetHeader", bytes]:
        """Parse a header, returning ``(header, remaining_payload)``."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"Ethernet frame too short: {len(data)} bytes")
        dst = bytes_to_mac(data[0:6])
        src = bytes_to_mac(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src_mac=src, dst_mac=dst, ethertype=ethertype), data[14:]

    @property
    def header_len(self) -> int:
        return HEADER_LEN
