"""IPv4 header codec (RFC 791), without options."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addresses import int_to_ip, ip_to_int
from repro.net.checksum import ones_complement_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

HEADER_LEN = 20

PROTOCOL_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}


@dataclass
class IPv4Header:
    """An IPv4 header with a fixed 20-byte length (IHL=5).

    ``total_length`` covers header plus payload; when left at 0 it is
    filled in during :meth:`to_bytes` from the supplied payload length.
    """

    src_ip: str = "0.0.0.0"
    dst_ip: str = "0.0.0.0"
    protocol: int = PROTO_TCP
    ttl: int = 64
    identification: int = 0
    total_length: int = 0
    dscp: int = 0
    flags: int = 2  # DF set, as typical for modern stacks
    fragment_offset: int = 0
    checksum: int = field(default=0, repr=False)

    def to_bytes(self, payload_len: int | None = None) -> bytes:
        total = self.total_length
        if payload_len is not None:
            total = HEADER_LEN + payload_len
        if total == 0:
            total = HEADER_LEN
        version_ihl = (4 << 4) | 5
        flags_frag = ((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp & 0xFF,
            total & 0xFFFF,
            self.identification & 0xFFFF,
            flags_frag,
            self.ttl & 0xFF,
            self.protocol & 0xFF,
            0,  # checksum placeholder
            struct.pack("!I", ip_to_int(self.src_ip)),
            struct.pack("!I", ip_to_int(self.dst_ip)),
        )
        checksum = ones_complement_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["IPv4Header", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError(f"IPv4 header too short: {len(data)} bytes")
        (
            version_ihl,
            dscp,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:HEADER_LEN])
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        ihl = (version_ihl & 0xF) * 4
        if ihl < HEADER_LEN or len(data) < ihl:
            raise ValueError(f"invalid IHL {ihl}")
        header = cls(
            src_ip=int_to_ip(struct.unpack("!I", src_raw)[0]),
            dst_ip=int_to_ip(struct.unpack("!I", dst_raw)[0]),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            total_length=total_length,
            dscp=dscp,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            checksum=checksum,
        )
        payload_end = min(len(data), total_length) if total_length >= ihl else len(data)
        return header, data[ihl:payload_end]

    @property
    def header_len(self) -> int:
        return HEADER_LEN

    @property
    def protocol_name(self) -> str:
        return PROTOCOL_NAMES.get(self.protocol, f"proto-{self.protocol}")

    def verify_checksum(self, raw_header: bytes) -> bool:
        """Check the checksum over the raw 20-byte header."""
        return ones_complement_checksum(raw_header[:HEADER_LEN]) == 0
