"""Pluggable compute backends with capability discovery.

See :mod:`repro.backends.registry` for the model: components declare
their implementations as named backends with parity contracts and
capability probes; callers resolve a name (or ``"auto"``) to the best
backend the host can run.
"""

from repro.backends.registry import (
    ENSEMBLE,
    FEATURE_ENGINE,
    INGEST,
    BackendSpec,
    available_backends,
    backend_names,
    backend_notes,
    capabilities,
    components,
    default_feature_backend,
    default_ingest_backend,
    get_backend,
    register,
    resolve,
)

__all__ = [
    "BackendSpec",
    "FEATURE_ENGINE",
    "ENSEMBLE",
    "INGEST",
    "register",
    "components",
    "backend_names",
    "get_backend",
    "available_backends",
    "resolve",
    "capabilities",
    "default_feature_backend",
    "default_ingest_backend",
    "backend_notes",
]
