"""Compute-backend registry: declared implementations per component.

Every performance-motivated implementation of a hot component is a
*declared backend* with a name, a parity contract, and a capability
probe — never a fork. The registry is the single source of truth for:

* **what exists** — ``backend_names("feature-engine")``;
* **what runs here** — ``available_backends`` / ``capabilities()``
  (is a C compiler present? how many cores?);
* **what to pick** — ``resolve(component, "auto")`` ranks the
  available backends (e.g. the multithreaded native kernel only
  outranks the single-thread one on multi-core hosts);
* **what was picked** — ``backend_notes(ids)`` reports the concrete
  backend driving a constructed IDS, for stream/runner reports and
  ``repro-cli profile``.

Parity is part of the declaration: every feature-engine backend is
gated bit-for-bit against the scalar AfterImage reference by the
shared fixtures in ``tests/test_backends_parity.py``, so backend
choice is a pure throughput knob and the paper's IDS comparison is
backend-independent by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.features import _native
from repro.features import vector as _vector
from repro.features.vector import mt_thread_count

#: Component names backends are declared under.
FEATURE_ENGINE = "feature-engine"
ENSEMBLE = "ensemble"
INGEST = "ingest"


@dataclass(frozen=True)
class BackendSpec:
    """One declared compute backend for one component.

    ``probe`` returns ``None`` when the backend can run on this host,
    or a human-readable reason when it cannot. ``auto_rank`` (when
    set) replaces ``priority`` during ``resolve(..., "auto")`` so a
    backend can rank itself by discovered capabilities (core count).
    """

    component: str
    name: str
    description: str
    parity: str
    expected_speedup: str
    priority: int = 0
    probe: Callable[[], str | None] = field(default=lambda: None)
    auto_rank: Callable[[], int] | None = None

    def availability(self) -> str | None:
        """``None`` when usable here, else the reason it is not."""
        return self.probe()


_REGISTRY: dict[tuple[str, str], BackendSpec] = {}


def register(spec: BackendSpec) -> BackendSpec:
    """Declare a backend; re-registering a (component, name) replaces."""
    _REGISTRY[(spec.component, spec.name)] = spec
    return spec


def components() -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for component, _ in _REGISTRY:
        seen.setdefault(component)
    return tuple(seen)


def backend_names(component: str) -> tuple[str, ...]:
    names = tuple(
        name for comp, name in _REGISTRY if comp == component
    )
    if not names:
        known = ", ".join(components())
        raise KeyError(f"unknown component {component!r}; known: {known}")
    return names


def get_backend(component: str, name: str) -> BackendSpec:
    spec = _REGISTRY.get((component, name))
    if spec is None:
        known = ", ".join(backend_names(component))
        raise KeyError(
            f"unknown {component} backend {name!r}; known: {known}"
        )
    return spec


def available_backends(component: str) -> tuple[BackendSpec, ...]:
    return tuple(
        spec
        for (comp, _), spec in _REGISTRY.items()
        if comp == component and spec.availability() is None
    )


def resolve(component: str, name: str = "auto") -> BackendSpec:
    """The backend to use: an explicit name, or the best available.

    An explicit name must exist *and* be usable here — selecting the
    native kernel on a host without a compiler is an error, not a
    silent fallback (the ``auto`` rank handles graceful degradation).
    """
    if name != "auto":
        spec = get_backend(component, name)
        reason = spec.availability()
        if reason is not None:
            raise RuntimeError(
                f"{component} backend {name!r} unavailable: {reason}"
            )
        return spec
    candidates = available_backends(component)
    if not candidates:
        raise RuntimeError(f"no {component} backend available")

    def rank(spec: BackendSpec) -> int:
        return spec.auto_rank() if spec.auto_rank is not None else spec.priority

    return max(candidates, key=rank)


def capabilities() -> dict:
    """Discovered host capabilities plus per-backend availability."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "native_kernel": _native.load_kernel() is not None,
        "native_kernel_reason": _native.unavailable_reason(),
        "mt_threads": mt_thread_count(),
        "mt_measured_speedup": _vector.measured_mt_speedup(),
        "components": {
            component: {
                spec.name: {
                    "available": spec.availability() is None,
                    "reason": spec.availability(),
                }
                for (comp, _), spec in _REGISTRY.items()
                if comp == component
            }
            for component in components()
        },
    }


def default_feature_backend() -> str:
    """What ``NetStat(engine="vector")`` resolves to on this host."""
    if _native.load_kernel() is not None:
        return "vector-native"
    return "vector-numpy"


def default_ingest_backend() -> str:
    """The ingest backend ``resolve(INGEST, "auto")`` picks here."""
    return resolve(INGEST).name


def backend_notes(ids) -> dict:
    """The concrete backends driving a constructed IDS, for reports.

    Empty for flow-level IDSs — they consume flow feature matrices and
    never touch the per-packet compute backends.
    """
    notes: dict[str, str] = {}
    netstat = getattr(ids, "netstat", None)
    if netstat is not None:
        notes["feature_backend"] = netstat.backend
    kitnet = getattr(ids, "kitnet", None)
    if kitnet is not None:
        notes["ensemble_backend"] = kitnet.resolved_ensemble_backend
    return notes


# -- built-in declarations ---------------------------------------------------

def _native_probe() -> str | None:
    if _native.load_kernel() is None:
        return _native.unavailable_reason() or "native kernel unavailable"
    return None


def _mt_auto_rank() -> int:
    # The group-parallel kernel only outranks the single-thread native
    # kernel when there are cores to overlap on — and when a measured
    # probe agrees. A 2-core host can still clock the pool at <1x
    # (contended CI runners measure 0.93x), so the capability rank
    # trusts the measurement over the core count.
    if (os.cpu_count() or 1) < 2:
        return 15
    measured = _vector.measured_mt_speedup()
    if measured is not None and measured < 1.0:
        return 15  # demoted below vector-native (priority 20)
    return 30


register(BackendSpec(
    component=FEATURE_ENGINE,
    name="scalar",
    description="Reference AfterImage over per-stream IncStat objects",
    parity="is the reference",
    expected_speedup="1x (baseline)",
    priority=0,
))
register(BackendSpec(
    component=FEATURE_ENGINE,
    name="vector-numpy",
    description="Structure-of-arrays engine, row-wise ufunc kernel",
    parity="bit-for-bit vs scalar",
    expected_speedup="~1.5x scalar",
    priority=10,
))
register(BackendSpec(
    component=FEATURE_ENGINE,
    name="vector-native",
    description="Structure-of-arrays engine, single-thread C kernel",
    parity="bit-for-bit vs scalar",
    expected_speedup=">=3x scalar",
    priority=20,
    probe=_native_probe,
))
register(BackendSpec(
    component=FEATURE_ENGINE,
    name="vector-native-mt",
    description=("Batched C kernel, aggregation groups dispatched to a "
                 "GIL-releasing thread pool"),
    parity="bit-for-bit vs scalar (disjoint groups, ordered per group)",
    expected_speedup=">=1.5x vector-native at 2+ cores",
    priority=30,
    probe=_native_probe,
    auto_rank=_mt_auto_rank,
))
def _columnar_probe() -> str | None:
    try:
        import repro.net.columnar  # noqa: F401  (numpy + mmap required)
    except Exception as exc:  # pragma: no cover - import never fails here
        return f"columnar decoder unavailable: {exc}"
    return None


register(BackendSpec(
    component=INGEST,
    name="packet-objects",
    description="Per-packet struct decode into Packet dataclasses",
    parity="is the reference",
    expected_speedup="1x (baseline)",
    priority=0,
))
register(BackendSpec(
    component=INGEST,
    name="columnar-mmap",
    description=("Zero-copy columnar decode: mmap'd capture gathered "
                 "into NetStat-ready column batches"),
    parity="bit-for-bit scores, features and coverage digests vs "
           "packet-objects",
    expected_speedup=">=3x pcap-to-features",
    priority=10,
    probe=_columnar_probe,
))
register(BackendSpec(
    component=ENSEMBLE,
    name="per-row",
    description="Reference KitNET execute loop, one row at a time",
    parity="is the reference",
    expected_speedup="1x (baseline)",
    priority=0,
))
register(BackendSpec(
    component=ENSEMBLE,
    name="batched-einsum",
    description=("Packed ensemble: stacked einsum contractions score "
                 "whole execute-phase batches"),
    parity="bit-for-bit vs per-row",
    expected_speedup=">=3x per-row at batch scale",
    priority=10,
))
