"""Gaussian naive Bayes over flow features."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS

_VAR_FLOOR = 1e-9


class GaussianNBIDS(FlowIDS):
    """Per-class independent Gaussians; score is P(attack | x)."""

    name = "GaussianNB"
    supervised = True

    def __init__(self) -> None:
        self._means: dict[int, np.ndarray] = {}
        self._vars: dict[int, np.ndarray] = {}
        self._priors: dict[int, float] = {}

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        if labels is None:
            raise ValueError("GaussianNB requires labels")
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels).ravel().astype(int)
        classes = np.unique(y)
        if classes.size < 2:
            # Degenerate single-class training: predict that class always.
            self._means = {int(classes[0]): x.mean(axis=0)}
            self._vars = {int(classes[0]): x.var(axis=0) + _VAR_FLOOR}
            self._priors = {int(classes[0]): 1.0}
            return
        for cls in classes:
            mask = y == cls
            self._means[int(cls)] = x[mask].mean(axis=0)
            self._vars[int(cls)] = x[mask].var(axis=0) + _VAR_FLOOR
            self._priors[int(cls)] = float(mask.mean())

    def _log_joint(self, x: np.ndarray, cls: int) -> np.ndarray:
        mean = self._means[cls]
        var = self._vars[cls]
        log_prob = -0.5 * (np.log(2 * np.pi * var) + (x - mean) ** 2 / var)
        return log_prob.sum(axis=1) + np.log(self._priors[cls])

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        if not self._means:
            raise RuntimeError("GaussianNB used before fit()")
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if 1 not in self._means:
            return np.zeros(x.shape[0])
        if 0 not in self._means:
            return np.ones(x.shape[0])
        log_attack = self._log_joint(x, 1)
        log_benign = self._log_joint(x, 0)
        # Softmax over the two joints = posterior P(attack | x).
        shift = np.maximum(log_attack, log_benign)
        pa = np.exp(log_attack - shift)
        pb = np.exp(log_benign - shift)
        return pa / (pa + pb)
