"""Classical-ML baselines from the DNN study (Vigneswaran et al. 2018).

The DNN paper benchmarks logistic regression, naive Bayes, k-NN,
decision trees and random forests against its deep network; these
numpy implementations power the classical-ML ablation bench (A4) and
double as sanity baselines for the flow-feature substrate.
"""

from repro.ids.classical.logistic import LogisticRegressionIDS
from repro.ids.classical.naive_bayes import GaussianNBIDS
from repro.ids.classical.knn import KNNIDS
from repro.ids.classical.tree import DecisionTreeIDS, RandomForestIDS

__all__ = [
    "LogisticRegressionIDS",
    "GaussianNBIDS",
    "KNNIDS",
    "DecisionTreeIDS",
    "RandomForestIDS",
]
