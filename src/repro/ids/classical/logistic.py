"""Logistic regression via full-batch gradient descent."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.normalize import ZScoreScaler
from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS


class LogisticRegressionIDS(FlowIDS):
    """L2-regularised logistic regression over flow features."""

    name = "LogisticRegression"
    supervised = True

    def __init__(
        self,
        *,
        learning_rate: float = 0.1,
        iterations: int = 300,
        l2: float = 1e-4,
    ) -> None:
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._scaler = ZScoreScaler()

    @classmethod
    def default_config(cls) -> dict:
        return {"learning_rate": 0.1, "iterations": 300, "l2": 1e-4}

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        if labels is None:
            raise ValueError("LogisticRegression requires labels")
        x = self._scaler.fit_transform(np.asarray(features, dtype=np.float64))
        y = np.asarray(labels, dtype=np.float64).ravel()
        n, d = x.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self.iterations):
            z = x @ weights + bias
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            error = p - y
            weights -= self.learning_rate * (x.T @ error / n + self.l2 * weights)
            bias -= self.learning_rate * float(error.mean())
        self._weights = weights
        self._bias = bias

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("LogisticRegression used before fit()")
        x = self._scaler.transform(np.asarray(features, dtype=np.float64))
        z = x @ self._weights + self._bias
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
