"""k-nearest-neighbours classifier over flow features."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.normalize import ZScoreScaler
from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS


class KNNIDS(FlowIDS):
    """Brute-force kNN; score is the attack fraction of the k nearest
    training points. Training sets are subsampled to ``max_train`` to
    bound the O(n*m) distance computation."""

    name = "kNN"
    supervised = True

    def __init__(self, *, k: int = 5, max_train: int = 4000, seed: int = 0) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.max_train = max_train
        self.seed = seed
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._scaler = ZScoreScaler()

    @classmethod
    def default_config(cls) -> dict:
        return {"k": 5, "max_train": 4000}

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        if labels is None:
            raise ValueError("kNN requires labels")
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels).ravel().astype(int)
        if x.shape[0] > self.max_train:
            from repro.utils.rng import SeededRNG

            idx = SeededRNG(self.seed, "knn").permutation(x.shape[0])[: self.max_train]
            x, y = x[idx], y[idx]
        self._x = self._scaler.fit_transform(x)
        self._y = y

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("kNN used before fit()")
        x = self._scaler.transform(np.atleast_2d(np.asarray(features, dtype=np.float64)))
        k = min(self.k, self._x.shape[0])
        scores = np.empty(x.shape[0])
        # Chunked distance computation keeps memory bounded.
        chunk = 512
        for start in range(0, x.shape[0], chunk):
            block = x[start : start + chunk]
            d2 = ((block[:, None, :] - self._x[None, :, :]) ** 2).sum(axis=2)
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            scores[start : start + chunk] = self._y[nearest].mean(axis=1)
        return scores
