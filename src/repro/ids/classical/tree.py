"""CART decision tree and a bagged random forest over flow features."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS
from repro.utils.rng import SeededRNG


@dataclass
class _Node:
    """A tree node; leaves carry the attack probability."""

    probability: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


def _build_tree(
    x: np.ndarray,
    y: np.ndarray,
    *,
    depth: int,
    max_depth: int,
    min_samples: int,
    feature_subset: np.ndarray | None,
    rng: SeededRNG | None,
) -> _Node:
    probability = float(y.mean()) if y.size else 0.0
    node = _Node(probability=probability)
    if depth >= max_depth or y.size < min_samples or probability in (0.0, 1.0):
        return node

    features = (
        feature_subset
        if feature_subset is not None
        else np.arange(x.shape[1])
    )
    best_gain = 0.0
    best: tuple[int, float] | None = None
    parent_counts = np.array([(y == 0).sum(), (y == 1).sum()], dtype=float)
    parent_gini = _gini(parent_counts)
    for feature in features:
        column = x[:, feature]
        # Candidate thresholds: a few quantiles, cheap and robust.
        candidates = np.unique(np.quantile(column, (0.25, 0.5, 0.75)))
        for threshold in candidates:
            mask = column <= threshold
            n_left = int(mask.sum())
            if n_left == 0 or n_left == y.size:
                continue
            left_counts = np.array(
                [((y == 0) & mask).sum(), ((y == 1) & mask).sum()], dtype=float
            )
            right_counts = parent_counts - left_counts
            gain = parent_gini - (
                n_left / y.size * _gini(left_counts)
                + (y.size - n_left) / y.size * _gini(right_counts)
            )
            if gain > best_gain + 1e-12:
                best_gain = gain
                best = (int(feature), float(threshold))
    if best is None:
        return node

    feature, threshold = best
    mask = x[:, feature] <= threshold
    node.feature = feature
    node.threshold = threshold
    subset = feature_subset
    if rng is not None and feature_subset is not None:
        # Resample the feature subset per split, forest-style.
        k = feature_subset.size
        subset = rng.choice(x.shape[1], size=k, replace=False)
    node.left = _build_tree(
        x[mask], y[mask], depth=depth + 1, max_depth=max_depth,
        min_samples=min_samples, feature_subset=subset, rng=rng,
    )
    node.right = _build_tree(
        x[~mask], y[~mask], depth=depth + 1, max_depth=max_depth,
        min_samples=min_samples, feature_subset=subset, rng=rng,
    )
    return node


def _predict_tree(node: _Node, x: np.ndarray) -> np.ndarray:
    out = np.empty(x.shape[0])
    for i, row in enumerate(x):
        current = node
        while not current.is_leaf:
            assert current.left is not None and current.right is not None
            current = (
                current.left if row[current.feature] <= current.threshold
                else current.right
            )
        out[i] = current.probability
    return out


class DecisionTreeIDS(FlowIDS):
    """A single CART tree (Gini impurity, quantile split candidates)."""

    name = "DecisionTree"
    supervised = True

    def __init__(self, *, max_depth: int = 8, min_samples: int = 10) -> None:
        self.max_depth = max_depth
        self.min_samples = min_samples
        self._root: _Node | None = None

    @classmethod
    def default_config(cls) -> dict:
        return {"max_depth": 8, "min_samples": 10}

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        if labels is None:
            raise ValueError("DecisionTree requires labels")
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels).ravel().astype(int)
        self._root = _build_tree(
            x, y, depth=0, max_depth=self.max_depth,
            min_samples=self.min_samples, feature_subset=None, rng=None,
        )

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTree used before fit()")
        return _predict_tree(self._root, np.atleast_2d(np.asarray(features)))


class RandomForestIDS(FlowIDS):
    """Bagged CART trees with per-split feature subsampling."""

    name = "RandomForest"
    supervised = True

    def __init__(
        self,
        *,
        trees: int = 10,
        max_depth: int = 8,
        min_samples: int = 10,
        seed: int = 0,
    ) -> None:
        if trees <= 0:
            raise ValueError("trees must be positive")
        self.tree_count = trees
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.seed = seed
        self._roots: list[_Node] = []

    @classmethod
    def default_config(cls) -> dict:
        return {"trees": 10, "max_depth": 8, "min_samples": 10}

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        if labels is None:
            raise ValueError("RandomForest requires labels")
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels).ravel().astype(int)
        rng = SeededRNG(self.seed, "forest")
        n, d = x.shape
        k = max(1, int(np.sqrt(d)))
        self._roots = []
        for t in range(self.tree_count):
            tree_rng = rng.child(f"tree-{t}")
            bootstrap = tree_rng.integers(0, n, size=n)
            subset = tree_rng.choice(d, size=k, replace=False)
            self._roots.append(
                _build_tree(
                    x[bootstrap], y[bootstrap], depth=0,
                    max_depth=self.max_depth, min_samples=self.min_samples,
                    feature_subset=np.asarray(subset), rng=tree_rng,
                )
            )

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        if not self._roots:
            raise RuntimeError("RandomForest used before fit()")
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        votes = np.zeros(x.shape[0])
        for root in self._roots:
            votes += _predict_tree(root, x)
        return votes / len(self._roots)
