"""Persistence for trained anomaly detectors and live stream state.

Deploying an IDS means training once and executing for weeks, so the
trained state must survive a process restart. Two layers live here:

* **Model persistence** (:func:`save_kitnet` / :func:`load_kitnet`) —
  a trained :class:`repro.ids.kitsune.kitnet.KitNET`'s feature-mapper
  groups, frozen scalers, and every autoencoder's weights go to a
  single ``.npz`` file and restore into execute mode. The damped
  NetStat stream state is deliberately *not* part of this format: it
  is traffic state, not model state, and rebuilds online within a few
  decay horizons (exactly how Kitsune deployments behave after a
  restart).
* **Stream checkpoints** (:func:`save_stream_checkpoint` /
  :func:`load_stream_checkpoint`) — the sharded streaming engine's
  crash-resume unit. A checkpoint captures one worker's *entire*
  live detector (model weights **and** NetStat traffic state and any
  buffered micro-batch) plus its stream cursor, so a worker killed
  mid-run resumes bit-exactly: replaying its shard from the cursor
  reproduces the uninterrupted run's scores. Checkpoint files are
  written atomically (temp file + rename) and carry a content digest,
  so a crash *during* a checkpoint write can never leave a truncated
  file that a resume would trust — corrupt files are detected and the
  supervisor falls back to the previous checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.kitsune.kitnet import KitNET
from repro.ml.autoencoder import Autoencoder
from repro.utils.rng import SeededRNG

# Version history:
#   1 — initial format; the sample counter was stored under a misspelled
#       meta key (``"decaysamples_seen"``) and ignored on load.
#   2 — counter stored as ``"samples_seen"`` and restored faithfully;
#       training-engine config (``train_mode``/``train_batch``) recorded
#       so a restored detector keeps its training semantics.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _scaler_state(scaler: OnlineMinMaxScaler) -> dict[str, np.ndarray]:
    return {"min": scaler.min.copy(), "max": scaler.max.copy()}


def _restore_scaler(dim: int, minimum, maximum, *, clip: bool) -> OnlineMinMaxScaler:
    scaler = OnlineMinMaxScaler(dim, clip=clip)
    scaler.min = np.asarray(minimum, dtype=np.float64)
    scaler.max = np.asarray(maximum, dtype=np.float64)
    scaler.freeze()
    return scaler


def save_kitnet(kitnet: KitNET, path: str | Path) -> None:
    """Serialise a trained KitNET to ``path`` (.npz).

    Raises ``ValueError`` if the detector has not finished its grace
    periods — persisting a half-trained model is a deployment bug.
    """
    if kitnet.in_feature_mapping or kitnet.in_training:
        raise ValueError(
            "KitNET is still in its grace periods; train before saving"
        )
    assert kitnet.output_layer is not None
    assert kitnet._output_scaler is not None

    arrays: dict[str, np.ndarray] = {}
    meta = {
        "format_version": _FORMAT_VERSION,
        "dim": kitnet.dim,
        "samples_seen": kitnet.samples_seen,
        "fm_grace": kitnet.fm_grace,
        "ad_grace": kitnet.ad_grace,
        "hidden_ratio": kitnet.hidden_ratio,
        "learning_rate": kitnet.learning_rate,
        "train_mode": kitnet.train_mode,
        "train_batch": kitnet.train_batch,
        "groups": kitnet.mapper.groups,
        "ensemble_size": len(kitnet.ensemble),
    }
    arrays["scaler_min"] = kitnet.scaler.min
    arrays["scaler_max"] = kitnet.scaler.max
    arrays["output_scaler_min"] = kitnet._output_scaler.min
    arrays["output_scaler_max"] = kitnet._output_scaler.max
    for i, ae in enumerate([*kitnet.ensemble, kitnet.output_layer]):
        arrays[f"ae{i}_enc_w"] = ae.encoder.weights
        arrays[f"ae{i}_enc_b"] = ae.encoder.bias
        arrays[f"ae{i}_dec_w"] = ae.decoder.weights
        arrays[f"ae{i}_dec_b"] = ae.decoder.bias
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_kitnet(path: str | Path) -> KitNET:
    """Restore a KitNET saved by :func:`save_kitnet`, in execute mode."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("format_version") not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported model format {meta.get('format_version')!r}"
            )
        kitnet = KitNET(
            meta["dim"],
            fm_grace=meta["fm_grace"],
            ad_grace=meta["ad_grace"],
            hidden_ratio=meta["hidden_ratio"],
            learning_rate=meta["learning_rate"],
            train_mode=meta.get("train_mode", "online"),
            train_batch=meta.get("train_batch", 32),
            rng=SeededRNG(0, "loaded-kitnet"),
        )
        kitnet.mapper.groups = [list(g) for g in meta["groups"]]
        kitnet.scaler = _restore_scaler(
            meta["dim"], data["scaler_min"], data["scaler_max"], clip=False
        )
        groups = kitnet.mapper.groups
        # The input scaler is unclipped (AfterImage semantics); the
        # output-RMSE scaler clips, matching KitNET._build_ensemble.
        kitnet._output_scaler = _restore_scaler(
            len(groups), data["output_scaler_min"], data["output_scaler_max"],
            clip=True,
        )

        def restore_ae(index: int, dim: int) -> Autoencoder:
            ae = Autoencoder(
                dim,
                hidden_ratio=meta["hidden_ratio"],
                learning_rate=meta["learning_rate"],
                rng=SeededRNG(index, "loaded-ae"),
            )
            ae.encoder.weights = np.asarray(data[f"ae{index}_enc_w"])
            ae.encoder.bias = np.asarray(data[f"ae{index}_enc_b"])
            ae.decoder.weights = np.asarray(data[f"ae{index}_dec_w"])
            ae.decoder.bias = np.asarray(data[f"ae{index}_dec_b"])
            return ae

        kitnet.ensemble = [
            restore_ae(i, len(group)) for i, group in enumerate(groups)
        ]
        kitnet.output_layer = restore_ae(len(groups), len(groups))
        # Checkpoints bypass _build_ensemble, so materialise the gather
        # index arrays here — per-group gathers (and the packed batched
        # scorer built from them) must be fancy-indexes everywhere.
        kitnet._group_index = [
            np.asarray(group, dtype=np.intp) for group in groups
        ]
        kitnet._batched_ensemble = None
        # Restore the true sample counter. Version-1 checkpoints stored
        # it under a misspelled key (and the old loader discarded it,
        # hardcoding fm+ad+1 — wrong for any detector that had executed
        # past the boundary before saving); fall back to that key, and
        # only then to the just-past-the-boundary legacy value.
        kitnet.samples_seen = int(
            meta.get(
                "samples_seen",
                meta.get(
                    "decaysamples_seen",
                    meta["fm_grace"] + meta["ad_grace"] + 1,
                ),
            )
        )
    return kitnet


# --------------------------------------------------------------------------
# Stream checkpoints: the sharded engine's crash-resume unit.

#: Stream-checkpoint format version (independent of the KitNET format).
_STREAM_CKPT_VERSION = 1
#: 8-byte magic prefixing every checkpoint file.
_STREAM_CKPT_MAGIC = b"RPSCKPT1"
#: ``worker<id>-<consumed>.ckpt``
_CKPT_NAME_RE = re.compile(r"^worker(\d+)-(\d+)\.ckpt$")


class CheckpointCorrupt(ValueError):
    """A checkpoint file failed its integrity check (truncated write,
    partial disk, bit rot). Resume falls back to an older checkpoint."""


@dataclass
class StreamCheckpoint:
    """One worker's resumable stream state.

    ``consumed`` is the worker's packet cursor: how many shard packets
    the detector had fully processed when the checkpoint was taken.
    Replaying the shard from exactly this offset resumes the stream
    bit-identically — the detector blob carries *all* live state
    (model weights, NetStat traffic state, buffered micro-batch,
    ``items_scored``).
    """

    worker_id: int
    consumed: int
    emitted: int
    detector_blob: bytes = field(repr=False)
    meta: dict = field(default_factory=dict)

    def restore_detector(self):
        """Deserialise the captured detector, ready to keep streaming."""
        return pickle.loads(self.detector_blob)


def checkpoint_filename(worker_id: int, consumed: int) -> str:
    """Canonical checkpoint file name (sorts by cursor per worker)."""
    return f"worker{worker_id}-{consumed:012d}.ckpt"


def save_stream_checkpoint(
    directory: str | Path,
    detector,
    *,
    worker_id: int,
    consumed: int,
    meta: dict | None = None,
) -> Path:
    """Atomically write a checkpoint for ``detector`` under ``directory``.

    The payload is pickled once, digested, and written to a temp file
    in the same directory before an atomic ``os.replace`` — a SIGKILL
    at any instant leaves either the previous checkpoint set or the
    complete new file, never a half-written one that passes
    verification.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(
        {
            "format_version": _STREAM_CKPT_VERSION,
            "worker_id": int(worker_id),
            "consumed": int(consumed),
            "emitted": int(getattr(detector, "items_scored", 0)),
            "detector": pickle.dumps(
                detector, protocol=pickle.HIGHEST_PROTOCOL
            ),
            "meta": dict(meta or {}),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    digest = hashlib.sha256(payload).digest()
    path = directory / checkpoint_filename(worker_id, consumed)
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_STREAM_CKPT_MAGIC)
            fh.write(digest)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_stream_checkpoint(path: str | Path) -> StreamCheckpoint:
    """Read and verify one checkpoint file.

    Raises :class:`CheckpointCorrupt` when the magic, digest, or format
    version does not check out.
    """
    raw = Path(path).read_bytes()
    header = len(_STREAM_CKPT_MAGIC) + 32
    if len(raw) < header or not raw.startswith(_STREAM_CKPT_MAGIC):
        raise CheckpointCorrupt(f"{path}: not a stream checkpoint")
    digest, payload = raw[len(_STREAM_CKPT_MAGIC):header], raw[header:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointCorrupt(f"{path}: content digest mismatch")
    state = pickle.loads(payload)
    if state.get("format_version") != _STREAM_CKPT_VERSION:
        raise CheckpointCorrupt(
            f"{path}: unsupported checkpoint format "
            f"{state.get('format_version')!r}"
        )
    return StreamCheckpoint(
        worker_id=state["worker_id"],
        consumed=state["consumed"],
        emitted=state["emitted"],
        detector_blob=state["detector"],
        meta=state["meta"],
    )


def latest_stream_checkpoint(
    directory: str | Path, worker_id: int
) -> tuple[Path, StreamCheckpoint] | None:
    """The newest *valid* checkpoint for ``worker_id``, or ``None``.

    Corrupt files (e.g. from exotic filesystems defeating the atomic
    rename) are skipped, falling back to the next-newest — so a resume
    can always trust what this returns.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: list[tuple[int, Path]] = []
    for entry in directory.iterdir():
        match = _CKPT_NAME_RE.match(entry.name)
        if match and int(match.group(1)) == worker_id:
            candidates.append((int(match.group(2)), entry))
    for _, path in sorted(candidates, reverse=True):
        try:
            return path, load_stream_checkpoint(path)
        except (CheckpointCorrupt, OSError, pickle.UnpicklingError):
            continue
    return None


def prune_stream_checkpoints(
    directory: str | Path, worker_id: int, *, keep: int = 2
) -> int:
    """Delete all but the ``keep`` newest checkpoints of one worker.

    Keeping two means a corrupt newest file still leaves a valid
    fallback. Returns the number of files removed.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    candidates: list[tuple[int, Path]] = []
    for entry in directory.iterdir():
        match = _CKPT_NAME_RE.match(entry.name)
        if match and int(match.group(1)) == worker_id:
            candidates.append((int(match.group(2)), entry))
    removed = 0
    for _, path in sorted(candidates, reverse=True)[keep:]:
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed
