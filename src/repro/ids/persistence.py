"""Persistence for trained anomaly detectors.

Deploying an IDS means training once and executing for weeks, so the
trained state must survive a process restart. This module serialises a
trained :class:`repro.ids.kitsune.kitnet.KitNET` — feature-mapper
groups, frozen scalers, and every autoencoder's weights — to a single
``.npz`` file and restores it into execute mode.

The damped NetStat stream state is deliberately *not* persisted: it is
traffic state, not model state, and rebuilds online within a few decay
horizons (exactly how Kitsune deployments behave after a restart).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.kitsune.kitnet import KitNET
from repro.ml.autoencoder import Autoencoder
from repro.utils.rng import SeededRNG

# Version history:
#   1 — initial format; the sample counter was stored under a misspelled
#       meta key (``"decaysamples_seen"``) and ignored on load.
#   2 — counter stored as ``"samples_seen"`` and restored faithfully;
#       training-engine config (``train_mode``/``train_batch``) recorded
#       so a restored detector keeps its training semantics.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _scaler_state(scaler: OnlineMinMaxScaler) -> dict[str, np.ndarray]:
    return {"min": scaler.min.copy(), "max": scaler.max.copy()}


def _restore_scaler(dim: int, minimum, maximum, *, clip: bool) -> OnlineMinMaxScaler:
    scaler = OnlineMinMaxScaler(dim, clip=clip)
    scaler.min = np.asarray(minimum, dtype=np.float64)
    scaler.max = np.asarray(maximum, dtype=np.float64)
    scaler.freeze()
    return scaler


def save_kitnet(kitnet: KitNET, path: str | Path) -> None:
    """Serialise a trained KitNET to ``path`` (.npz).

    Raises ``ValueError`` if the detector has not finished its grace
    periods — persisting a half-trained model is a deployment bug.
    """
    if kitnet.in_feature_mapping or kitnet.in_training:
        raise ValueError(
            "KitNET is still in its grace periods; train before saving"
        )
    assert kitnet.output_layer is not None
    assert kitnet._output_scaler is not None

    arrays: dict[str, np.ndarray] = {}
    meta = {
        "format_version": _FORMAT_VERSION,
        "dim": kitnet.dim,
        "samples_seen": kitnet.samples_seen,
        "fm_grace": kitnet.fm_grace,
        "ad_grace": kitnet.ad_grace,
        "hidden_ratio": kitnet.hidden_ratio,
        "learning_rate": kitnet.learning_rate,
        "train_mode": kitnet.train_mode,
        "train_batch": kitnet.train_batch,
        "groups": kitnet.mapper.groups,
        "ensemble_size": len(kitnet.ensemble),
    }
    arrays["scaler_min"] = kitnet.scaler.min
    arrays["scaler_max"] = kitnet.scaler.max
    arrays["output_scaler_min"] = kitnet._output_scaler.min
    arrays["output_scaler_max"] = kitnet._output_scaler.max
    for i, ae in enumerate([*kitnet.ensemble, kitnet.output_layer]):
        arrays[f"ae{i}_enc_w"] = ae.encoder.weights
        arrays[f"ae{i}_enc_b"] = ae.encoder.bias
        arrays[f"ae{i}_dec_w"] = ae.decoder.weights
        arrays[f"ae{i}_dec_b"] = ae.decoder.bias
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_kitnet(path: str | Path) -> KitNET:
    """Restore a KitNET saved by :func:`save_kitnet`, in execute mode."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("format_version") not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported model format {meta.get('format_version')!r}"
            )
        kitnet = KitNET(
            meta["dim"],
            fm_grace=meta["fm_grace"],
            ad_grace=meta["ad_grace"],
            hidden_ratio=meta["hidden_ratio"],
            learning_rate=meta["learning_rate"],
            train_mode=meta.get("train_mode", "online"),
            train_batch=meta.get("train_batch", 32),
            rng=SeededRNG(0, "loaded-kitnet"),
        )
        kitnet.mapper.groups = [list(g) for g in meta["groups"]]
        kitnet.scaler = _restore_scaler(
            meta["dim"], data["scaler_min"], data["scaler_max"], clip=False
        )
        groups = kitnet.mapper.groups
        # The input scaler is unclipped (AfterImage semantics); the
        # output-RMSE scaler clips, matching KitNET._build_ensemble.
        kitnet._output_scaler = _restore_scaler(
            len(groups), data["output_scaler_min"], data["output_scaler_max"],
            clip=True,
        )

        def restore_ae(index: int, dim: int) -> Autoencoder:
            ae = Autoencoder(
                dim,
                hidden_ratio=meta["hidden_ratio"],
                learning_rate=meta["learning_rate"],
                rng=SeededRNG(index, "loaded-ae"),
            )
            ae.encoder.weights = np.asarray(data[f"ae{index}_enc_w"])
            ae.encoder.bias = np.asarray(data[f"ae{index}_enc_b"])
            ae.decoder.weights = np.asarray(data[f"ae{index}_dec_w"])
            ae.decoder.bias = np.asarray(data[f"ae{index}_dec_b"])
            return ae

        kitnet.ensemble = [
            restore_ae(i, len(group)) for i, group in enumerate(groups)
        ]
        kitnet.output_layer = restore_ae(len(groups), len(groups))
        # Checkpoints bypass _build_ensemble, so materialise the gather
        # index arrays here — per-group gathers (and the packed batched
        # scorer built from them) must be fancy-indexes everywhere.
        kitnet._group_index = [
            np.asarray(group, dtype=np.intp) for group in groups
        ]
        kitnet._batched_ensemble = None
        # Restore the true sample counter. Version-1 checkpoints stored
        # it under a misspelled key (and the old loader discarded it,
        # hardcoding fm+ad+1 — wrong for any detector that had executed
        # past the boundary before saving); fall back to that key, and
        # only then to the just-past-the-boundary legacy value.
        kitnet.samples_seen = int(
            meta.get(
                "samples_seen",
                meta.get(
                    "decaysamples_seen",
                    meta["fm_grace"] + meta["ad_grace"] + 1,
                ),
            )
        )
    return kitnet
