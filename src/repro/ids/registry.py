"""Registry of every IDS the paper investigated (Table I).

Fifteen systems were examined; four survived the usability gauntlet.
``INVESTIGATED_IDS`` records the full inventory with outcomes, and
``evaluated_ids_factories`` exposes constructors for the four systems
carried into Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ids.base import IDSBase


@dataclass(frozen=True)
class IDSRecord:
    """One row of the paper's Table I."""

    name: str
    year: int
    dataset: str
    source: str
    academic: bool
    used: bool
    issue: str = ""  # exclusion reason for systems that failed

    @property
    def status(self) -> str:
        return "Used in Paper" if self.used else self.issue


INVESTIGATED_IDS: tuple[IDSRecord, ...] = (
    IDSRecord("Deep Neural Network (DNN)", 2018, "KDDCup-'99'",
              "Conference: ICCCNT", academic=True, used=True),
    IDSRecord("Kitsune", 2018, "Custom IoT Dataset", "Conference: NDSS",
              academic=True, used=True),
    IDSRecord("HELAD", 2020, "CICIDS2017", "Journal: MDPI Informatics",
              academic=True, used=True),
    IDSRecord("Multiclass Classification", 2020, "ASNM Datasets",
              "Conference: DSAA", academic=True, used=False,
              issue=("Vague dependencies in provided repository, "
                     "\"ValueError on converting string to complex in "
                     "ASNM-TUN.py\"")),
    IDSRecord("ARTEMIS", 2021, "Custom Dataset", "Conference: LATINCOM",
              academic=True, used=False, issue="Code error"),
    IDSRecord("Dense-Attention-LSTM (DAL)", 2021, "UNSW-NB15",
              "Conference: IWCMC", academic=True, used=False,
              issue="Dependency errors"),
    IDSRecord("I-SiamIDS", 2021, "CICIDS, NSL-KDD",
              "Journal: Applied Intelligence", academic=True, used=False,
              issue="Type error"),
    IDSRecord("SecureTea", 2021, "N/A", "GitHub", academic=False,
              used=False, issue="Dependency errors"),
    IDSRecord("AutoML", 2022, "CICIDS2017, IoTID20",
              "Journal: Engineering Applications of Artificial Intelligence",
              academic=True, used=False, issue="IDS code not provided"),
    IDSRecord("Deep Belief Networks NIDS", 2022, "CICIDS2017",
              "Conference: SciSec", academic=True, used=False,
              issue=("Invalidated by dependency errors in provided "
                     "repository: \"Tensors found on two or more devices\"")),
    IDSRecord("RIDS", 2022, "Custom Dataset", "Conference: GLOBECOM",
              academic=True, used=False, issue="Provided Out of memory"),
    IDSRecord("StratosphereIPS (Slips)", 2022, "N/A", "GitHub",
              academic=False, used=True),
    IDSRecord("IDS-ML", 2022, "CICIDS2017", "Journal: Software Impacts",
              academic=True, used=False, issue="Runtime errors"),
    IDSRecord("xNIDS", 2023, "Mirai, CICDoS2017, NSL-KDD",
              "Conference: USENIX Security", academic=True, used=False,
              issue=("Did not propose a directly usable NIDS, so was not "
                     "appropriate.")),
    IDSRecord("Suricata", 2023, "N/A", "GitHub", academic=False,
              used=False, issue="Unable to verify any use of ML"),
)


def evaluated_ids_factories() -> dict[str, Callable[..., IDSBase]]:
    """Constructors for the four evaluated systems, by Table IV name."""
    from repro.ids.dnn import DNNClassifierIDS
    from repro.ids.helad import HELAD
    from repro.ids.kitsune import Kitsune
    from repro.ids.slips import SlipsIDS

    return {
        "Kitsune": Kitsune,
        "HELAD": HELAD,
        "DNN": DNNClassifierIDS,
        "Slips": SlipsIDS,
    }


def batch_capable_ids() -> dict[str, bool]:
    """Which evaluated IDSs provide a true batched scoring fast path.

    ``True`` means the class overrides ``score_batch`` with a batched
    implementation that is bit-identical to its per-packet reference
    (``supports_batch``); ``False`` means callers feeding
    ``score_batch`` get the reference loop. Flow-level IDSs already
    score feature matrices in one call and report ``False`` here —
    the flag is about the *packet* path's execution strategy.
    """
    return {
        name: bool(getattr(cls, "supports_batch", False))
        for name, cls in evaluated_ids_factories().items()
    }


def ids_compute_backends() -> dict[str, dict[str, str | None]]:
    """Default-resolved compute backends per evaluated IDS.

    Packet-level IDSs extract AfterImage features through the default
    (auto-selected) feature-engine backend; Kitsune additionally scores
    execute-phase batches through an ensemble backend. Flow-level IDSs
    report ``None`` for both — their feature matrices never touch the
    per-packet compute backends. See :mod:`repro.backends`.
    """
    from repro import backends
    from repro.ids.base import PacketIDS
    from repro.ids.kitsune import Kitsune

    out: dict[str, dict[str, str | None]] = {}
    for name, cls in evaluated_ids_factories().items():
        packet_level = isinstance(cls, type) and issubclass(cls, PacketIDS)
        out[name] = {
            "feature": backends.default_feature_backend()
            if packet_level else None,
            "ensemble": "batched-einsum"
            if isinstance(cls, type) and issubclass(cls, Kitsune) else None,
        }
    return out
