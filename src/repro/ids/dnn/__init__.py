"""The supervised DNN IDS (Vigneswaran et al., ICCCNT 2018)."""

from repro.ids.dnn.dnn import DNNClassifierIDS

__all__ = ["DNNClassifierIDS"]
