"""The 3-hidden-layer supervised DNN over flow features.

Vigneswaran et al. (2018) compare classical ML against deep networks on
KDDCup-99 and find a 3-hidden-layer ReLU network optimal. The shipped
pipeline is deliberately minimal — min-max scaling fit on the training
matrix, fixed epochs, no class weighting, 0.5 decision threshold — and
the paper under reproduction runs it *exactly* out of the box
(Section IV-A-3).

That matters: when the adapted training sample is attack-dominated
(as the provided train CSVs of UNSW-NB15/BoT-IoT are) or the adapted
features are degraded (Stratosphere's conn-log schema), the
cheapest BCE minimum is the majority class and the network collapses to
predicting "attack" everywhere. This is visibly what happened in the
paper's Table IV DNN rows (recall 1.0000 and accuracy == precision on
every dataset), and this implementation reproduces that failure mode
honestly rather than patching it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS
from repro.ml.mlp import MLPClassifier
from repro.utils.rng import SeededRNG


class DNNClassifierIDS(FlowIDS):
    """Supervised flow classifier, out-of-the-box configuration."""

    name = "DNN"
    supervised = True

    def __init__(
        self,
        *,
        hidden_dims: tuple[int, ...] = (128, 96, 64),
        epochs: int = 12,
        batch_size: int = 64,
        learning_rate: float = 0.001,
        seed: int = 0,
    ) -> None:
        self.hidden_dims = tuple(hidden_dims)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self._rng = SeededRNG(seed, "dnn")
        self._model: MLPClassifier | None = None
        self._feature_min: np.ndarray | None = None
        self._feature_span: np.ndarray | None = None

    @classmethod
    def default_config(cls) -> dict:
        """The repository defaults: 3 hidden layers, Adam(0.001),
        plain BCE, no class weighting, threshold 0.5."""
        return {
            "hidden_dims": (128, 96, 64),
            "epochs": 12,
            "batch_size": 64,
            "learning_rate": 0.001,
        }

    def _scale(self, features: np.ndarray) -> np.ndarray:
        assert self._feature_min is not None and self._feature_span is not None
        return np.clip(
            (features - self._feature_min) / self._feature_span, 0.0, 1.0
        )

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        if labels is None:
            raise ValueError("DNN is supervised and requires labels")
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).ravel()
        self._feature_min = features.min(axis=0)
        span = features.max(axis=0) - self._feature_min
        span[span == 0] = 1.0
        self._feature_span = span
        self._model = MLPClassifier(
            features.shape[1],
            self.hidden_dims,
            learning_rate=self.learning_rate,
            rng=self._rng.child("model"),
        )
        self._model.fit(
            self._scale(features),
            labels,
            epochs=self.epochs,
            batch_size=self.batch_size,
            rng=self._rng.child("fit"),
        )

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        """P(attack) per flow — the sigmoid output."""
        if self._model is None:
            raise RuntimeError("DNN used before fit()")
        return self._model.predict_proba(self._scale(np.asarray(features)))
