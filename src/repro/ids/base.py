"""Common IDS interfaces.

Two input kinds exist in the paper's pipeline (Section I: "IDSs
commonly either take packets or flows"):

* **packet-level** IDSs (Kitsune, HELAD) consume a timestamp-ordered
  packet stream and emit one anomaly score per packet;
* **flow-level** IDSs (DNN, Slips) consume completed flow records (or
  feature matrices derived from them) and emit one score per flow.

Every IDS exposes continuous ``anomaly scores``; binarisation happens
once, centrally, in :mod:`repro.core.thresholds` — the paper's
standardised threshold procedure (Section IV-A-4).
"""

from __future__ import annotations

import abc
import enum
from typing import Sequence

import numpy as np

from repro.flows.record import FlowRecord
from repro.net.packet import Packet


class InputKind(enum.Enum):
    """What a given IDS consumes."""

    PACKET = "packet"
    FLOW = "flow"


class IDSBase(abc.ABC):
    """Base class carrying identity and configuration."""

    #: Human-readable system name (matches the paper's Table IV rows).
    name: str = "ids"
    #: Input format, per :class:`InputKind`.
    input_kind: InputKind
    #: Whether training requires labels.
    supervised: bool = False
    #: Whether :meth:`PacketIDS.score_batch` is a true batched fast
    #: path (bit-identical to the per-packet reference) rather than the
    #: base-class fallback. The registry advertises this so pipeline
    #: cells and streaming micro-batches know which path they fed.
    supports_batch: bool = False

    @classmethod
    def default_config(cls) -> dict:
        """The out-of-the-box configuration (paper Section IV-A-3).

        Returns the constructor keyword arguments that mirror the
        upstream project's shipped defaults. The pipeline instantiates
        every IDS from this config and never tunes per dataset.
        """
        return {}

    def describe(self) -> str:
        return f"{self.name} ({self.input_kind.value}-level)"


class PacketIDS(IDSBase):
    """A packet-stream anomaly detector."""

    input_kind = InputKind.PACKET

    @abc.abstractmethod
    def fit(self, packets: Sequence[Packet]) -> None:
        """Train on a (presumed benign) packet stream."""

    @abc.abstractmethod
    def anomaly_scores(self, packets: Sequence[Packet]) -> np.ndarray:
        """One non-negative anomaly score per packet."""

    def score_batch(self, packets: Sequence[Packet]) -> np.ndarray:
        """Batched anomaly scoring over ``packets``.

        The contract is *bit-for-bit* agreement with
        :meth:`anomaly_scores` (the per-packet reference loop) — a
        batched implementation is a pure throughput knob, never a
        semantic one. Subclasses that provide a genuine batched path
        override this and set ``supports_batch = True``; the default
        simply falls back to the reference.
        """
        return self.anomaly_scores(packets)


class FlowIDS(IDSBase):
    """A flow-record anomaly detector / classifier."""

    input_kind = InputKind.FLOW

    @abc.abstractmethod
    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        """Train on flows.

        ``features`` is the encoded matrix the adapter produced for
        this IDS's schema; ``labels`` is None for unsupervised systems.
        """

    @abc.abstractmethod
    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        """One anomaly score per flow."""
