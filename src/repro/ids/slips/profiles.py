"""Profile construction: per source-IP, per time-window flow grouping.

Slips' core abstraction: a *profile* is everything one IP originated,
cut into fixed-width time windows. Detection modules then reason about
one profile-window at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.flows.record import FlowRecord
from repro.utils.validation import check_positive


@dataclass
class ProfileWindow:
    """All flows a source IP originated within one time window."""

    profile_ip: str
    window_index: int
    flow_indices: list[int] = field(default_factory=list)
    flows: list[FlowRecord] = field(default_factory=list)

    def add(self, index: int, flow: FlowRecord) -> None:
        self.flow_indices.append(index)
        self.flows.append(flow)

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    def distinct_dst_ports(self, dst_ip: str | None = None) -> set[int]:
        return {
            f.dst_port
            for f in self.flows
            if dst_ip is None or f.dst_ip == dst_ip
        }

    def distinct_dst_ips(self, dst_port: int | None = None) -> set[str]:
        return {
            f.dst_ip
            for f in self.flows
            if dst_port is None or f.dst_port == dst_port
        }

    def flows_to(self, dst_ip: str, dst_port: int | None = None) -> list[FlowRecord]:
        return [
            f
            for f in self.flows
            if f.dst_ip == dst_ip and (dst_port is None or f.dst_port == dst_port)
        ]

    def conversation_groups(self) -> dict[tuple[str, int], list[int]]:
        """Indices (into ``self.flows``) grouped by (dst_ip, dst_port)."""
        groups: dict[tuple[str, int], list[int]] = {}
        for i, flow in enumerate(self.flows):
            groups.setdefault((flow.dst_ip, flow.dst_port), []).append(i)
        return groups


def build_profile_windows(
    flows: Sequence[FlowRecord], *, window_width: float = 3600.0
) -> dict[tuple[str, int], ProfileWindow]:
    """Group flows into (source IP, window index) profiles.

    Window indices are relative to the earliest flow start, so captures
    need not begin at epoch 0.
    """
    check_positive("window_width", window_width)
    if not flows:
        return {}
    t0 = min(flow.start_time for flow in flows)
    windows: dict[tuple[str, int], ProfileWindow] = {}
    for index, flow in enumerate(flows):
        window_index = int((flow.start_time - t0) // window_width)
        key = (flow.src_ip, window_index)
        window = windows.get(key)
        if window is None:
            window = ProfileWindow(profile_ip=flow.src_ip, window_index=window_index)
            windows[key] = window
        window.add(index, flow)
    return windows
