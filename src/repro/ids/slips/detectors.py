"""Slips detection modules: each inspects one profile-window.

Weights and thresholds follow the out-of-the-box character of Slips
v1.0.7: individually conservative modules whose evidence must
*accumulate* before a profile is alerted. This is why volumetric floods
(one destination, one port) and content-style attacks produce no
evidence at all — the behaviour behind Slips' zero rows in the paper's
Table IV — while multi-behaviour infections (beaconing + scanning C2
bots) cross the threshold.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.ids.slips.evidence import Evidence, EvidenceKind
from repro.ids.slips.markov import BehaviourModel, encode_letters
from repro.ids.slips.profiles import ProfileWindow

#: Ports whose use needs no justification (well-known services).
WELL_KNOWN_PORTS = frozenset(
    {20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 443, 445, 465, 587, 993,
     995, 1883, 3306, 3389, 5900, 8080, 8443, 8883}
)


def detect_vertical_portscan(
    window: ProfileWindow, *, min_ports: int = 20, base_weight: float = 0.5
) -> Iterator[Evidence]:
    """Many distinct destination ports on a single destination IP."""
    for dst_ip in window.distinct_dst_ips():
        ports = window.distinct_dst_ports(dst_ip)
        if len(ports) >= min_ports:
            involved = [
                window.flow_indices[i]
                for i, flow in enumerate(window.flows)
                if flow.dst_ip == dst_ip
            ]
            weight = base_weight + 0.05 * math.log2(len(ports))
            yield Evidence(
                kind=EvidenceKind.VERTICAL_PORTSCAN,
                weight=weight,
                description=(
                    f"{window.profile_ip} probed {len(ports)} ports on {dst_ip}"
                ),
                profile_ip=window.profile_ip,
                window_index=window.window_index,
                flow_indices=involved,
            )


def detect_horizontal_portscan(
    window: ProfileWindow, *, min_hosts: int = 30, base_weight: float = 0.4
) -> Iterator[Evidence]:
    """The same destination port probed across many destination IPs."""
    by_port: dict[int, set[str]] = {}
    for flow in window.flows:
        by_port.setdefault(flow.dst_port, set()).add(flow.dst_ip)
    for port, hosts in by_port.items():
        if len(hosts) >= min_hosts:
            involved = [
                window.flow_indices[i]
                for i, flow in enumerate(window.flows)
                if flow.dst_port == port
            ]
            weight = base_weight + 0.04 * math.log2(len(hosts))
            yield Evidence(
                kind=EvidenceKind.HORIZONTAL_PORTSCAN,
                weight=weight,
                description=(
                    f"{window.profile_ip} probed port {port} on {len(hosts)} hosts"
                ),
                profile_ip=window.profile_ip,
                window_index=window.window_index,
                flow_indices=involved,
            )


def detect_beaconing(
    window: ProfileWindow,
    *,
    min_flows: int = 6,
    max_flows: int = 500,
    min_period: float = 5.0,
    max_cv: float = 0.2,
    max_mean_bytes: float = 5_000.0,
    base_weight: float = 0.25,
) -> Iterator[Evidence]:
    """Low-volume, strongly periodic conversations (C2 check-ins).

    The flow-count cap and the minimum period exclude floods: beaconing
    is a low-and-slow behaviour, not a volumetric one.
    """
    for (dst_ip, dst_port), indices in window.conversation_groups().items():
        if not min_flows <= len(indices) <= max_flows:
            continue
        flows = sorted((window.flows[i] for i in indices), key=lambda f: f.start_time)
        gaps = [
            later.start_time - earlier.start_time
            for earlier, later in zip(flows, flows[1:])
        ]
        mean_gap = sum(gaps) / len(gaps)
        if mean_gap < min_period:
            continue
        variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean_gap if mean_gap > 0 else math.inf
        mean_bytes = sum(f.total_bytes for f in flows) / len(flows)
        if cv <= max_cv and mean_bytes <= max_mean_bytes:
            weight = base_weight + 0.05 * math.log2(len(indices))
            yield Evidence(
                kind=EvidenceKind.BEACONING,
                weight=weight,
                description=(
                    f"{window.profile_ip} beacons to {dst_ip}:{dst_port} "
                    f"every ~{mean_gap:.0f}s x{len(indices)}"
                ),
                profile_ip=window.profile_ip,
                window_index=window.window_index,
                flow_indices=[window.flow_indices[i] for i in indices],
            )


def detect_suspicious_port(
    window: ProfileWindow, *, min_flows: int = 3, weight: float = 0.25
) -> Iterator[Evidence]:
    """Repeated TCP conversations to a non-well-known port."""
    for (dst_ip, dst_port), indices in window.conversation_groups().items():
        if dst_port in WELL_KNOWN_PORTS or dst_port >= 32768:
            continue  # ephemeral targets are responders, not services
        tcp_indices = [i for i in indices if window.flows[i].protocol == "tcp"]
        if len(tcp_indices) >= min_flows:
            yield Evidence(
                kind=EvidenceKind.SUSPICIOUS_PORT,
                weight=weight,
                description=(
                    f"{window.profile_ip} repeatedly contacts {dst_ip}:{dst_port}"
                ),
                profile_ip=window.profile_ip,
                window_index=window.window_index,
                flow_indices=[window.flow_indices[i] for i in tcp_indices],
            )


def detect_long_connections(
    window: ProfileWindow,
    *,
    min_duration: float = 1500.0,
    weight: float = 0.05,
    max_count: int = 5,
) -> Iterator[Evidence]:
    """Unusually long-lived connections (weak evidence, capped)."""
    emitted = 0
    for i, flow in enumerate(window.flows):
        if flow.duration >= min_duration:
            yield Evidence(
                kind=EvidenceKind.LONG_CONNECTION,
                weight=weight,
                description=(
                    f"{window.profile_ip} connection to {flow.dst_ip} lasted "
                    f"{flow.duration:.0f}s"
                ),
                profile_ip=window.profile_ip,
                window_index=window.window_index,
                flow_indices=[window.flow_indices[i]],
            )
            emitted += 1
            if emitted >= max_count:
                return


def detect_anomalous_flags(
    window: ProfileWindow, *, min_flows: int = 3, weight: float = 0.1
) -> Iterator[Evidence]:
    """Flag combinations no normal stack sends (NULL/Xmas probes)."""
    involved = []
    for i, flow in enumerate(window.flows):
        if flow.protocol != "tcp":
            continue
        has_syn = flow.flag_count("SYN") > 0
        has_ack = flow.flag_count("ACK") > 0
        has_fin = flow.flag_count("FIN") > 0
        has_urg = flow.flag_count("URG") > 0
        if (not has_syn and not has_ack) or (has_fin and has_urg and not has_syn):
            involved.append(window.flow_indices[i])
    if len(involved) >= min_flows:
        yield Evidence(
            kind=EvidenceKind.ANOMALOUS_FLAGS,
            weight=weight,
            description=f"{window.profile_ip} sent anomalous TCP flag probes",
            profile_ip=window.profile_ip,
            window_index=window.window_index,
            flow_indices=involved,
        )


def detect_malicious_behaviour(
    window: ProfileWindow,
    model: BehaviourModel,
    *,
    min_flows: int = 8,
    max_flows: int = 500,
    min_period: float = 5.0,
    threshold: float = -1.6,
    weight: float = 0.4,
) -> Iterator[Evidence]:
    """Match conversation letter-strings against a malicious Markov model.

    Like beaconing, behaviour models describe low-and-slow activity: a
    sub-``min_period`` median inter-flow gap is volumetric traffic and
    is excluded regardless of how periodic its letters look.
    """
    for (dst_ip, dst_port), indices in window.conversation_groups().items():
        if not min_flows <= len(indices) <= max_flows:
            continue
        flows = sorted(
            (window.flows[i] for i in indices), key=lambda f: f.start_time
        )
        gaps = sorted(
            later.start_time - earlier.start_time
            for earlier, later in zip(flows, flows[1:])
        )
        if gaps and gaps[len(gaps) // 2] < min_period:
            continue
        letters = encode_letters(flows)
        rate = model.log_likelihood_rate(letters)
        if rate > threshold:
            yield Evidence(
                kind=EvidenceKind.MALICIOUS_BEHAVIOUR_MODEL,
                weight=weight,
                description=(
                    f"{window.profile_ip}->{dst_ip}:{dst_port} matches "
                    f"behaviour model {model.name!r} (rate {rate:.2f})"
                ),
                profile_ip=window.profile_ip,
                window_index=window.window_index,
                flow_indices=[window.flow_indices[i] for i in indices],
            )
