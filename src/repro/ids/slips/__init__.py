"""A behavioural IPS modelled on Stratosphere Linux IPS (Slips) v1.0.7.

Slips profiles traffic per source IP in fixed time windows, runs
detection modules that emit weighted *evidence* (port scans, beaconing,
suspicious ports, behavioural-letter Markov models), and raises an
alert when a profile-window's accumulated evidence crosses a threat
threshold. Alerted profile-windows mark their flows as malicious.

The reimplementation keeps that architecture and its out-of-the-box
thresholds; see DESIGN.md for the substitution notes (no Zeek/Redis).
"""

from repro.ids.slips.slips import SlipsIDS
from repro.ids.slips.evidence import Evidence, EvidenceKind
from repro.ids.slips.profiles import ProfileWindow, build_profile_windows
from repro.ids.slips.markov import BehaviourModel, encode_letters

__all__ = [
    "SlipsIDS",
    "Evidence",
    "EvidenceKind",
    "ProfileWindow",
    "build_profile_windows",
    "BehaviourModel",
    "encode_letters",
]
