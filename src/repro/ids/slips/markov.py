"""Stratosphere behavioural letters and Markov-chain models.

The Stratosphere project encodes each conversation (src, dst, dport
group of flows) as a string of letters describing size / duration /
periodicity of successive flows, then matches the string against
Markov chains trained on known-malicious behaviours. Slips ships those
pre-trained models; here the C2 model is constructed from template
sequences exhibiting the canonical beaconing behaviour (small, short,
highly periodic flows).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.flows.record import FlowRecord

#: Letter alphabet: size class (s/m/l) x periodicity class (strong/weak).
#: Uppercase = strongly periodic, lowercase = weakly periodic.
_SIZE_BOUNDS = (1_000.0, 20_000.0)  # bytes: small < 1k <= medium < 20k <= large
_PERIODIC_CV = 0.25  # coefficient of variation below this is "periodic"


def encode_letters(flows: Sequence[FlowRecord]) -> str:
    """Encode a conversation's flow sequence as behavioural letters.

    Each flow maps to one letter: ``s/m/l`` by total bytes, uppercased
    when the inter-flow gap matches the conversation's median gap
    within ``_PERIODIC_CV`` relative deviation.
    """
    if not flows:
        return ""
    ordered = sorted(flows, key=lambda f: f.start_time)
    gaps = [
        later.start_time - earlier.start_time
        for earlier, later in zip(ordered, ordered[1:])
    ]
    median_gap = sorted(gaps)[len(gaps) // 2] if gaps else 0.0
    letters = []
    for i, flow in enumerate(ordered):
        total = flow.total_bytes
        if total < _SIZE_BOUNDS[0]:
            letter = "s"
        elif total < _SIZE_BOUNDS[1]:
            letter = "m"
        else:
            letter = "l"
        periodic = False
        if i > 0 and median_gap > 0:
            gap = ordered[i].start_time - ordered[i - 1].start_time
            periodic = abs(gap - median_gap) <= _PERIODIC_CV * median_gap
        letters.append(letter.upper() if periodic else letter)
    return "".join(letters)


class BehaviourModel:
    """A first-order Markov chain over behavioural letters."""

    def __init__(self, name: str, alphabet: str = "smlSML") -> None:
        self.name = name
        self.alphabet = alphabet
        size = len(alphabet)
        self._index = {c: i for i, c in enumerate(alphabet)}
        # Laplace-smoothed counts.
        self._transition_counts = [[1.0] * size for _ in range(size)]
        self._initial_counts = [1.0] * size
        self.trained_sequences = 0

    def train(self, sequence: str) -> None:
        """Fold one letter sequence into the chain."""
        if not sequence:
            return
        self._initial_counts[self._index[sequence[0]]] += 1.0
        for a, b in zip(sequence, sequence[1:]):
            self._transition_counts[self._index[a]][self._index[b]] += 1.0
        self.trained_sequences += 1

    def log_likelihood_rate(self, sequence: str) -> float:
        """Average log-probability per transition of ``sequence``.

        Comparable across sequences of different lengths; higher means
        a better match to the modelled behaviour.
        """
        if len(sequence) < 2:
            return -math.inf
        initial_total = sum(self._initial_counts)
        row_totals = [sum(row) for row in self._transition_counts]
        logp = math.log(
            self._initial_counts[self._index[sequence[0]]] / initial_total
        )
        for a, b in zip(sequence, sequence[1:]):
            i, j = self._index[a], self._index[b]
            logp += math.log(self._transition_counts[i][j] / row_totals[i])
        return logp / (len(sequence) - 1)


def default_c2_model() -> BehaviourModel:
    """The shipped C2 model: small flows with strong periodicity.

    Mirrors Slips shipping Markov models trained on known C2 captures:
    training sequences are canonical beaconing strings (runs of
    periodic-small letters with occasional size jitter).
    """
    model = BehaviourModel("c2-beaconing")
    templates = (
        "s" + "S" * 30,
        "s" + "S" * 14 + "m" + "S" * 15,
        "sS" * 16,
        "s" + "S" * 8 + "s" + "S" * 20,
        "m" + "S" * 24,
    )
    for template in templates:
        model.train(template)
    return model
