"""Evidence records emitted by Slips detection modules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EvidenceKind(enum.Enum):
    """The detection modules' evidence categories."""

    VERTICAL_PORTSCAN = "vertical-portscan"
    HORIZONTAL_PORTSCAN = "horizontal-portscan"
    BEACONING = "beaconing"
    SUSPICIOUS_PORT = "suspicious-port"
    LONG_CONNECTION = "long-connection"
    MALICIOUS_BEHAVIOUR_MODEL = "malicious-behaviour-model"
    ANOMALOUS_FLAGS = "anomalous-flags"


@dataclass
class Evidence:
    """One weighted piece of evidence against a profile-window.

    ``flow_indices`` points into the evaluated flow list at the flows
    that triggered the evidence (used for attribution in reports).
    """

    kind: EvidenceKind
    weight: float
    description: str
    profile_ip: str
    window_index: int
    flow_indices: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"evidence weight must be >= 0, got {self.weight}")
