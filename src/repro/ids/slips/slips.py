"""The Slips orchestrator: profiles -> modules -> evidence -> alerts."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS
from repro.ids.slips import detectors
from repro.ids.slips.evidence import Evidence
from repro.ids.slips.markov import default_c2_model
from repro.ids.slips.profiles import build_profile_windows


class SlipsIDS(FlowIDS):
    """Behavioural evidence accumulation over profile-windows.

    * each profile-window's evidence weights are summed;
    * a window whose total crosses ``alert_threshold`` is *alerted* and
      every flow the profile originated in that window is scored with
      the accumulated evidence (Slips acts per source IP);
    * once a profile has alerted, later windows of the same profile use
      a reduced threshold (``recidivist_factor``) — Slips trusts prior
      detections when judging a known-bad source.

    Unsupervised and training-free: ``fit`` is a no-op, matching how
    Slips is deployed (its models ship pre-trained).
    """

    name = "Slips"
    supervised = False

    def __init__(
        self,
        *,
        window_width: float = 3600.0,
        alert_threshold: float = 1.0,
        recidivist_factor: float = 0.6,
    ) -> None:
        if alert_threshold <= 0:
            raise ValueError("alert_threshold must be positive")
        if not 0 < recidivist_factor <= 1:
            raise ValueError("recidivist_factor must be in (0, 1]")
        self.window_width = window_width
        self.alert_threshold = alert_threshold
        self.recidivist_factor = recidivist_factor
        self.c2_model = default_c2_model()
        self.last_evidence: list[Evidence] = []
        self.last_alerts: list[tuple[str, int, float]] = []

    @classmethod
    def default_config(cls) -> dict:
        """v1.0.7-equivalent defaults: 1-hour windows, unit threat
        threshold, recidivism discount."""
        return {
            "window_width": 3600.0,
            "alert_threshold": 1.0,
            "recidivist_factor": 0.6,
        }

    def fit(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        """No training: Slips ships its behaviour models pre-trained."""

    def _window_evidence(self, window) -> list[Evidence]:
        evidence: list[Evidence] = []
        evidence.extend(detectors.detect_vertical_portscan(window))
        evidence.extend(detectors.detect_horizontal_portscan(window))
        evidence.extend(detectors.detect_beaconing(window))
        evidence.extend(detectors.detect_suspicious_port(window))
        evidence.extend(detectors.detect_long_connections(window))
        evidence.extend(detectors.detect_anomalous_flags(window))
        evidence.extend(
            detectors.detect_malicious_behaviour(window, self.c2_model)
        )
        return evidence

    def anomaly_scores(
        self, flows: Sequence[FlowRecord], features: np.ndarray
    ) -> np.ndarray:
        """Per-flow threat scores from accumulated profile evidence."""
        scores = np.zeros(len(flows))
        windows = build_profile_windows(flows, window_width=self.window_width)
        self.last_evidence = []
        self.last_alerts = []
        alerted_profiles: set[str] = set()
        # Evaluate windows in chronological order so recidivism flows
        # forward in time only.
        for (profile_ip, window_index) in sorted(
            windows, key=lambda key: (key[1], key[0])
        ):
            window = windows[(profile_ip, window_index)]
            evidence = self._window_evidence(window)
            if not evidence:
                continue
            self.last_evidence.extend(evidence)
            total = sum(e.weight for e in evidence)
            threshold = self.alert_threshold
            if profile_ip in alerted_profiles:
                threshold *= self.recidivist_factor
            if total >= threshold:
                alerted_profiles.add(profile_ip)
                self.last_alerts.append((profile_ip, window_index, total))
                for index in window.flow_indices:
                    scores[index] = max(scores[index], total)
        return scores
