"""HELAD: heterogeneous ensemble learning anomaly detection.

Reimplementation of Zhong et al. (Computer Networks 169, 2020): damped
incremental features (shared with Kitsune), an autoencoder learning the
benign manifold, and an LSTM learning the *temporal* structure of the
autoencoder's anomaly scores. The final score is a weighted blend of
reconstruction error and temporal prediction error.
"""

from repro.ids.helad.helad import HELAD

__all__ = ["HELAD"]
