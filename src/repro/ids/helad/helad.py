"""The HELAD packet anomaly detector."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.netstat import NetStat
from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.base import PacketIDS
from repro.ml.autoencoder import Autoencoder
from repro.ml.lstm import LSTMRegressor
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG
from repro.utils.validation import check_fraction


class HELAD(PacketIDS):
    """Autoencoder + LSTM heterogeneous ensemble (Zhong et al. 2020).

    Training (on a presumed-benign stream):

    1. extract damped incremental features per packet;
    2. train the autoencoder online and record its RMSE series;
    3. train the LSTM to predict the next RMSE from a sliding window.

    Scoring: the autoencoder RMSE is scaled by its training-time 98th
    percentile and squashed with ``tanh`` (HELAD normalises anomaly
    scores into a bounded range), then blended with the LSTM's one-step
    *prediction* of that squashed series::

        score = blend * squash(ae) + (1 - blend) * lstm_prediction

    An isolated benign spike gets only the ``blend`` share of its
    amplitude (the LSTM, having seen a calm history, predicts calm),
    while a sustained attack drives both terms up. This temporal
    smoothing is the behavioural difference from Kitsune that shows up
    in the paper's Table IV: HELAD trades recall for precision on
    enterprise traffic and dominates on steady IoT profiles.
    """

    name = "HELAD"
    supervised = False
    supports_batch = True

    def __init__(
        self,
        *,
        window: int = 12,
        hidden_dim: int = 16,
        blend: float = 0.6,
        hidden_ratio: float = 0.5,
        ae_learning_rate: float = 0.1,
        lstm_learning_rate: float = 0.03,
        decays: tuple[float, ...] = (5.0, 3.0, 1.0, 0.1, 0.01),
        seed: int = 0,
        netstat_engine: str = "vector",
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.blend = check_fraction("blend", blend)
        # Bit-identical to the scalar AfterImage reference; a pure
        # throughput knob (see docs/PERFORMANCE.md).
        self.netstat = NetStat(decays, engine=netstat_engine)
        rng = SeededRNG(seed, "helad")
        # Unclipped AfterImage normalisation: post-training regime
        # shifts scale past [0, 1] and blow up reconstruction error.
        self.scaler = OnlineMinMaxScaler(self.netstat.feature_count, clip=False)
        self.autoencoder = Autoencoder(
            self.netstat.feature_count,
            hidden_ratio=hidden_ratio,
            learning_rate=ae_learning_rate,
            rng=rng.child("ae"),
        )
        self.lstm = LSTMRegressor(
            input_dim=1,
            hidden_dim=hidden_dim,
            learning_rate=lstm_learning_rate,
            rng=rng.child("lstm"),
        )
        self._score_history: list[float] = []
        self._ae_scale = 1e-9
        self._lstm_scale = 1e-9
        self.trained = False

    @classmethod
    def default_config(cls) -> dict:
        """Defaults from the HELAD paper's experiments (window ~ 10-20,
        LSTM hidden 16, blended score with AE-dominant weight)."""
        return {
            "window": 12,
            "hidden_dim": 16,
            "blend": 0.6,
            "hidden_ratio": 0.5,
            "ae_learning_rate": 0.1,
            "lstm_learning_rate": 0.03,
        }

    def _squash(self, ae_rmse):
        """Bounded anomaly amplitude: tanh of the scaled RMSE.

        The single definition of the squash, shared by the per-packet
        reference, the batched path and ``fit`` — scalar in, scalar
        out; array in, elementwise array out (``np.tanh`` rounds a
        value identically either way, which the batched==per-packet
        parity contract relies on).
        """
        return np.tanh(ae_rmse / self._ae_scale / 2.0)

    def fit(self, packets: Sequence[Packet]) -> None:
        """Train both ensemble members on a presumed-benign stream."""
        rmses: list[float] = []
        for packet in packets:
            features = self.netstat.update(packet)
            scaled = self.scaler.fit_transform(features)
            rmses.append(self.autoencoder.train_score(scaled))
        self.scaler.freeze()
        series = np.asarray(rmses, dtype=np.float64)
        if series.size:
            self._ae_scale = max(float(np.quantile(series, 0.98)), 1e-9)
        # Train the LSTM to predict the squashed score series one step
        # ahead; only the second half of the series is used, after the
        # autoencoder's online training has mostly converged.
        squashed = self._squash(series)
        start = max(self.window, squashed.size // 2)
        for i in range(start, squashed.size):
            self.lstm.train_window(squashed[i - self.window : i], squashed[i])
        self._score_history = list(squashed[-self.window :])
        self.trained = True

    def anomaly_scores(self, packets: Sequence[Packet]) -> np.ndarray:
        """Blended anomaly score per packet (reference loop)."""
        if not self.trained:
            raise RuntimeError("HELAD.anomaly_scores called before fit()")
        scores = np.empty(len(packets))
        history = list(self._score_history)
        for idx, packet in enumerate(packets):
            features = self.netstat.update(packet)
            scaled = self.scaler.transform(features)
            ae_component = float(self._squash(self.autoencoder.score(scaled)))
            scores[idx] = self._blend_step(history, ae_component)
        self._score_history = history[-self.window :]
        return scores

    def score_batch(self, packets: Sequence[Packet]) -> np.ndarray:
        """Batched scoring: the autoencoder stage runs over the whole
        micro-batch (one scaler transform, one 2-D forward, one
        vectorized squash); the LSTM blend stays per-packet — its
        prediction consumes the running score history. Bit-identical
        to :meth:`anomaly_scores`.
        """
        if not self.trained:
            raise RuntimeError("HELAD.score_batch called before fit()")
        features = self.netstat.extract_all(packets)
        scaled = self.scaler.transform(features)
        ae_components = self._squash(self.autoencoder.score_batch(scaled))
        scores = np.empty(len(packets))
        history = list(self._score_history)
        for idx in range(len(packets)):
            scores[idx] = self._blend_step(history, float(ae_components[idx]))
        self._score_history = history[-self.window :]
        return scores

    def _blend_step(self, history: list[float], ae_component: float) -> float:
        """One packet's blend of the AE amplitude with the LSTM's
        prediction from ``history``, which it appends to and trims."""
        if len(history) >= self.window:
            predicted = self.lstm.predict_window(
                np.asarray(history[-self.window :])
            )
            lstm_component = float(np.clip(predicted, 0.0, 1.0))
        else:
            lstm_component = 0.0
        score = (
            self.blend * ae_component + (1.0 - self.blend) * lstm_component
        )
        history.append(ae_component)
        if len(history) > 4 * self.window:
            del history[: -2 * self.window]
        return score
