"""The four evaluated IDSs plus classical baselines.

* :mod:`repro.ids.kitsune` — ensemble-of-autoencoders online NIDS
  (Mirsky et al., NDSS 2018); packet-level, unsupervised.
* :mod:`repro.ids.helad` — heterogeneous ensemble (autoencoder + LSTM)
  anomaly detection (Zhong et al., Computer Networks 2020);
  packet-level, unsupervised.
* :mod:`repro.ids.dnn` — the 3-hidden-layer supervised DNN
  (Vigneswaran et al., ICCCNT 2018); flow-level, supervised.
* :mod:`repro.ids.slips` — a behavioural evidence-accumulation IPS
  modelled on Stratosphere Linux IPS v1.0.7; flow-level, heuristic/ML.
* :mod:`repro.ids.classical` — LR / decision tree / naive Bayes / kNN
  baselines from the DNN study, used in the ablation benches.
"""

from repro.ids.base import IDSBase, PacketIDS, FlowIDS, InputKind
from repro.ids.kitsune import Kitsune
from repro.ids.helad import HELAD
from repro.ids.dnn import DNNClassifierIDS
from repro.ids.slips import SlipsIDS
from repro.ids.registry import (
    INVESTIGATED_IDS,
    IDSRecord,
    batch_capable_ids,
    evaluated_ids_factories,
)

__all__ = [
    "IDSBase",
    "PacketIDS",
    "FlowIDS",
    "InputKind",
    "Kitsune",
    "HELAD",
    "DNNClassifierIDS",
    "SlipsIDS",
    "INVESTIGATED_IDS",
    "IDSRecord",
    "batch_capable_ids",
    "evaluated_ids_factories",
]
