"""The Kitsune NIDS: NetStat features + KitNET, packet in, score out."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.netstat import NetStat
from repro.ids.base import PacketIDS
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG


class Kitsune(PacketIDS):
    """Plug-and-play packet anomaly detector (Mirsky et al. 2018).

    ``fit`` runs the feature-mapping and training grace periods over
    the provided stream (assumed benign, per the paper's methodology of
    training on each dataset's initial benign traffic);
    ``anomaly_scores`` runs pure execution. The NetStat state persists
    across both calls — Kitsune is an *online* system and its damped
    statistics must flow continuously from training into execution.
    """

    name = "Kitsune"
    supervised = False
    supports_batch = True

    def __init__(
        self,
        *,
        fm_grace: int = 1000,
        ad_grace: int = 9000,
        max_group: int = 10,
        hidden_ratio: float = 0.75,
        learning_rate: float = 0.1,
        decays: tuple[float, ...] = (5.0, 3.0, 1.0, 0.1, 0.01),
        seed: int = 0,
        netstat_engine: str = "vector",
        train_mode: str = "online",
        train_batch: int = 32,
        train_workers: int | None = None,
        train_backend: str = "thread",
        ensemble_backend: str = "auto",
    ) -> None:
        # The vectorized AfterImage engine is bit-identical to the
        # scalar reference (tests/test_features_parity.py), so the
        # engine choice is a pure throughput knob. Likewise
        # ``train_workers`` (cross-group parallel online training is
        # bit-identical); ``train_mode="minibatch"`` is an opt-in
        # trajectory change (see repro.ml.batched_train).
        self.netstat = NetStat(decays, engine=netstat_engine)
        from repro.ids.kitsune.kitnet import KitNET

        self.kitnet = KitNET(
            self.netstat.feature_count,
            fm_grace=fm_grace,
            ad_grace=ad_grace,
            max_group=max_group,
            hidden_ratio=hidden_ratio,
            learning_rate=learning_rate,
            train_mode=train_mode,
            train_batch=train_batch,
            train_workers=train_workers,
            train_backend=train_backend,
            ensemble_backend=ensemble_backend,
            rng=SeededRNG(seed, "kitsune"),
        )

    @classmethod
    def default_config(cls) -> dict:
        """Upstream repo defaults (FMgrace=5000, ADgrace=50000 scaled to
        the sampled captures; group size 10, lr 0.1, hidden 0.75)."""
        return {
            "fm_grace": 1000,
            "ad_grace": 9000,
            "max_group": 10,
            "hidden_ratio": 0.75,
            "learning_rate": 0.1,
        }

    def fit(self, packets: Sequence[Packet]) -> None:
        """Consume the training stream (grace periods).

        Features are extracted sequentially into one matrix and handed
        to :meth:`KitNET.process_batch` — bit-identical to the per-row
        loop in the default configuration, and the hook through which
        the batched/parallel training engines see whole chunks.
        """
        self.kitnet.process_batch(self.netstat.extract_all(packets))

    def anomaly_scores(self, packets: Sequence[Packet]) -> np.ndarray:
        """Execute-mode RMSE scores, one per packet (reference loop)."""
        return np.array(
            [self.kitnet.process(self.netstat.update(p)) for p in packets]
        )

    def score_batch(self, packets: Sequence[Packet]) -> np.ndarray:
        """Batched scoring: features into one matrix, KitNET in batches.

        NetStat stays sequential (damped statistics are order-defined)
        but writes into one preallocated matrix; KitNET then scores all
        execute-phase rows through its packed ensemble. Bit-identical
        to :meth:`anomaly_scores`.
        """
        return self.kitnet.process_batch(self.netstat.extract_all(packets))

    @property
    def trained(self) -> bool:
        return not (self.kitnet.in_feature_mapping or self.kitnet.in_training)
