"""Kitsune: an ensemble of autoencoders for online NIDS.

Reimplementation of Mirsky et al. (NDSS 2018): the AfterImage feature
extractor (:mod:`repro.features`), a correlation-based feature mapper
that partitions the 100 features into small groups, KitNET's ensemble
of per-group autoencoders, and an output autoencoder over the ensemble
RMSEs.
"""

from repro.ids.kitsune.feature_mapper import FeatureMapper
from repro.ids.kitsune.kitnet import KitNET
from repro.ids.kitsune.kitsune import Kitsune

__all__ = ["FeatureMapper", "KitNET", "Kitsune"]
