"""Kitsune's feature mapper: correlation clustering of features.

During the feature-mapping grace period Kitsune accumulates summary
statistics of the feature stream; at the end it hierarchically clusters
features by correlation distance, capping cluster size at ``max_group``
(m=10 upstream). Each cluster becomes one ensemble autoencoder's input.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class FeatureMapper:
    """Learns a partition of feature indices from streamed instances."""

    def __init__(self, dim: int, *, max_group: int = 10) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.max_group = int(check_positive("max_group", max_group))
        # Streaming sums for the correlation matrix.
        self._count = 0
        self._sum = np.zeros(dim)
        self._sum_sq = np.zeros(dim)
        self._sum_outer = np.zeros((dim, dim))
        self.groups: list[list[int]] | None = None

    def partial_fit(self, row: np.ndarray) -> None:
        """Accumulate one instance's contribution to the correlations."""
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {row.shape}")
        self._count += 1
        self._sum += row
        self._sum_sq += row * row
        self._sum_outer += np.outer(row, row)

    def finalise(self) -> list[list[int]]:
        """Cluster features; returns (and caches) the index groups."""
        if self._count < 2:
            # Degenerate grace period: fall back to contiguous chunks.
            self.groups = [
                list(range(i, min(i + self.max_group, self.dim)))
                for i in range(0, self.dim, self.max_group)
            ]
            return self.groups
        n = self._count
        mean = self._sum / n
        var = self._sum_sq / n - mean * mean
        std = np.sqrt(np.maximum(var, 0.0))
        cov = self._sum_outer / n - np.outer(mean, mean)
        denom = np.outer(std, std)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, cov / denom, 0.0)
        np.fill_diagonal(corr, 1.0)
        distance = 1.0 - np.abs(corr)
        self.groups = self._cluster(distance)
        return self.groups

    def _cluster(self, distance: np.ndarray) -> list[list[int]]:
        """Agglomerative single-linkage clustering with a size cap."""
        clusters: list[list[int]] = [[i] for i in range(self.dim)]
        # Single-linkage distance between clusters, updated lazily.
        while len(clusters) > 1:
            best_pair: tuple[int, int] | None = None
            best_distance = np.inf
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    if len(clusters[i]) + len(clusters[j]) > self.max_group:
                        continue
                    d = distance[np.ix_(clusters[i], clusters[j])].min()
                    if d < best_distance:
                        best_distance = d
                        best_pair = (i, j)
            if best_pair is None:  # nothing mergeable under the cap
                break
            i, j = best_pair
            clusters[i] = clusters[i] + clusters[j]
            del clusters[j]
        return clusters

    @property
    def is_final(self) -> bool:
        return self.groups is not None
