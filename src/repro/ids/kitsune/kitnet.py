"""KitNET: the ensemble-of-autoencoders anomaly detector.

Architecture per the paper: each feature group feeds a small sigmoid
autoencoder; the per-autoencoder RMSEs feed an output autoencoder whose
reconstruction RMSE is the final anomaly score. Training is online:
a feature-mapping grace period, then an ensemble-training grace period,
then pure execution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.kitsune.feature_mapper import FeatureMapper
from repro.ml.autoencoder import Autoencoder
from repro.utils.rng import SeededRNG
from repro.utils.validation import check_positive


class KitNET:
    """Online anomaly detector over fixed-dimension feature vectors.

    Parameters mirror the upstream defaults: ``max_group=10``,
    ``hidden_ratio=0.75``, ``learning_rate=0.1``.
    """

    def __init__(
        self,
        dim: int,
        *,
        fm_grace: int = 1000,
        ad_grace: int = 9000,
        max_group: int = 10,
        hidden_ratio: float = 0.75,
        learning_rate: float = 0.1,
        rng: SeededRNG,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.fm_grace = int(check_positive("fm_grace", fm_grace))
        self.ad_grace = int(check_positive("ad_grace", ad_grace))
        self.hidden_ratio = hidden_ratio
        self.learning_rate = learning_rate
        self._rng = rng
        self.mapper = FeatureMapper(dim, max_group=max_group)
        # AfterImage normalisation does not clip: post-training regime
        # shifts scale past [0, 1] and drive reconstruction RMSE up.
        self.scaler = OnlineMinMaxScaler(dim, clip=False)
        self.ensemble: list[Autoencoder] = []
        self.output_layer: Autoencoder | None = None
        self._output_scaler: OnlineMinMaxScaler | None = None
        self.samples_seen = 0
        #: Lazily packed execute-phase scorer; any train step resets it.
        self._batched_ensemble = None

    # -- lifecycle -------------------------------------------------------
    @property
    def in_feature_mapping(self) -> bool:
        return self.samples_seen < self.fm_grace

    @property
    def in_training(self) -> bool:
        return self.fm_grace <= self.samples_seen < self.fm_grace + self.ad_grace

    def _build_ensemble(self) -> None:
        groups = self.mapper.finalise()
        # Pre-built index arrays make the per-packet feature-group
        # gather a single optimized fancy-index instead of a
        # list-to-array conversion on every call.
        self._group_index = [
            np.asarray(group, dtype=np.intp) for group in groups
        ]
        self.ensemble = [
            Autoencoder(
                len(group),
                hidden_ratio=self.hidden_ratio,
                learning_rate=self.learning_rate,
                rng=self._rng.child(f"ae-{i}"),
            )
            for i, group in enumerate(groups)
        ]
        self.output_layer = Autoencoder(
            len(groups),
            hidden_ratio=self.hidden_ratio,
            learning_rate=self.learning_rate,
            rng=self._rng.child("output"),
        )
        self._output_scaler = OnlineMinMaxScaler(len(groups))

    def process(self, row: np.ndarray) -> float:
        """Feed one instance; returns its anomaly score (0.0 while the
        feature mapper is still collecting)."""
        row = np.asarray(row, dtype=np.float64)
        self.samples_seen += 1
        if self.samples_seen <= self.fm_grace:
            self.mapper.partial_fit(row)
            self.scaler.partial_fit(row)
            if self.samples_seen == self.fm_grace:
                self._build_ensemble()
            return 0.0
        if self.output_layer is None:  # fm_grace satisfied mid-stream
            self._build_ensemble()
        if self.in_training:
            return self._train_step(row)
        return self._execute(row)

    def _group_arrays(self) -> list[np.ndarray]:
        """The feature-group gather indices as ``np.intp`` arrays.

        ``_build_ensemble`` materialises these, but a detector restored
        by :func:`repro.ids.persistence.load_kitnet` — or unpickled
        from a checkpoint predating the index arrays — arrives with
        only ``mapper.groups`` plain lists. Materialise lazily so the
        per-group gather is a fancy-index everywhere, never a
        list-to-array conversion per call.
        """
        groups = getattr(self, "_group_index", None)
        if groups is None:
            groups = [
                np.asarray(group, dtype=np.intp)
                for group in (self.mapper.groups or [])
            ]
            self._group_index = groups
        return groups

    def _group_rmses(self, scaled: np.ndarray, *, train: bool) -> np.ndarray:
        groups = self._group_arrays()
        rmses = np.empty(len(groups))
        for i, group in enumerate(groups):
            sub = scaled[group]
            if train:
                rmses[i] = self.ensemble[i].train_score(sub)
            else:
                rmses[i] = self.ensemble[i].score(sub)
        return rmses

    def _train_step(self, row: np.ndarray) -> float:
        # Weights are about to move: drop any packed snapshot so the
        # batched execute path rebuilds from the post-update ensemble.
        self._batched_ensemble = None
        scaled = self.scaler.fit_transform(row)
        rmses = self._group_rmses(scaled, train=True)
        assert self._output_scaler is not None and self.output_layer is not None
        scaled_rmses = self._output_scaler.fit_transform(rmses)
        score = self.output_layer.train_score(scaled_rmses)
        if self.samples_seen == self.fm_grace + self.ad_grace:
            self.scaler.freeze()
            self._output_scaler.freeze()
        return score

    def _execute(self, row: np.ndarray) -> float:
        assert self._output_scaler is not None and self.output_layer is not None
        scaled = self.scaler.transform(row)
        rmses = self._group_rmses(scaled, train=False)
        return self.output_layer.score(self._output_scaler.transform(rmses))

    # -- batched execution ------------------------------------------------
    def _packed(self):
        """The lazily built packed-ensemble scorer (execute phase only)."""
        packed = getattr(self, "_batched_ensemble", None)
        if packed is None:
            from repro.ml.batched import BatchedEnsemble

            assert self.output_layer is not None
            packed = BatchedEnsemble(
                self.ensemble, self._group_arrays(), self.output_layer
            )
            self._batched_ensemble = packed
        return packed

    def execute_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Score a batch of execute-phase rows in one shot.

        Bit-identical to calling :meth:`process` on each row, but the
        whole batch goes through the packed ensemble: one scaler
        transform, a few stacked einsum contractions for all groups,
        and the output-layer RMSE per row. Only legal once both grace
        periods are over (training is inherently sequential).
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if self.in_feature_mapping or self.in_training:
            raise RuntimeError(
                "execute_batch during the grace periods; use process_batch"
            )
        if matrix.shape[0] == 0:
            return np.empty(0)
        if self.output_layer is None:  # fm_grace satisfied mid-stream
            self._build_ensemble()
        assert self._output_scaler is not None
        packed = self._packed()
        self.samples_seen += matrix.shape[0]
        scaled = self.scaler.transform(matrix)
        rmses = packed.group_rmses(scaled)
        return packed.output_rmses(self._output_scaler.transform(rmses))

    def process_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Feed a batch of instances; returns one score per row.

        Equivalent to (and bit-identical with) looping :meth:`process`:
        rows that fall inside the feature-mapping or training grace
        periods are processed one at a time — online SGD is sequential,
        and a train step landing mid-batch invalidates any packed
        tensors — and the remaining execute-phase rows are scored
        through :meth:`execute_batch`.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        scores = np.empty(matrix.shape[0])
        boundary = self.fm_grace + self.ad_grace
        i = 0
        while i < matrix.shape[0] and self.samples_seen < boundary:
            scores[i] = self.process(matrix[i])
            i += 1
        if i < matrix.shape[0]:
            scores[i:] = self.execute_batch(matrix[i:])
        return scores

    def score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Process a matrix of instances (online semantics preserved)."""
        return self.process_batch(matrix)
