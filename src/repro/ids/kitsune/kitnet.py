"""KitNET: the ensemble-of-autoencoders anomaly detector.

Architecture per the paper: each feature group feeds a small sigmoid
autoencoder; the per-autoencoder RMSEs feed an output autoencoder whose
reconstruction RMSE is the final anomaly score. Training is online:
a feature-mapping grace period, then an ensemble-training grace period,
then pure execution.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.kitsune.feature_mapper import FeatureMapper
from repro.ml.autoencoder import Autoencoder
from repro.utils.rng import SeededRNG
from repro.utils.validation import check_positive


class KitNET:
    """Online anomaly detector over fixed-dimension feature vectors.

    Parameters mirror the upstream defaults: ``max_group=10``,
    ``hidden_ratio=0.75``, ``learning_rate=0.1``.
    """

    # Class-level fallbacks so checkpoints pickled before the training
    # engine existed still dispatch to the online reference path.
    train_mode = "online"
    train_batch = 32
    train_workers: int | None = None
    train_backend = "thread"
    ensemble_backend = "auto"

    def __init__(
        self,
        dim: int,
        *,
        fm_grace: int = 1000,
        ad_grace: int = 9000,
        max_group: int = 10,
        hidden_ratio: float = 0.75,
        learning_rate: float = 0.1,
        train_mode: str = "online",
        train_batch: int = 32,
        train_workers: int | None = None,
        train_backend: str = "thread",
        ensemble_backend: str = "auto",
        rng: SeededRNG,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if train_mode not in ("online", "minibatch"):
            raise ValueError(
                f"train_mode must be 'online' or 'minibatch', "
                f"got {train_mode!r}"
            )
        if train_backend not in ("thread", "process"):
            raise ValueError(
                f"train_backend must be 'thread' or 'process', "
                f"got {train_backend!r}"
            )
        if ensemble_backend != "auto":
            # Fail fast with the registry's known-backend message.
            from repro import backends

            backends.get_backend(backends.ENSEMBLE, ensemble_backend)
        self.dim = dim
        self.fm_grace = int(check_positive("fm_grace", fm_grace))
        self.ad_grace = int(check_positive("ad_grace", ad_grace))
        self.hidden_ratio = hidden_ratio
        self.learning_rate = learning_rate
        #: ``"online"`` (the paper's per-packet SGD, the bit-exact
        #: reference) or ``"minibatch"`` (stacked mini-batch SGD — an
        #: intentionally different learning trajectory, see
        #: :mod:`repro.ml.batched_train`).
        self.train_mode = train_mode
        self.train_batch = int(check_positive("train_batch", train_batch))
        #: When set, batched training of an ``"online"``-mode detector
        #: shards the per-group train loops across this many workers —
        #: bit-identical to the sequential reference.
        self.train_workers = (
            None if train_workers is None
            else int(check_positive("train_workers", train_workers))
        )
        self.train_backend = train_backend
        #: Execute-phase scoring backend: ``"auto"`` / the registered
        #: ``"batched-einsum"`` (packed ensemble) or ``"per-row"``
        #: (reference loop) — bit-identical, a pure throughput knob.
        self.ensemble_backend = ensemble_backend
        self._rng = rng
        self.mapper = FeatureMapper(dim, max_group=max_group)
        # AfterImage normalisation does not clip: post-training regime
        # shifts scale past [0, 1] and drive reconstruction RMSE up.
        self.scaler = OnlineMinMaxScaler(dim, clip=False)
        self.ensemble: list[Autoencoder] = []
        self.output_layer: Autoencoder | None = None
        self._output_scaler: OnlineMinMaxScaler | None = None
        self.samples_seen = 0
        #: Lazily packed execute-phase scorer; any train step resets it.
        self._batched_ensemble = None
        #: Lazily built training engines (see repro.ml.batched_train);
        #: torn down when the training grace period completes.
        self._minibatch_engine = None
        self._sharded_engine = None

    # -- lifecycle -------------------------------------------------------
    @property
    def resolved_ensemble_backend(self) -> str:
        """The concrete execute-phase backend (``"auto"`` resolved)."""
        backend = getattr(self, "ensemble_backend", "auto")
        return "batched-einsum" if backend == "auto" else backend

    @property
    def in_feature_mapping(self) -> bool:
        return self.samples_seen < self.fm_grace

    @property
    def in_training(self) -> bool:
        return self.fm_grace <= self.samples_seen < self.fm_grace + self.ad_grace

    def _build_ensemble(self) -> None:
        groups = self.mapper.finalise()
        # Pre-built index arrays make the per-packet feature-group
        # gather a single optimized fancy-index instead of a
        # list-to-array conversion on every call.
        self._group_index = [
            np.asarray(group, dtype=np.intp) for group in groups
        ]
        self.ensemble = [
            Autoencoder(
                len(group),
                hidden_ratio=self.hidden_ratio,
                learning_rate=self.learning_rate,
                rng=self._rng.child(f"ae-{i}"),
            )
            for i, group in enumerate(groups)
        ]
        self.output_layer = Autoencoder(
            len(groups),
            hidden_ratio=self.hidden_ratio,
            learning_rate=self.learning_rate,
            rng=self._rng.child("output"),
        )
        self._output_scaler = OnlineMinMaxScaler(len(groups))
        if obs.is_enabled():
            obs.gauge("ml.kitnet.ensemble_groups").set(len(groups))

    def process(self, row: np.ndarray) -> float:
        """Feed one instance; returns its anomaly score (0.0 while the
        feature mapper is still collecting)."""
        row = np.asarray(row, dtype=np.float64)
        self.samples_seen += 1
        if self.samples_seen <= self.fm_grace:
            self.mapper.partial_fit(row)
            self.scaler.partial_fit(row)
            if self.samples_seen == self.fm_grace:
                self._build_ensemble()
            return 0.0
        if self.output_layer is None:  # fm_grace satisfied mid-stream
            self._build_ensemble()
        if self.in_training:
            if self.train_mode == "minibatch":
                # A lone row is its own (size-1) mini-batch.
                score = float(self._train_rows_minibatch(row.reshape(1, -1))[0])
                if self.samples_seen == self.fm_grace + self.ad_grace - 1:
                    self._finish_training()
                return score
            return self._train_step(row)
        return self._execute(row)

    def _group_arrays(self) -> list[np.ndarray]:
        """The feature-group gather indices as ``np.intp`` arrays.

        ``_build_ensemble`` materialises these, but a detector restored
        by :func:`repro.ids.persistence.load_kitnet` — or unpickled
        from a checkpoint predating the index arrays — arrives with
        only ``mapper.groups`` plain lists. Materialise lazily so the
        per-group gather is a fancy-index everywhere, never a
        list-to-array conversion per call.
        """
        groups = getattr(self, "_group_index", None)
        if groups is None:
            groups = [
                np.asarray(group, dtype=np.intp)
                for group in (self.mapper.groups or [])
            ]
            self._group_index = groups
        return groups

    def _group_rmses(self, scaled: np.ndarray, *, train: bool) -> np.ndarray:
        groups = self._group_arrays()
        rmses = np.empty(len(groups))
        for i, group in enumerate(groups):
            sub = scaled[group]
            if train:
                rmses[i] = self.ensemble[i].train_score(sub)
            else:
                rmses[i] = self.ensemble[i].score(sub)
        return rmses

    def _train_step(self, row: np.ndarray) -> float:
        if getattr(self, "_minibatch_engine", None) is not None:
            raise RuntimeError(
                "mini-batch training is in progress; a per-row train "
                "step would diverge from the packed weights"
            )
        # Weights are about to move: drop any packed snapshot so the
        # batched execute path rebuilds from the post-update ensemble.
        self._record_training(1)
        self._batched_ensemble = None
        scaled = self.scaler.fit_transform(row)
        rmses = self._group_rmses(scaled, train=True)
        assert self._output_scaler is not None and self.output_layer is not None
        scaled_rmses = self._output_scaler.fit_transform(rmses)
        score = self.output_layer.train_score(scaled_rmses)
        if self.samples_seen == self.fm_grace + self.ad_grace - 1:
            self._finish_training()
        return score

    def _record_training(self, rows: int) -> None:
        """Obs bookkeeping for a training step (no-op when disabled).

        ``ml.kitnet.batch_invalidations`` counts the packed execute
        scorer being thrown away by a weight update — a rebuild-churn
        signal when training and execution interleave.
        """
        if not obs.is_enabled():
            return
        registry = obs.get_registry()
        registry.counter("ml.kitnet.rows_trained").inc(rows)
        if self._batched_ensemble is not None:
            registry.counter("ml.kitnet.batch_invalidations").inc()
        if self.ad_grace:
            trained = min(max(self.samples_seen - self.fm_grace, 0),
                          self.ad_grace)
            registry.gauge("ml.kitnet.grace_progress").set(
                trained / self.ad_grace
            )

    # -- batched / parallel training --------------------------------------
    def _minibatch_trainer(self):
        """The packed mini-batch engine (train_mode="minibatch" only).

        Owns the canonical training weights from first use until
        :meth:`_finish_training` syncs them back into the ensemble.
        """
        engine = getattr(self, "_minibatch_engine", None)
        if engine is None:
            from repro.ml.batched_train import MiniBatchTrainer

            engine = MiniBatchTrainer(
                self.ensemble,
                self._group_arrays(),
                learning_rate=self.learning_rate,
            )
            self._minibatch_engine = engine
        return engine

    def _sharded_trainer(self):
        """The cross-group parallel online engine (train_workers set)."""
        engine = getattr(self, "_sharded_engine", None)
        if engine is None:
            from repro.ml.batched_train import ShardedGroupTrainer

            engine = ShardedGroupTrainer(
                self.ensemble,
                self._group_arrays(),
                workers=self.train_workers or 1,
                backend=self.train_backend,
            )
            self._sharded_engine = engine
        return engine

    def _train_rows_minibatch(self, matrix: np.ndarray) -> np.ndarray:
        """Mini-batch SGD over training-phase rows (trajectory change).

        Rows are consumed in ``train_batch``-sized flush groups: the
        input scaler fits on the whole group before transforming it,
        every group autoencoder takes one stacked averaged-gradient
        step per group, and the output autoencoder trains on the
        group's RMSE matrix the same way. Scores are the pre-update
        RMSEs, as in online mode.
        """
        self._record_training(matrix.shape[0])
        self._batched_ensemble = None
        assert self._output_scaler is not None and self.output_layer is not None
        trainer = self._minibatch_trainer()
        scores = np.empty(matrix.shape[0])
        for start in range(0, matrix.shape[0], self.train_batch):
            chunk = matrix[start : start + self.train_batch]
            self.scaler.partial_fit(chunk)
            scaled = self.scaler.transform(chunk)
            rmses = trainer.train_step(scaled)
            self._output_scaler.partial_fit(rmses)
            scaled_rmses = self._output_scaler.transform(rmses)
            scores[start : start + len(chunk)] = self.output_layer.train_batch(
                scaled_rmses
            )
        return scores

    def _train_rows_parallel(self, matrix: np.ndarray) -> np.ndarray:
        """Cross-group parallel online training — bit-identical.

        The input scaler's per-row fit-transform trajectory is computed
        vectorized (running extrema), the per-group train loops run
        sharded across workers (each group's SGD sequence is untouched,
        groups share no state), and the output layer — one small
        autoencoder whose input couples all groups per row — replays
        its sequential per-row loop. Every float operation matches the
        reference loop, so scores and final weights are bit-identical.
        """
        self._record_training(matrix.shape[0])
        self._batched_ensemble = None
        assert self._output_scaler is not None and self.output_layer is not None
        scaled = self.scaler.fit_transform_running(matrix)
        rmses = self._sharded_trainer().train_rows(scaled)
        scores = np.empty(matrix.shape[0])
        output_scaler = self._output_scaler
        output_layer = self.output_layer
        for i in range(matrix.shape[0]):
            scaled_rmses = output_scaler.fit_transform(rmses[i])
            scores[i] = output_layer.train_score(scaled_rmses)
        return scores

    def _finish_training(self) -> None:
        """Last training row done: sync and tear down the engines.

        Fires at ``samples_seen == fm_grace + ad_grace - 1`` — the last
        row the online reference actually trains on. The row that takes
        ``samples_seen`` to the boundary itself goes through
        :meth:`_execute` (``in_training`` is checked after the
        increment), so engines must be synced before it scores. The
        scalers are deliberately *not* frozen: the reference trajectory
        never freezes them, and bit-parity extends to detector state.
        """
        engine = getattr(self, "_minibatch_engine", None)
        if engine is not None:
            engine.sync()
            self._minibatch_engine = None
        sharded = getattr(self, "_sharded_engine", None)
        if sharded is not None:
            sharded.close()
            self._sharded_engine = None

    def _execute(self, row: np.ndarray) -> float:
        assert self._output_scaler is not None and self.output_layer is not None
        scaled = self.scaler.transform(row)
        rmses = self._group_rmses(scaled, train=False)
        return self.output_layer.score(self._output_scaler.transform(rmses))

    # -- batched execution ------------------------------------------------
    def _packed(self):
        """The lazily built packed-ensemble scorer (execute phase only)."""
        packed = getattr(self, "_batched_ensemble", None)
        if packed is None:
            from repro.ml.batched import BatchedEnsemble

            assert self.output_layer is not None
            packed = BatchedEnsemble(
                self.ensemble, self._group_arrays(), self.output_layer
            )
            self._batched_ensemble = packed
            if obs.is_enabled():
                obs.counter("ml.kitnet.batched_builds").inc()
        return packed

    def _as_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """``matrix`` as ``(n, dim)`` float64, where ``n`` may be 0.

        Empty inputs (an empty list, a zero-row matrix) normalise to
        ``(0, dim)`` instead of the ``(1, 0)`` shape ``np.atleast_2d``
        would produce — which used to die in the scaler with a
        confusing dimension-mismatch error. A non-empty matrix with the
        wrong feature dimension is rejected *before* any state changes.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.size == 0:
            return np.empty((0, self.dim))
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(
                f"expected rows of dimension {self.dim}, "
                f"got shape {matrix.shape}"
            )
        return matrix

    def execute_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Score a batch of execute-phase rows in one shot.

        Bit-identical to calling :meth:`process` on each row, but the
        whole batch goes through the packed ensemble: one scaler
        transform, a few stacked einsum contractions for all groups,
        and the output-layer RMSE per row. Only legal once both grace
        periods are over (training advances state row by row).
        """
        matrix = self._as_matrix(matrix)
        if self.in_feature_mapping or self.in_training:
            raise RuntimeError(
                "execute_batch during the grace periods; use process_batch"
            )
        if matrix.shape[0] == 0:
            return np.empty(0)
        if self.output_layer is None:  # fm_grace satisfied mid-stream
            self._build_ensemble()
        assert self._output_scaler is not None
        if self.resolved_ensemble_backend == "per-row":
            scores = np.array([self._execute(row) for row in matrix])
            self.samples_seen += matrix.shape[0]
            return scores
        packed = self._packed()
        scaled = self.scaler.transform(matrix)
        rmses = packed.group_rmses(scaled)
        scores = packed.output_rmses(self._output_scaler.transform(rmses))
        # Advance the sample counter only after the whole batch scored:
        # a failure above must not corrupt the detector's phase state.
        self.samples_seen += matrix.shape[0]
        return scores

    def process_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Feed a batch of instances; returns one score per row.

        In the default configuration this is equivalent to (and
        bit-identical with) looping :meth:`process`: grace-period rows
        are processed one at a time and the remaining execute-phase
        rows are scored through :meth:`execute_batch`. With
        ``train_workers`` set, training rows instead go through the
        cross-group parallel engine — still bit-identical to the
        sequential reference. With ``train_mode="minibatch"`` they take
        the stacked mini-batch SGD path, an intentionally different
        learning trajectory pinned by its own golden fixture.
        """
        matrix = self._as_matrix(matrix)
        n = matrix.shape[0]
        scores = np.empty(n)
        if n == 0:
            return scores
        boundary = self.fm_grace + self.ad_grace
        i = 0
        # Feature-mapping rows stay per-row: the mapper accumulates
        # correlation sums and finalises at an exact row index.
        while i < n and self.samples_seen < self.fm_grace:
            scores[i] = self.process(matrix[i])
            i += 1
        if i < n and self.samples_seen < boundary:
            batched_train = (
                self.train_mode == "minibatch"
                or self.train_workers is not None
            )
            if batched_train:
                if self.output_layer is None:
                    self._build_ensemble()
                # The reference trains rows whose post-increment count is
                # in [fm+1, fm+ad-1]; the row reaching the boundary goes
                # through per-row _execute without fitting the scalers.
                take = min(n - i, boundary - 1 - self.samples_seen)
                if take > 0:
                    chunk = matrix[i : i + take]
                    self.samples_seen += take
                    if self.train_mode == "minibatch":
                        scores[i : i + take] = self._train_rows_minibatch(
                            chunk
                        )
                    else:
                        scores[i : i + take] = self._train_rows_parallel(
                            chunk
                        )
                    i += take
                if self.samples_seen == boundary - 1:
                    self._finish_training()
                # The boundary-crossing row (per-row execute semantics).
                while i < n and self.samples_seen < boundary:
                    scores[i] = self.process(matrix[i])
                    i += 1
            else:
                while i < n and self.samples_seen < boundary:
                    scores[i] = self.process(matrix[i])
                    i += 1
        if i < n:
            scores[i:] = self.execute_batch(matrix[i:])
        return scores

    def score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Process a matrix of instances (online semantics preserved)."""
        return self.process_batch(matrix)
