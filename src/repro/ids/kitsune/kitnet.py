"""KitNET: the ensemble-of-autoencoders anomaly detector.

Architecture per the paper: each feature group feeds a small sigmoid
autoencoder; the per-autoencoder RMSEs feed an output autoencoder whose
reconstruction RMSE is the final anomaly score. Training is online:
a feature-mapping grace period, then an ensemble-training grace period,
then pure execution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.features.normalize import OnlineMinMaxScaler
from repro.ids.kitsune.feature_mapper import FeatureMapper
from repro.ml.autoencoder import Autoencoder
from repro.utils.rng import SeededRNG
from repro.utils.validation import check_positive


class KitNET:
    """Online anomaly detector over fixed-dimension feature vectors.

    Parameters mirror the upstream defaults: ``max_group=10``,
    ``hidden_ratio=0.75``, ``learning_rate=0.1``.
    """

    def __init__(
        self,
        dim: int,
        *,
        fm_grace: int = 1000,
        ad_grace: int = 9000,
        max_group: int = 10,
        hidden_ratio: float = 0.75,
        learning_rate: float = 0.1,
        rng: SeededRNG,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.fm_grace = int(check_positive("fm_grace", fm_grace))
        self.ad_grace = int(check_positive("ad_grace", ad_grace))
        self.hidden_ratio = hidden_ratio
        self.learning_rate = learning_rate
        self._rng = rng
        self.mapper = FeatureMapper(dim, max_group=max_group)
        # AfterImage normalisation does not clip: post-training regime
        # shifts scale past [0, 1] and drive reconstruction RMSE up.
        self.scaler = OnlineMinMaxScaler(dim, clip=False)
        self.ensemble: list[Autoencoder] = []
        self.output_layer: Autoencoder | None = None
        self._output_scaler: OnlineMinMaxScaler | None = None
        self.samples_seen = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def in_feature_mapping(self) -> bool:
        return self.samples_seen < self.fm_grace

    @property
    def in_training(self) -> bool:
        return self.fm_grace <= self.samples_seen < self.fm_grace + self.ad_grace

    def _build_ensemble(self) -> None:
        groups = self.mapper.finalise()
        # Pre-built index arrays make the per-packet feature-group
        # gather a single optimized fancy-index instead of a
        # list-to-array conversion on every call.
        self._group_index = [
            np.asarray(group, dtype=np.intp) for group in groups
        ]
        self.ensemble = [
            Autoencoder(
                len(group),
                hidden_ratio=self.hidden_ratio,
                learning_rate=self.learning_rate,
                rng=self._rng.child(f"ae-{i}"),
            )
            for i, group in enumerate(groups)
        ]
        self.output_layer = Autoencoder(
            len(groups),
            hidden_ratio=self.hidden_ratio,
            learning_rate=self.learning_rate,
            rng=self._rng.child("output"),
        )
        self._output_scaler = OnlineMinMaxScaler(len(groups))

    def process(self, row: np.ndarray) -> float:
        """Feed one instance; returns its anomaly score (0.0 while the
        feature mapper is still collecting)."""
        row = np.asarray(row, dtype=np.float64)
        self.samples_seen += 1
        if self.samples_seen <= self.fm_grace:
            self.mapper.partial_fit(row)
            self.scaler.partial_fit(row)
            if self.samples_seen == self.fm_grace:
                self._build_ensemble()
            return 0.0
        if self.output_layer is None:  # fm_grace satisfied mid-stream
            self._build_ensemble()
        if self.in_training:
            return self._train_step(row)
        return self._execute(row)

    def _group_rmses(self, scaled: np.ndarray, *, train: bool) -> np.ndarray:
        groups = getattr(self, "_group_index", None)
        if groups is None:
            groups = self.mapper.groups or []
        rmses = np.empty(len(groups))
        for i, group in enumerate(groups):
            sub = scaled[group]
            if train:
                rmses[i] = self.ensemble[i].train_score(sub)
            else:
                rmses[i] = self.ensemble[i].score(sub)
        return rmses

    def _train_step(self, row: np.ndarray) -> float:
        scaled = self.scaler.fit_transform(row)
        rmses = self._group_rmses(scaled, train=True)
        assert self._output_scaler is not None and self.output_layer is not None
        scaled_rmses = self._output_scaler.fit_transform(rmses)
        score = self.output_layer.train_score(scaled_rmses)
        if self.samples_seen == self.fm_grace + self.ad_grace:
            self.scaler.freeze()
            self._output_scaler.freeze()
        return score

    def _execute(self, row: np.ndarray) -> float:
        assert self._output_scaler is not None and self.output_layer is not None
        scaled = self.scaler.transform(row)
        rmses = self._group_rmses(scaled, train=False)
        return self.output_layer.score(self._output_scaler.transform(rmses))

    def score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Process a matrix row-by-row (online semantics preserved)."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        return np.array([self.process(row) for row in matrix])
