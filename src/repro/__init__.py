"""repro — a reproduction of "Expectations Versus Reality: Evaluating
Intrusion Detection Systems in Practice" (DSN 2025).

A standardized cross-dataset NIDS evaluation pipeline, built with every
substrate it depends on: a packet model with pcap I/O, flow assembly
and feature export, Kitsune's AfterImage features, synthetic emulations
of the five evaluated datasets, numpy neural networks, and the four
evaluated IDSs (Kitsune, HELAD, a supervised DNN, and a Slips-style
behavioural IPS).

Quickstart::

    from repro import IDSAnalysisPipeline, render_table4

    pipeline = IDSAnalysisPipeline(seed=0, scale=0.3)
    pipeline.run_all(verbose=True)
    print(render_table4(pipeline))
"""

from repro.core import (
    EXPERIMENT_MATRIX,
    ExperimentConfig,
    ExperimentResult,
    IDSAnalysisPipeline,
    MetricReport,
    compute_metrics,
    render_shape_checks,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table4_sweep,
    run_experiment,
)
from repro.datasets import SyntheticDataset, generate_dataset
from repro.ids import DNNClassifierIDS, HELAD, Kitsune, SlipsIDS
from repro.runner import (
    DatasetCache,
    ExperimentEngine,
    SweepResult,
    sweep_matrix,
)
from repro.stream import StreamReport, stream_capture, stream_experiment
from repro.utils import SeededRNG

__version__ = "1.0.0"

__all__ = [
    "IDSAnalysisPipeline",
    "ExperimentConfig",
    "ExperimentResult",
    "EXPERIMENT_MATRIX",
    "run_experiment",
    "MetricReport",
    "compute_metrics",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table4_sweep",
    "render_shape_checks",
    "generate_dataset",
    "SyntheticDataset",
    "ExperimentEngine",
    "DatasetCache",
    "SweepResult",
    "sweep_matrix",
    "StreamReport",
    "stream_capture",
    "stream_experiment",
    "Kitsune",
    "HELAD",
    "DNNClassifierIDS",
    "SlipsIDS",
    "SeededRNG",
    "__version__",
]
