"""The paper's contribution: the standardized IDS analysis pipeline.

Section III (selection), Section IV (testing and evaluation
methodology) and Section V (results) map onto this subpackage:

* :mod:`repro.core.selection` — IDS/dataset selection criteria (Table I);
* :mod:`repro.core.metrics` — accuracy / precision / recall / F1;
* :mod:`repro.core.thresholds` — the standardized anomaly-threshold
  procedure (Section IV-A-4);
* :mod:`repro.core.preprocessing` — format adaptation, sampling and
  rebalancing (Section IV-A-1/2);
* :mod:`repro.core.experiment` — one IDS x dataset evaluation;
* :mod:`repro.core.pipeline` — the full Table IV run;
* :mod:`repro.core.report` — paper-style table rendering.
"""

from repro.core.metrics import MetricReport, compute_metrics, confusion_matrix
from repro.core.thresholds import (
    best_f1_threshold,
    fpr_budget_threshold,
    percentile_threshold,
    standard_threshold,
)
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    EXPERIMENT_MATRIX,
    run_experiment,
)
from repro.core.pipeline import IDSAnalysisPipeline, Table4Cell
from repro.core.families import (
    FamilyRecall,
    family_breakdown,
    volumetric_vs_content_recall,
)
from repro.core.export import results_to_dict, results_to_json, results_to_markdown
from repro.core.robustness import CellStability, seed_sweep, stability_report
from repro.core.report import (
    render_shape_checks,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table4_sweep,
)

__all__ = [
    "MetricReport",
    "compute_metrics",
    "confusion_matrix",
    "best_f1_threshold",
    "fpr_budget_threshold",
    "percentile_threshold",
    "standard_threshold",
    "ExperimentConfig",
    "ExperimentResult",
    "EXPERIMENT_MATRIX",
    "run_experiment",
    "IDSAnalysisPipeline",
    "Table4Cell",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table4_sweep",
    "render_shape_checks",
    "FamilyRecall",
    "family_breakdown",
    "volumetric_vs_content_recall",
    "results_to_dict",
    "results_to_json",
    "results_to_markdown",
    "CellStability",
    "seed_sweep",
    "stability_report",
]
