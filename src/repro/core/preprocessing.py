"""Dataset-to-IDS adaptation (paper Section IV-A-1/2 and Section I).

The paper's central practical finding is that getting a dataset *into*
an IDS is where evaluations go wrong: packet IDSs need pcap streams and
a benign training prefix; flow IDSs need feature matrices in their own
schema, zero-filled where the dataset doesn't provide a feature; large
captures must be flow-sampled and re-sorted by time. This module owns
all of that, so every experiment states its adaptation explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.features.encoding import FlowVectorEncoder
from repro.flows.key import flow_key_for_packet
from repro.flows.record import FlowRecord
from repro.flows.sampling import sort_by_timestamp
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG
from repro.utils.validation import check_fraction


# ---------------------------------------------------------------------------
# Packet-level preparation (Kitsune, HELAD)
# ---------------------------------------------------------------------------


@dataclass
class PacketExperimentData:
    """Adapted inputs for a packet-level IDS run."""

    train_packets: list[Packet]
    test_packets: list[Packet]
    y_true: np.ndarray
    notes: dict = field(default_factory=dict)


def rebalance_packets(
    packets: Sequence[Packet],
    target_prevalence: float | None,
    rng: SeededRNG,
    *,
    max_packets: int | None = None,
) -> list[Packet]:
    """Subsample whole flows of the majority class toward a target
    attack prevalence, then re-sort by timestamp.

    Mirrors the paper's random *flow* sampling: a kept flow keeps all
    its packets, so per-flow statistics survive. ``None`` keeps the
    natural composition.
    """
    packets = list(packets)
    if target_prevalence is not None:
        check_fraction("target_prevalence", target_prevalence)
        attack_keys: dict = {}
        benign_keys: dict = {}
        for packet in packets:
            key = flow_key_for_packet(packet)
            bucket = attack_keys if packet.label else benign_keys
            bucket.setdefault(key, 0)
            bucket[key] += 1
        n_attack = sum(attack_keys.values())
        n_benign = sum(benign_keys.values())
        if n_attack and n_benign:
            current = n_attack / (n_attack + n_benign)
            if current > target_prevalence:
                # Too much attack: keep a fraction of attack flows.
                keep_attack = (
                    target_prevalence * n_benign / (1 - target_prevalence)
                )
                kept = _keep_flows(attack_keys, keep_attack, rng)
                packets = [
                    p for p in packets
                    if not p.label or flow_key_for_packet(p) in kept
                ]
            elif current < target_prevalence:
                keep_benign = n_attack * (1 - target_prevalence) / target_prevalence
                kept = _keep_flows(benign_keys, keep_benign, rng)
                packets = [
                    p for p in packets
                    if p.label or flow_key_for_packet(p) in kept
                ]
    if max_packets is not None and len(packets) > max_packets:
        # Uniform flow thinning until under budget, preserving both classes.
        fraction = max_packets / len(packets)
        from repro.flows.sampling import random_flow_sample

        packets = random_flow_sample(packets, fraction, rng.child("thin"))
    return sort_by_timestamp(packets)


def _keep_flows(flow_sizes: dict, budget_packets: float, rng: SeededRNG) -> set:
    """Randomly keep flows until ~budget_packets packets are covered."""
    keys = list(flow_sizes)
    order = rng.permutation(len(keys))
    kept: set = set()
    covered = 0.0
    for i in order:
        key = keys[int(i)]
        kept.add(key)
        covered += flow_sizes[key]
        if covered >= budget_packets:
            break
    return kept


def prepare_packet_experiment(
    dataset: SyntheticDataset,
    rng: SeededRNG,
    *,
    train_fraction: float = 0.15,
    prefer_benign_prefix: bool = True,
    test_prevalence: float | None = None,
    max_test_packets: int | None = 20_000,
    max_train_packets: int | None = 15_000,
) -> PacketExperimentData:
    """Split and adapt a dataset for an autoencoder-family packet IDS.

    Training uses the leading benign run when one exists (the paper
    trains "on initial benign traffic in the dataset"); otherwise the
    first ``train_fraction`` of packets *as-is*, attacks included — the
    degraded baseline the paper warns about (Section I).
    """
    check_fraction("train_fraction", train_fraction)
    prefix = dataset.benign_prefix() if prefer_benign_prefix else []
    min_prefix = int(len(dataset.packets) * 0.05)
    if len(prefix) > min_prefix:
        train = prefix
        trained_on = "benign-prefix"
    else:
        cut = int(len(dataset.packets) * train_fraction)
        train = dataset.packets[:cut]
        trained_on = "time-prefix"
    test = dataset.packets[len(train):]
    if max_train_packets is not None and len(train) > max_train_packets:
        train = train[-max_train_packets:]
    test = rebalance_packets(
        test, test_prevalence, rng.child("rebalance"), max_packets=max_test_packets
    )
    y_true = np.array([p.label for p in test], dtype=int)
    notes = {
        "trained_on": trained_on,
        "train_packets": len(train),
        "test_packets": len(test),
        "test_prevalence": float(y_true.mean()) if y_true.size else 0.0,
    }
    return PacketExperimentData(train, test, y_true, notes)


# ---------------------------------------------------------------------------
# Flow-level preparation (DNN, Slips, classical baselines)
# ---------------------------------------------------------------------------


@dataclass
class FlowExperimentData:
    """Adapted inputs for a flow-level IDS run."""

    train_flows: list[FlowRecord]
    train_features: np.ndarray
    train_labels: np.ndarray
    test_flows: list[FlowRecord]
    test_features: np.ndarray
    y_true: np.ndarray
    encoder: FlowVectorEncoder
    notes: dict = field(default_factory=dict)


def flow_feature_dicts(flows: Sequence[FlowRecord], schema: str) -> list[dict]:
    """Export per-flow feature dicts in the requested schema family."""
    if schema == "cicflow":
        from repro.flows.cicflow import cicflow_features

        return [cicflow_features(f) for f in flows]
    if schema == "netflow":
        from repro.flows.netflow import netflow_features

        return [netflow_features(f) for f in flows]
    raise ValueError(f"unknown flow schema {schema!r}")


def rebalance_flows(
    flows: Sequence[FlowRecord],
    target_prevalence: float | None,
    rng: SeededRNG,
    *,
    max_flows: int | None = None,
) -> list[FlowRecord]:
    """Subsample the majority class toward a target attack prevalence."""
    flows = list(flows)
    if target_prevalence is not None:
        check_fraction("target_prevalence", target_prevalence)
        attack = [f for f in flows if f.label]
        benign = [f for f in flows if not f.label]
        if attack and benign:
            current = len(attack) / len(flows)
            if current > target_prevalence:
                keep = int(
                    round(target_prevalence * len(benign) / (1 - target_prevalence))
                )
                keep = max(keep, 1)
                idx = rng.permutation(len(attack))[:keep]
                attack = [attack[int(i)] for i in idx]
            elif current < target_prevalence:
                keep = int(
                    round(len(attack) * (1 - target_prevalence) / target_prevalence)
                )
                keep = max(keep, 1)
                idx = rng.permutation(len(benign))[:keep]
                benign = [benign[int(i)] for i in idx]
            flows = attack + benign
    if max_flows is not None and len(flows) > max_flows:
        idx = rng.permutation(len(flows))[:max_flows]
        flows = [flows[int(i)] for i in idx]
    flows.sort(key=lambda f: (f.start_time, f.end_time))
    return flows


def prepare_flow_experiment(
    dataset: SyntheticDataset,
    rng: SeededRNG,
    *,
    schema: str = "netflow",
    feature_names: Sequence[str] | None = None,
    train_dataset: SyntheticDataset | None = None,
    train_fraction: float = 0.6,
    train_prevalence: float | None = None,
    test_prevalence: float | None = None,
    max_flows: int | None = 20_000,
) -> FlowExperimentData:
    """Assemble, encode and split flows for a flow-level IDS.

    If ``train_dataset`` is given, training flows come from it (the
    out-of-the-box cross-corpus regime, e.g. the DNN arriving
    pre-trained on its KDD-like corpus); otherwise the dataset is split
    chronologically at ``train_fraction``.

    Feature encoding uses the *dataset's* provided feature list as the
    availability mask, so schema mismatch shows up as zero-filled
    columns — the paper's preprocessing-impact mechanism.
    """
    if feature_names is None:
        from repro.flows.cicflow import CICFLOW_FEATURE_NAMES
        from repro.flows.netflow import NETFLOW_FEATURE_NAMES

        feature_names = (
            CICFLOW_FEATURE_NAMES if schema == "cicflow" else NETFLOW_FEATURE_NAMES
        )

    test_source = dataset.flows()
    if train_dataset is not None:
        train_flows = train_dataset.flows()
        train_available = train_dataset.provided_flow_features or feature_names
    else:
        cut_time = dataset.packets[0].timestamp + train_fraction * dataset.duration
        train_flows = [f for f in test_source if f.end_time <= cut_time]
        test_source = [f for f in test_source if f.end_time > cut_time]
        train_available = dataset.provided_flow_features or feature_names

    train_flows = rebalance_flows(
        train_flows, train_prevalence, rng.child("train"), max_flows=max_flows
    )
    test_flows = rebalance_flows(
        test_source, test_prevalence, rng.child("test"), max_flows=max_flows
    )

    train_encoder = FlowVectorEncoder(feature_names, available=train_available)
    test_encoder = FlowVectorEncoder(
        feature_names,
        available=dataset.provided_flow_features or feature_names,
    )
    train_features = train_encoder.encode(flow_feature_dicts(train_flows, schema))
    test_features = test_encoder.encode(flow_feature_dicts(test_flows, schema))
    train_labels = np.array([f.label for f in train_flows], dtype=int)
    y_true = np.array([f.label for f in test_flows], dtype=int)
    notes = {
        "schema": schema,
        "train_flows": len(train_flows),
        "test_flows": len(test_flows),
        "train_prevalence": float(train_labels.mean()) if train_labels.size else 0.0,
        "test_prevalence": float(y_true.mean()) if y_true.size else 0.0,
        "missing_features": test_encoder.missing_features,
        "cross_corpus_training": train_dataset is not None,
    }
    return FlowExperimentData(
        train_flows, train_features, train_labels,
        test_flows, test_features, y_true, test_encoder, notes,
    )
