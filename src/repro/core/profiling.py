"""Stage-by-stage timing of the per-packet detection path.

The online packet path is a three-stage pipeline::

    capture bytes --ingest--> packets/columns --netstat--> features
                                                  --kitnet--> score

Each stage has a very different cost profile (codec, damped statistics,
ensemble of autoencoders), so a single end-to-end number hides where
the budget goes. :func:`profile_packet_path` times each stage over a
synthetic replay and reports per-packet microseconds, packets/second
and each stage's share — the workflow behind ``repro-cli profile``
(see ``docs/PERFORMANCE.md``). The ``ingest`` stage reads the replay
back from a capture file (written untimed) through the selected ingest
backend — per-packet :class:`~repro.net.pcap.PcapReader` decode for
``packet-objects``, the mmap'd vectorized column decode of
:mod:`repro.net.columnar` for ``columnar-mmap`` — and the ``netstat``
stage consumes whatever that backend produced, so the pair shows the
end-to-end capture-to-features cost of each path. The KitNET stage is split into the
sequential grace periods (``kitnet-train``), the batched training
engine replaying the same prefix (``kitnet-train-batched`` — mini-batch
SGD by default, or the bit-identical cross-group parallel engine when
``train_workers`` is set), the per-packet execute reference
(``kitnet``) and the packed batched engine re-scoring the same rows
(``kitnet-batch``), whose scores are parity-checked bit for bit while
they are timed.

The NetStat stage can be profiled under any feature engine; with
``compare_scalar=True`` (default) the scalar reference is timed too,
which is the quickest way to see the vectorized engine's speedup on a
given machine and traffic mix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.features.netstat import NetStat
from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock cost of one pipeline stage over the whole replay."""

    stage: str
    seconds: float
    packets: int

    @property
    def per_packet_us(self) -> float:
        return self.seconds / self.packets * 1e6 if self.packets else 0.0

    @property
    def packets_per_second(self) -> float:
        return self.packets / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class PacketPathProfile:
    """The full stage breakdown for one dataset replay.

    The KitNET phase is split three ways: ``kitnet-train`` covers the
    grace periods (inherently sequential online SGD), ``kitnet`` is the
    per-packet execute reference, and ``kitnet-batch`` re-scores the
    same execute rows through the packed batched engine — the ratio of
    the last two is the batched speedup, and their scores must agree
    bit for bit (``kitnet_batch_parity``).
    """

    dataset: str
    seed: int
    scale: float
    packets: int
    engine: str
    kernel: str
    stages: tuple[StageTiming, ...]
    #: Registered backend names actually driving the profiled stages
    #: (``repro.backends``): the resolved ingest backend behind the
    #: ``ingest`` stage, the feature-engine backend behind ``engine``
    #: and the ensemble backend behind ``kitnet-batch``.
    ingest_backend: str = "packet-objects"
    feature_backend: str = "vector-native"
    ensemble_backend: str = "batched-einsum"
    scalar_netstat_seconds: float | None = None
    batch_size: int = 256
    kitnet_batch_parity: bool | None = None
    #: Training-engine stage configuration: ``train_mode`` is
    #: ``"minibatch"`` (default; an intentionally different learning
    #: trajectory, so no parity claim) or ``"parallel-online"`` (when
    #: ``train_workers`` is set; bit-identical to ``kitnet-train``,
    #: asserted by ``kitnet_train_parity``).
    train_mode: str = "minibatch"
    train_batch: int = 32
    train_workers: int | None = None
    kitnet_train_parity: bool | None = None

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def _stage_seconds(self, name: str) -> float | None:
        for stage in self.stages:
            if stage.stage == name and stage.seconds > 0:
                return stage.seconds
        return None

    @property
    def netstat_speedup(self) -> float | None:
        """Scalar-reference / profiled-engine NetStat time ratio."""
        if self.scalar_netstat_seconds is None:
            return None
        seconds = self._stage_seconds("netstat")
        return None if seconds is None else self.scalar_netstat_seconds / seconds

    @property
    def kitnet_train_speedup(self) -> float | None:
        """Sequential grace-period / batched-training time ratio."""
        by_name = {stage.stage: stage for stage in self.stages}
        reference = by_name.get("kitnet-train")
        batched = by_name.get("kitnet-train-batched")
        if (
            reference is None or batched is None
            or batched.packets == 0 or batched.seconds <= 0
        ):
            return None
        return reference.seconds / batched.seconds

    @property
    def kitnet_batch_speedup(self) -> float | None:
        """Per-packet execute / batched execute time ratio."""
        by_name = {stage.stage: stage for stage in self.stages}
        reference = by_name.get("kitnet")
        batched = by_name.get("kitnet-batch")
        if (
            reference is None or batched is None
            or batched.packets == 0 or batched.seconds <= 0
        ):
            return None
        return reference.seconds / batched.seconds

    def render(self) -> str:
        total = self.total_seconds
        lines = [
            f"packet path profile: {self.dataset} seed={self.seed} "
            f"scale={self.scale} ({self.packets} packets, "
            f"engine={self.engine}/{self.kernel}, "
            f"backend={self.feature_backend}, "
            f"ingest={self.ingest_backend})",
            f"  {'stage':20s} {'seconds':>9s} {'us/pkt':>9s} "
            f"{'pkt/s':>12s} {'share':>7s}",
        ]
        for stage in self.stages:
            share = stage.seconds / total if total else 0.0
            lines.append(
                f"  {stage.stage:20s} {stage.seconds:9.3f} "
                f"{stage.per_packet_us:9.1f} "
                f"{stage.packets_per_second:12,.0f} {share:6.1%}"
            )
        lines.append(
            f"  {'total':20s} {total:9.3f} "
            f"{total / self.packets * 1e6 if self.packets else 0:9.1f} "
            f"{self.packets / total if total else 0:12,.0f} {1:6.1%}"
        )
        speedup = self.netstat_speedup
        if speedup is not None:
            lines.append(
                f"  netstat engine speedup vs scalar reference: "
                f"{speedup:.2f}x (scalar {self.scalar_netstat_seconds:.3f}s)"
            )
        train_speedup = self.kitnet_train_speedup
        if train_speedup is not None:
            if self.train_mode == "parallel-online":
                contract = (
                    "bit-identical" if self.kitnet_train_parity
                    else "PARITY BROKEN"
                )
                detail = f"workers={self.train_workers}, {contract}"
            else:
                detail = (
                    f"train_batch={self.train_batch}, "
                    "mini-batch trajectory"
                )
            lines.append(
                f"  kitnet batched training speedup vs sequential: "
                f"{train_speedup:.2f}x ({self.train_mode}, {detail})"
            )
        batch_speedup = self.kitnet_batch_speedup
        if batch_speedup is not None:
            parity = (
                "bit-identical" if self.kitnet_batch_parity
                else "PARITY BROKEN"
            )
            lines.append(
                f"  kitnet batched execute speedup vs per-packet: "
                f"{batch_speedup:.2f}x (batch={self.batch_size}, {parity})"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "seed": self.seed,
            "scale": self.scale,
            "packets": self.packets,
            "engine": self.engine,
            "kernel": self.kernel,
            "ingest_backend": self.ingest_backend,
            "feature_backend": self.feature_backend,
            "ensemble_backend": self.ensemble_backend,
            "total_seconds": self.total_seconds,
            "netstat_speedup": self.netstat_speedup,
            "scalar_netstat_seconds": self.scalar_netstat_seconds,
            "batch_size": self.batch_size,
            "kitnet_batch_speedup": self.kitnet_batch_speedup,
            "kitnet_batch_parity": self.kitnet_batch_parity,
            "train_mode": self.train_mode,
            "train_batch": self.train_batch,
            "train_workers": self.train_workers,
            "kitnet_train_speedup": self.kitnet_train_speedup,
            "kitnet_train_parity": self.kitnet_train_parity,
            "stages": [
                {
                    "stage": stage.stage,
                    "seconds": stage.seconds,
                    "per_packet_us": stage.per_packet_us,
                    "packets_per_second": stage.packets_per_second,
                }
                for stage in self.stages
            ],
        }


def kitnet_grace_split(count: int) -> tuple[int, int, int]:
    """Grace-period arithmetic for an execute-phase measurement over a
    ``count``-packet replay: train on the first half (fm/ad scaled to
    it, the experiment pipeline's per-cell arithmetic), execute the
    rest. Shared by the profile's ``kitnet-batch`` stage and
    ``benchmarks/bench_kitnet_batch.py`` so both measure the same
    phase. Returns ``(fm_grace, ad_grace, boundary)``; rows past
    ``boundary`` are execute-phase.
    """
    train_count = count // 2
    fm_grace = max(100, train_count // 10)
    ad_grace = max(100, train_count - fm_grace)
    return fm_grace, ad_grace, min(fm_grace + ad_grace, count)


def profile_packet_path(
    dataset: str = "Mirai",
    *,
    seed: int = 0,
    scale: float = 0.2,
    engine: str = "vector",
    ingest_backend: str | None = None,
    max_packets: int | None = None,
    compare_scalar: bool = True,
    batch_size: int = 256,
    train_batch: int = 32,
    train_workers: int | None = None,
    dataset_provider=None,
) -> PacketPathProfile:
    """Time ingest → netstat → kitnet-train → kitnet-train-batched →
    kitnet → kitnet-batch over a synthetic dataset replay.

    The replay is written to a scratch capture file (untimed prep,
    nanosecond magic so timestamps keep their resolution); the
    ``ingest`` stage then reads it back through ``ingest_backend``
    (``None`` keeps ``packet-objects``; ``"auto"`` resolves through the
    backend registry) and the ``netstat`` stage consumes exactly what
    ingest produced — packet objects or column batches.

    ``train_workers=None`` (default) profiles the mini-batch training
    engine with ``train_batch``-row flush groups; setting it profiles
    the cross-group parallel online engine instead and parity-checks
    its scores bit for bit against the sequential grace periods.
    """
    import tempfile
    from pathlib import Path

    from repro import backends
    from repro.net.pcap import read_pcap, write_pcap

    if dataset_provider is None:
        from repro.datasets import generate_dataset as dataset_provider
    data = dataset_provider(dataset, seed=seed, scale=scale)
    packets = list(data.packets)
    if max_packets is not None:
        packets = packets[:max_packets]
    if not packets:
        raise ValueError("profiling needs a non-empty packet stream")
    count = len(packets)
    if ingest_backend is None:
        resolved_ingest = "packet-objects"
    else:
        resolved_ingest = backends.resolve(
            backends.INGEST, ingest_backend
        ).name

    extractor = NetStat(engine=engine)
    kernel = (
        "objects" if engine == "scalar" else extractor._db.kernel_name
    )
    # Stages 1-2 run inside the scratch-capture scope: column batches
    # keep views into the mmap'd file, so it must outlive them.
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        capture = Path(tmp) / "replay.pcap"
        write_pcap(capture, packets, nanosecond=True)

        # Stage 1: ingest — capture bytes to the backend's native
        # feature input (packet objects, or mmap'd column batches).
        import numpy as np

        if resolved_ingest == "columnar-mmap":
            from repro.net.columnar import ColumnarPcapReader

            start = time.perf_counter()
            batches = list(ColumnarPcapReader(capture))
            ingest_seconds = time.perf_counter() - start

            # Stage 2: AfterImage features under the requested engine,
            # fed columns (no Packet objects are ever materialised).
            start = time.perf_counter()
            features = np.vstack(
                [extractor.extract_all(batch) for batch in batches]
            )
            netstat_seconds = time.perf_counter() - start
            del batches
            replay = read_pcap(capture) if compare_scalar else None
        else:
            start = time.perf_counter()
            replay = read_pcap(capture)
            ingest_seconds = time.perf_counter() - start

            # Stage 2: AfterImage features under the requested engine.
            start = time.perf_counter()
            features = extractor.extract_all(replay)
            netstat_seconds = time.perf_counter() - start

        scalar_seconds: float | None = None
        if compare_scalar and engine != "scalar":
            reference = NetStat(engine="scalar")
            start = time.perf_counter()
            reference.extract_all(replay)
            scalar_seconds = time.perf_counter() - start
        del replay

    # Stage 3/4/5: KitNET. The replay splits into a training prefix
    # (grace periods scaled to it, same arithmetic as the experiment
    # pipeline's Kitsune cells) and an execute remainder — the latter
    # timed twice: per-packet reference, then the batched engine.
    from repro.ids.kitsune.kitnet import KitNET

    fm_grace, ad_grace, boundary = kitnet_grace_split(count)
    detector = KitNET(
        extractor.feature_count,
        fm_grace=fm_grace,
        ad_grace=ad_grace,
        rng=SeededRNG(seed, "profile"),
    )
    train_rows = features[:boundary]
    start = time.perf_counter()
    train_reference_scores = np.array(
        [detector.process(row) for row in train_rows]
    )
    train_seconds = time.perf_counter() - start

    # Same training prefix through the batched engine on a twin
    # detector: mini-batch SGD by default (different trajectory, no
    # parity claim), or the cross-group parallel online engine when
    # workers are requested (bit-identical, parity-checked).
    train_mode = "parallel-online" if train_workers else "minibatch"
    twin_kwargs = (
        {"train_workers": train_workers}
        if train_workers
        else {"train_mode": "minibatch", "train_batch": train_batch}
    )
    twin = KitNET(
        extractor.feature_count,
        fm_grace=fm_grace,
        ad_grace=ad_grace,
        rng=SeededRNG(seed, "profile"),
        **twin_kwargs,
    )
    start = time.perf_counter()
    train_batched_scores = twin.process_batch(train_rows)
    train_batched_seconds = time.perf_counter() - start
    train_parity = (
        bool(np.array_equal(train_batched_scores, train_reference_scores))
        if train_mode == "parallel-online"
        else None
    )
    del twin

    execute_rows = features[boundary:]
    start = time.perf_counter()
    reference_scores = np.array(
        [detector.process(row) for row in execute_rows]
    )
    execute_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_chunks = [
        detector.execute_batch(execute_rows[i : i + batch_size])
        for i in range(0, len(execute_rows), batch_size)
    ]
    batch_seconds = time.perf_counter() - start
    if batched_chunks:
        batched_scores = np.concatenate(batched_chunks)
        batch_parity = bool(np.array_equal(batched_scores, reference_scores))
    else:
        batch_parity = None

    stages = (
        StageTiming("ingest", ingest_seconds, count),
        StageTiming("netstat", netstat_seconds, count),
        StageTiming("kitnet-train", train_seconds, boundary),
        StageTiming("kitnet-train-batched", train_batched_seconds, boundary),
        StageTiming("kitnet", execute_seconds, len(execute_rows)),
        StageTiming("kitnet-batch", batch_seconds, len(execute_rows)),
    )
    return PacketPathProfile(
        dataset=data.name,
        seed=seed,
        scale=scale,
        packets=count,
        engine=engine,
        kernel=kernel,
        stages=stages,
        ingest_backend=resolved_ingest,
        feature_backend=extractor.backend,
        ensemble_backend=detector.resolved_ensemble_backend,
        scalar_netstat_seconds=scalar_seconds,
        batch_size=batch_size,
        kitnet_batch_parity=batch_parity,
        train_mode=train_mode,
        train_batch=train_batch,
        train_workers=train_workers,
        kitnet_train_parity=train_parity,
    )
