"""IDS and dataset selection criteria (paper Section III).

The paper applies five criteria to academic IDSs (recency, code
availability, ML-orientation, publisher reliability, usability) and
five to non-academic ones (code availability, popularity, documentation,
ongoing support, usability). This module encodes the criteria as
predicates over :class:`repro.ids.registry.IDSRecord` metadata and
reproduces the Table I outcome: usability is where almost everything
dies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids.registry import INVESTIGATED_IDS, IDSRecord

#: The study window: papers must be at most this old (criterion A1).
RECENCY_WINDOW_YEARS = 5
#: The study's reference year for recency checks.
STUDY_YEAR = 2023

ACADEMIC_CRITERIA = (
    "recency",
    "code-availability",
    "ml-oriented",
    "reliability",
    "usability",
)
NON_ACADEMIC_CRITERIA = (
    "code-availability",
    "popularity",
    "documentation",
    "ongoing-support",
    "usability",
)


@dataclass(frozen=True)
class SelectionOutcome:
    """Per-system verdict with the first failed criterion."""

    record: IDSRecord
    selected: bool
    failed_criterion: str = ""
    detail: str = ""


def _usability_issue(record: IDSRecord) -> str:
    """The usability failure reason, or "" if the system ran."""
    return "" if record.used else record.issue


def evaluate_record(record: IDSRecord) -> SelectionOutcome:
    """Apply the appropriate criteria set to one investigated system."""
    if record.academic:
        if STUDY_YEAR - record.year > RECENCY_WINDOW_YEARS:
            return SelectionOutcome(record, False, "recency",
                                    f"published {record.year}")
        if "code not provided" in record.issue.lower():
            return SelectionOutcome(record, False, "code-availability",
                                    record.issue)
        if "use of ml" in record.issue.lower():
            return SelectionOutcome(record, False, "ml-oriented", record.issue)
        if "not propose a directly usable" in record.issue.lower():
            return SelectionOutcome(record, False, "usability", record.issue)
        issue = _usability_issue(record)
        if issue:
            return SelectionOutcome(record, False, "usability", issue)
        return SelectionOutcome(record, True)
    # Non-academic path.
    if "use of ml" in record.issue.lower():
        return SelectionOutcome(record, False, "documentation", record.issue)
    issue = _usability_issue(record)
    if issue:
        return SelectionOutcome(record, False, "usability", issue)
    return SelectionOutcome(record, True)


def run_selection() -> list[SelectionOutcome]:
    """Evaluate every investigated system; order follows Table I."""
    return [evaluate_record(record) for record in INVESTIGATED_IDS]


def selected_names() -> list[str]:
    """The systems that survive selection (the Table IV row set)."""
    return [o.record.name for o in run_selection() if o.selected]
