"""Multi-seed robustness analysis for Table IV cells.

The paper reports single-run numbers; a reproduction should know how
stable its own numbers are. :func:`seed_sweep` re-runs one cell across
seeds and reports mean/std per metric, and :func:`stability_report`
does it for a whole IDS row.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.experiment import EXPERIMENT_MATRIX, run_experiment


@dataclass(frozen=True)
class MetricSummary:
    """Mean and standard deviation of one metric across seeds."""

    mean: float
    std: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f}±{self.std:.4f}"


@dataclass
class CellStability:
    """Per-metric summaries for one IDS x dataset cell."""

    ids_name: str
    dataset_name: str
    seeds: tuple[int, ...]
    accuracy: MetricSummary
    precision: MetricSummary
    recall: MetricSummary
    f1: MetricSummary

    @property
    def f1_coefficient_of_variation(self) -> float:
        if self.f1.mean == 0:
            return 0.0
        return self.f1.std / self.f1.mean


def seed_sweep(
    ids_name: str,
    dataset_name: str,
    *,
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: float = 0.15,
) -> CellStability:
    """Run one Table IV cell across ``seeds`` and summarise."""
    if not seeds:
        raise ValueError("at least one seed is required")
    base = EXPERIMENT_MATRIX[(ids_name, dataset_name)]
    metrics = []
    for seed in seeds:
        config = replace(base, seed=seed, scale=scale)
        metrics.append(run_experiment(config).metrics)

    def summarise(attr: str) -> MetricSummary:
        values = np.array([getattr(m, attr) for m in metrics])
        return MetricSummary(float(values.mean()), float(values.std()))

    return CellStability(
        ids_name=ids_name,
        dataset_name=dataset_name,
        seeds=tuple(seeds),
        accuracy=summarise("accuracy"),
        precision=summarise("precision"),
        recall=summarise("recall"),
        f1=summarise("f1"),
    )


def stability_report(
    ids_name: str,
    *,
    dataset_names: tuple[str, ...] = (
        "UNSW-NB15", "BoT-IoT", "CICIDS2017", "Stratosphere", "Mirai"
    ),
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: float = 0.15,
) -> list[CellStability]:
    """Seed-sweep a full IDS row."""
    return [
        seed_sweep(ids_name, dataset, seeds=seeds, scale=scale)
        for dataset in dataset_names
    ]
