"""Multi-seed robustness analysis for Table IV cells.

The paper reports single-run numbers; a reproduction should know how
stable its own numbers are. :func:`seed_sweep` re-runs one cell across
seeds and reports mean/std per metric, and :func:`stability_report`
does it for a whole IDS row.

Both route through :mod:`repro.runner.sweep` — i.e. through
``ExperimentEngine.run_configs`` — so repeated sweeps reuse the
engine's dataset and result caches, and ``engine`` can be injected to
share caches or add ``--jobs`` parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.engine import ExperimentEngine
    from repro.runner.sweep import CellSweep


@dataclass(frozen=True)
class MetricSummary:
    """Mean and standard deviation of one metric across seeds."""

    mean: float
    std: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f}±{self.std:.4f}"


@dataclass
class CellStability:
    """Per-metric summaries for one IDS x dataset cell."""

    ids_name: str
    dataset_name: str
    seeds: tuple[int, ...]
    accuracy: MetricSummary
    precision: MetricSummary
    recall: MetricSummary
    f1: MetricSummary

    @property
    def f1_coefficient_of_variation(self) -> float:
        if self.f1.mean == 0:
            return 0.0
        return self.f1.std / self.f1.mean


def _stability_from_cell(cell: "CellSweep") -> CellStability:
    def summarise(metric: str) -> MetricSummary:
        distribution = cell.distribution(metric)
        return MetricSummary(distribution.mean, distribution.std)

    return CellStability(
        ids_name=cell.ids_name,
        dataset_name=cell.dataset_name,
        seeds=cell.seeds,
        accuracy=summarise("accuracy"),
        precision=summarise("precision"),
        recall=summarise("recall"),
        f1=summarise("f1"),
    )


def seed_sweep(
    ids_name: str,
    dataset_name: str,
    *,
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: float = 0.15,
    engine: "ExperimentEngine | None" = None,
) -> CellStability:
    """Run one Table IV cell across ``seeds`` and summarise."""
    from repro.runner.sweep import sweep_cell

    if not seeds:
        raise ValueError("at least one seed is required")
    return _stability_from_cell(
        sweep_cell(ids_name, dataset_name, seeds=seeds, scale=scale,
                   engine=engine)
    )


def stability_report(
    ids_name: str,
    *,
    dataset_names: tuple[str, ...] = (
        "UNSW-NB15", "BoT-IoT", "CICIDS2017", "Stratosphere", "Mirai"
    ),
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: float = 0.15,
    engine: "ExperimentEngine | None" = None,
) -> list[CellStability]:
    """Seed-sweep a full IDS row in one engine run, so every cell of
    the row shares the sweep's warmed dataset cache."""
    from repro.runner.sweep import sweep_matrix

    if not seeds:
        raise ValueError("at least one seed is required")
    sweep = sweep_matrix(
        (ids_name,), dataset_names, seeds=seeds, scale=scale, engine=engine
    )
    return [
        _stability_from_cell(sweep.cell(ids_name, dataset))
        for dataset in dataset_names
    ]
