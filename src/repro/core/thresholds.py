"""Standardized anomaly-threshold selection (paper Section IV-A-4).

The paper: "identifying the threshold value that maximised the
detection rate of anomalous packets while maintaining a tolerable level
of false positives for the given results." That is a label-aware search
applied uniformly to every IDS's continuous score output; this module
implements it (:func:`fpr_budget_threshold`, the default) plus the two
obvious alternatives used in the threshold ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction


def _candidate_thresholds(scores: np.ndarray, max_candidates: int = 512) -> np.ndarray:
    """Distinct candidate cut points, subsampled for large score sets."""
    unique = np.unique(np.asarray(scores, dtype=np.float64))
    if unique.size == 0:
        return np.array([0.0])
    if unique.size > max_candidates:
        quantiles = np.linspace(0.0, 1.0, max_candidates)
        unique = np.unique(np.quantile(unique, quantiles))
    # Midpoints between consecutive values decide ties cleanly; include
    # a point below the minimum (flag everything) and above the max.
    mids = (unique[:-1] + unique[1:]) / 2.0 if unique.size > 1 else np.array([])
    lo = unique[0] - 1.0
    hi = unique[-1] + 1.0
    return np.concatenate(([lo], mids, [hi]))


def fpr_budget_threshold(
    y_true: np.ndarray, scores: np.ndarray, *, max_fpr: float = 0.05
) -> float:
    """Maximise recall subject to a false-positive-rate budget.

    The paper's standardized procedure. If no threshold satisfies the
    budget (scores inseparable), returns the threshold with the lowest
    FPR, breaking ties toward higher recall — "tolerable" degrades
    gracefully rather than refusing to answer.
    """
    check_fraction("max_fpr", max_fpr)
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    positives = int(y_true.sum())
    negatives = y_true.size - positives
    best_in_budget: tuple[float, float] | None = None  # (recall, -threshold)
    best_threshold = float(scores.max() + 1.0) if scores.size else 0.0
    fallback: tuple[float, float] | None = None  # (fpr, -recall)
    fallback_threshold = best_threshold
    for threshold in _candidate_thresholds(scores):
        pred = scores >= threshold
        tp = int(np.sum(pred & y_true))
        fp = int(np.sum(pred & ~y_true))
        recall = tp / positives if positives else 0.0
        fpr = fp / negatives if negatives else 0.0
        if fpr <= max_fpr:
            key = (recall, -threshold)
            if best_in_budget is None or key > best_in_budget:
                best_in_budget = key
                best_threshold = float(threshold)
        key2 = (fpr, -recall)
        if fallback is None or key2 < fallback:
            fallback = key2
            fallback_threshold = float(threshold)
    if best_in_budget is not None:
        return best_threshold
    return fallback_threshold


def detection_priority_threshold(
    y_true: np.ndarray, scores: np.ndarray, *, lambda_fpr: float = 0.5
) -> float:
    """Maximise ``recall - lambda_fpr * FPR``.

    The reading of Section IV-A-4 that matches the paper's Kitsune rows:
    detection rate is the primary objective and false positives are a
    soft penalty, so on datasets where scores do not separate the
    classes the procedure ends up flagging nearly everything (precision
    collapses to prevalence — exactly the published CICIDS2017 row).
    """
    if lambda_fpr < 0:
        raise ValueError(f"lambda_fpr must be >= 0, got {lambda_fpr}")
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    positives = int(y_true.sum())
    negatives = y_true.size - positives
    best = (-np.inf, 0.0)
    for threshold in _candidate_thresholds(scores):
        pred = scores >= threshold
        tp = int(np.sum(pred & y_true))
        fp = int(np.sum(pred & ~y_true))
        recall = tp / positives if positives else 0.0
        fpr = fp / negatives if negatives else 0.0
        objective = recall - lambda_fpr * fpr
        if objective > best[0]:
            best = (objective, float(threshold))
    return best[1]


def best_f1_threshold(y_true: np.ndarray, scores: np.ndarray) -> float:
    """The threshold maximising F1 — the oracle alternative."""
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    best = (-1.0, 0.0)
    for threshold in _candidate_thresholds(scores):
        pred = scores >= threshold
        tp = int(np.sum(pred & y_true))
        fp = int(np.sum(pred & ~y_true))
        fn = int(np.sum(~pred & y_true))
        denom = 2 * tp + fp + fn
        f1 = 2 * tp / denom if denom else 0.0
        if f1 > best[0]:
            best = (f1, float(threshold))
    return best[1]


def percentile_threshold(
    train_scores: np.ndarray, *, percentile: float = 99.0
) -> float:
    """Label-free alternative: a high percentile of training scores."""
    if not 0 <= percentile <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    train_scores = np.asarray(train_scores, dtype=np.float64)
    if train_scores.size == 0:
        return 0.0
    return float(np.percentile(train_scores, percentile))


def standard_threshold(
    y_true: np.ndarray,
    scores: np.ndarray,
    *,
    strategy: str = "fpr-budget",
    max_fpr: float = 0.05,
    lambda_fpr: float = 0.5,
    fixed_value: float = 0.5,
    train_scores: np.ndarray | None = None,
    percentile: float = 99.0,
) -> float:
    """Dispatch to the configured threshold strategy."""
    if strategy == "fpr-budget":
        return fpr_budget_threshold(y_true, scores, max_fpr=max_fpr)
    if strategy == "detection-priority":
        return detection_priority_threshold(y_true, scores, lambda_fpr=lambda_fpr)
    if strategy == "best-f1":
        return best_f1_threshold(y_true, scores)
    if strategy == "fixed":
        # The IDS's native decision boundary (e.g. sigmoid 0.5, Slips'
        # own alert threshold) — no label-aware search at all.
        return fixed_value
    if strategy == "percentile":
        if train_scores is None:
            raise ValueError("percentile strategy needs train_scores")
        return percentile_threshold(train_scores, percentile=percentile)
    raise ValueError(f"unknown threshold strategy {strategy!r}")
