"""Per-attack-family detection analysis.

The paper's discussion repeatedly attributes Table IV's variance to
attack-type composition ("the evaluation ... may also be affected by
the variety of attack types present in the dataset", Section VI-A-2).
This module makes that claim measurable: given an
:class:`repro.core.experiment.ExperimentResult`, it breaks recall down
by attack family, separating volumetric families (floods, scans) from
content-style ones (exploits, web attacks) — the split that explains
the per-packet anomaly IDSs' enterprise-dataset collapse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import ExperimentResult

#: Families whose signal is volume/timing (anomaly-IDS-visible).
VOLUMETRIC_FAMILIES = frozenset({
    "dos-syn-flood", "dos-http-flood", "dos-slowloris",
    "ddos-udp-flood", "ddos-tcp-flood",
    "mirai-scan", "mirai-flood", "reconnaissance",
})

#: Families whose signal is payload/content (header-plausible).
CONTENT_FAMILIES = frozenset({
    "fuzzers", "exploits", "generic", "backdoor", "shellcode",
    "web-attack", "bruteforce-ssh", "bruteforce-ftp",
    "data-exfiltration", "botnet-c2", "mirai-infection",
})


@dataclass(frozen=True)
class FamilyRecall:
    """Recall of one attack family within one experiment cell."""

    family: str
    detected: int
    total: int

    @property
    def recall(self) -> float:
        return self.detected / self.total if self.total else 0.0

    @property
    def kind(self) -> str:
        if self.family in VOLUMETRIC_FAMILIES:
            return "volumetric"
        if self.family in CONTENT_FAMILIES:
            return "content"
        return "other"


def family_breakdown(result: ExperimentResult) -> list[FamilyRecall]:
    """Per-family recall for one completed experiment cell.

    Requires ``result.attack_types`` (populated by
    :func:`repro.core.experiment.run_experiment`).
    """
    if len(result.attack_types) != len(result.y_true):
        raise ValueError(
            "result carries no aligned attack_types; re-run the experiment "
            "with a current repro version"
        )
    predictions = result.scores >= result.threshold
    counts: dict[str, list[int]] = {}
    for family, is_attack, predicted in zip(
        result.attack_types, result.y_true, predictions
    ):
        if not is_attack or not family:
            continue
        detected, total = counts.setdefault(family, [0, 0])
        counts[family][1] = total + 1
        if predicted:
            counts[family][0] = detected + 1
    return sorted(
        (
            FamilyRecall(family=family, detected=pair[0], total=pair[1])
            for family, pair in counts.items()
        ),
        key=lambda fr: -fr.total,
    )


def volumetric_vs_content_recall(
    result: ExperimentResult,
) -> tuple[float, float]:
    """Aggregate recall over (volumetric, content) families.

    Families classified "other" are excluded from both aggregates.
    Returns 0.0 for an empty side.
    """
    breakdown = family_breakdown(result)
    def aggregate(kind: str) -> float:
        detected = sum(fr.detected for fr in breakdown if fr.kind == kind)
        total = sum(fr.total for fr in breakdown if fr.kind == kind)
        return detected / total if total else 0.0

    return aggregate("volumetric"), aggregate("content")
