"""Evaluation metrics (paper Section IV-B).

The paper reports accuracy, precision, recall and F1. Conventions for
degenerate cases follow the paper's own Table IV: zero detections give
precision = recall = F1 = 0.0000 (not NaN).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[int, int, int, int]:
    """Return (tp, fp, tn, fn) for binary labels."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return tp, fp, tn, fn


@dataclass(frozen=True)
class MetricReport:
    """One Table IV cell: the four metrics plus the raw confusion counts."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    @property
    def support(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def positives(self) -> int:
        return self.tp + self.fn

    @property
    def prevalence(self) -> float:
        return self.positives / self.support if self.support else 0.0

    @property
    def false_positive_rate(self) -> float:
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    def row(self, digits: int = 4) -> tuple[str, str, str, str]:
        """The four formatted metric strings, Table IV order."""
        return (
            f"{self.accuracy:.{digits}f}",
            f"{self.precision:.{digits}f}",
            f"{self.recall:.{digits}f}",
            f"{self.f1:.{digits}f}",
        )


def metrics_from_counts(tp: int, fp: int, tn: int, fn: int) -> MetricReport:
    """The four metrics from raw confusion counts, with the paper's
    zero-division-to-zero conventions — the single place those rules
    live (the batch pipeline and the streaming windows both use it)."""
    total = tp + fp + tn + fn
    accuracy = (tp + tn) / total if total else 0.0
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return MetricReport(
        accuracy=accuracy, precision=precision, recall=recall, f1=f1,
        tp=tp, fp=fp, tn=tn, fn=fn,
    )


def compute_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> MetricReport:
    """Accuracy/precision/recall/F1 with zero-division-to-zero rules."""
    return metrics_from_counts(*confusion_matrix(y_true, y_pred))


def average_metrics(reports: list[MetricReport]) -> MetricReport:
    """Unweighted per-dataset average — the paper's "Average:" rows."""
    if not reports:
        raise ValueError("cannot average zero reports")
    return MetricReport(
        accuracy=float(np.mean([r.accuracy for r in reports])),
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        tp=sum(r.tp for r in reports),
        fp=sum(r.fp for r in reports),
        tn=sum(r.tn for r in reports),
        fn=sum(r.fn for r in reports),
    )
