"""The full IDS analysis pipeline (the paper's contribution).

Runs selection (Table I), dataset inventory (Tables II/III), and the
20-cell evaluation matrix (Table IV), and checks the paper's headline
qualitative findings against the reproduced numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.experiment import (
    DATASET_ORDER,
    EXPERIMENT_MATRIX,
    ExperimentConfig,
    ExperimentResult,
)
from repro.core.metrics import MetricReport, average_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.engine import ExperimentEngine
    from repro.runner.telemetry import RunTelemetry


@dataclass
class Table4Cell:
    """One rendered cell of Table IV."""

    ids_name: str
    dataset_name: str
    metrics: MetricReport
    notes: dict = field(default_factory=dict)


@dataclass
class ShapeCheck:
    """One of the paper's qualitative findings, verified numerically."""

    claim: str
    passed: bool
    detail: str


class IDSAnalysisPipeline:
    """Coordinates the full Table IV reproduction.

    Parameters
    ----------
    seed:
        Master seed; every cell derives its own stream from it.
    scale:
        Dataset generation scale (1.0 = benchmark size; tests use less).
    ids_names / dataset_names:
        Optional restriction of the matrix (e.g. one IDS row).
    jobs / cache_dir:
        Forwarded to the :class:`~repro.runner.engine.ExperimentEngine`
        that executes the matrix: worker-process count and on-disk cache
        root (see docs/RUNNER.md). Ignored when ``engine`` is given.
    engine:
        Inject a pre-configured engine (shared caches, custom retries).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        scale: float = 0.5,
        ids_names: tuple[str, ...] = ("Kitsune", "HELAD", "DNN", "Slips"),
        dataset_names: tuple[str, ...] = DATASET_ORDER,
        jobs: int = 1,
        cache_dir=None,
        engine: "ExperimentEngine | None" = None,
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.ids_names = tuple(ids_names)
        self.dataset_names = tuple(dataset_names)
        self.results: dict[tuple[str, str], ExperimentResult] = {}
        if engine is None:
            from repro.runner.engine import ExperimentEngine

            engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir)
        self.engine = engine

    def config_for(self, ids_name: str, dataset_name: str) -> ExperimentConfig:
        """The matrix config for one cell, re-seeded and re-scaled."""
        base = EXPERIMENT_MATRIX[(ids_name, dataset_name)]
        from dataclasses import replace

        return replace(base, seed=self.seed, scale=self.scale)

    @property
    def telemetry(self) -> "RunTelemetry | None":
        """Per-cell execution telemetry of the most recent engine run."""
        return self.engine.last_telemetry

    def run_cell(self, ids_name: str, dataset_name: str) -> ExperimentResult:
        from repro.runner.scheduling import plan_configs

        results = self.engine.run(
            plan_configs([self.config_for(ids_name, dataset_name)])
        )
        result = results[(ids_name, dataset_name)]
        self.results[(ids_name, dataset_name)] = result
        return result

    def run_all(self, *, verbose: bool = False) -> dict[tuple[str, str], ExperimentResult]:
        from repro.runner.scheduling import plan_cells

        cells = plan_cells(
            self.ids_names, self.dataset_names,
            seed=self.seed, scale=self.scale,
        )
        self.results.update(self.engine.run(cells))
        if verbose:
            for ids_name in self.ids_names:
                for dataset_name in self.dataset_names:
                    result = self.results[(ids_name, dataset_name)]
                    m = result.metrics
                    print(
                        f"{ids_name:8s} {dataset_name:13s} "
                        f"acc={m.accuracy:.4f} prec={m.precision:.4f} "
                        f"rec={m.recall:.4f} f1={m.f1:.4f} "
                        f"({result.runtime_seconds:.1f}s)"
                    )
        return self.results

    # -- aggregation -----------------------------------------------------
    def row(self, ids_name: str) -> list[Table4Cell]:
        cells = []
        for dataset_name in self.dataset_names:
            result = self.results[(ids_name, dataset_name)]
            cells.append(
                Table4Cell(ids_name, dataset_name, result.metrics, result.notes)
            )
        return cells

    def average_for(self, ids_name: str) -> MetricReport:
        return average_metrics([c.metrics for c in self.row(ids_name)])

    def f1_of(self, ids_name: str, dataset_name: str) -> float:
        return self.results[(ids_name, dataset_name)].metrics.f1

    # -- the paper's qualitative findings ---------------------------------
    def shape_checks(self) -> list[ShapeCheck]:
        """Verify the headline orderings of Table IV (see DESIGN.md §4)."""
        checks: list[ShapeCheck] = []
        averages = {name: self.average_for(name).f1 for name in self.ids_names}

        best_avg = max(averages, key=lambda k: averages[k])
        checks.append(
            ShapeCheck(
                claim="DNN attains the highest average F1 of the four IDSs",
                passed=best_avg == "DNN",
                detail=", ".join(f"{k}={v:.4f}" for k, v in averages.items()),
            )
        )

        strat_f1 = {
            name: self.f1_of(name, "Stratosphere") for name in self.ids_names
        }
        best_strat = max(strat_f1, key=lambda k: strat_f1[k])
        checks.append(
            ShapeCheck(
                claim="HELAD attains the highest F1 on Stratosphere",
                passed=best_strat == "HELAD",
                detail=", ".join(f"{k}={v:.4f}" for k, v in strat_f1.items()),
            )
        )

        dnn_row = {d: self.f1_of("DNN", d) for d in self.dataset_names}
        checks.append(
            ShapeCheck(
                claim="Stratosphere is the DNN's worst dataset (all-positive "
                      "collapse: recall ~1, accuracy ~prevalence)",
                passed=min(dnn_row, key=lambda k: dnn_row[k]) == "Stratosphere"
                and self.results[("DNN", "Stratosphere")].metrics.recall > 0.95,
                detail=", ".join(f"{k}={v:.4f}" for k, v in dnn_row.items()),
            )
        )

        kitsune_iot = min(
            self.f1_of("Kitsune", d) for d in ("BoT-IoT", "Stratosphere", "Mirai")
        )
        kitsune_ent = max(
            self.f1_of("Kitsune", d) for d in ("UNSW-NB15", "CICIDS2017")
        )
        checks.append(
            ShapeCheck(
                claim="Kitsune: strong on every IoT dataset, weak on both "
                      "enterprise datasets",
                passed=kitsune_iot > 0.6 and kitsune_ent < 0.3,
                detail=f"min IoT F1 {kitsune_iot:.4f}, max enterprise F1 "
                       f"{kitsune_ent:.4f}",
            )
        )

        slips_avg = averages.get("Slips", 0.0)
        others = [v for k, v in averages.items() if k != "Slips"]
        slips_best_dataset = max(
            self.dataset_names, key=lambda d: self.f1_of("Slips", d)
        )
        checks.append(
            ShapeCheck(
                claim="Slips has the lowest average F1 and its best dataset "
                      "is Stratosphere",
                passed=bool(others)
                and slips_avg < min(others)
                and slips_best_dataset == "Stratosphere",
                detail=f"Slips avg {slips_avg:.4f}; best dataset "
                       f"{slips_best_dataset}",
            )
        )

        helad_cic = self.results[("HELAD", "CICIDS2017")].metrics
        checks.append(
            ShapeCheck(
                claim="HELAD on CICIDS2017 trades recall for precision "
                      "(precision > recall)",
                passed=helad_cic.precision > helad_cic.recall,
                detail=f"precision {helad_cic.precision:.4f}, recall "
                       f"{helad_cic.recall:.4f}",
            )
        )
        return checks
