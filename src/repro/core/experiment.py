"""One IDS x dataset evaluation, and the paper's full experiment matrix.

Every cell of Table IV is described by an :class:`ExperimentConfig`
capturing the adaptation decisions the paper made for that pairing
(training source, sample composition, packet budgets). The matrix
records them explicitly — the paper's point is precisely that these
decisions are unavoidable and consequential, so the reproduction makes
them first-class, inspectable data.

Sample compositions follow the per-cell prevalences implied by the
paper's published metrics (e.g. Slips' UNSW-NB15 accuracy of 0.8735
with zero detections implies an ~13% attack sample; the DNN's
accuracy == precision with recall 1.0 implies attack-dominated samples
for UNSW/BoT/CICIDS). See EXPERIMENTS.md for the full derivations.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.metrics import MetricReport, compute_metrics
from repro.core.preprocessing import (
    prepare_flow_experiment,
    prepare_packet_experiment,
)
from repro.core.thresholds import standard_threshold
from repro.datasets import generate_dataset
from repro.ids.base import InputKind
from repro.ids.registry import evaluated_ids_factories
from repro.utils.rng import SeededRNG

PACKET_IDS_NAMES = ("Kitsune", "HELAD")
FLOW_IDS_NAMES = ("DNN", "Slips")
DATASET_ORDER = ("UNSW-NB15", "BoT-IoT", "CICIDS2017", "Stratosphere", "Mirai")


#: The default experiment kind: the paper's Table IV cell evaluation.
TABLE4_KIND = "table4"


@dataclass
class ExperimentConfig:
    """Adaptation and evaluation settings for one Table IV cell.

    ``experiment`` selects the *kind* of experiment this config
    describes. The default, :data:`TABLE4_KIND`, is the paper's IDS x
    dataset cell; other kinds (registered via
    :func:`register_experiment_kind` or named by a ``"module:function"``
    dotted path) let ablation sweeps run through the same execution
    engine — with the same caching and determinism contract. Kind
    parameters travel in ``experiment_params`` and are part of the
    result-cache key.
    """

    ids_name: str
    dataset_name: str
    seed: int = 0
    scale: float = 0.5
    # Threshold standardisation (Section IV-A-4).
    threshold_strategy: str = "fpr-budget"
    max_fpr: float = 0.05
    lambda_fpr: float = 0.5
    fixed_threshold: float = 0.5
    # Packet-level adaptation.
    test_prevalence: float | None = None
    train_fraction: float = 0.15
    max_test_packets: int | None = 8_000
    max_train_packets: int | None = 6_000
    # Flow-level adaptation.
    schema: str = "netflow"
    cross_corpus_train: bool = False
    flow_train_fraction: float = 0.6
    train_prevalence: float | None = None
    max_flows: int | None = 20_000
    # Extra constructor arguments for the IDS.
    ids_overrides: dict = field(default_factory=dict)
    # Experiment kind dispatch (ablations, custom sweeps).
    experiment: str = TABLE4_KIND
    experiment_params: dict = field(default_factory=dict)

    def describe(self) -> str:
        return f"{self.ids_name} on {self.dataset_name} (seed={self.seed})"


@dataclass
class ExperimentResult:
    """Outcome of one cell: metrics plus full provenance.

    ``attack_types[i]`` is the attack family of test item ``i`` (an
    empty string for benign items), enabling per-family recall analysis
    (:mod:`repro.core.families`).
    """

    config: ExperimentConfig
    metrics: MetricReport
    threshold: float
    scores: np.ndarray
    y_true: np.ndarray
    notes: dict
    #: IDS fit + score time only — dataset generation and adaptation are
    #: excluded, so the number is comparable whether or not the dataset
    #: came from a cache (``notes["setup_seconds"]`` records the rest).
    runtime_seconds: float
    attack_types: tuple[str, ...] = ()


def _build_ids(config: ExperimentConfig):
    factories = evaluated_ids_factories()
    try:
        factory = factories[config.ids_name]
    except KeyError:
        known = ", ".join(sorted(factories))
        raise KeyError(
            f"unknown IDS {config.ids_name!r}; known: {known}"
        ) from None
    kwargs = dict(factory.default_config())
    kwargs.update(config.ids_overrides)
    return factory, kwargs


class DatasetProvider(Protocol):
    """Anything that can supply a dataset by name — the registry's
    :func:`~repro.datasets.registry.generate_dataset` or a
    :class:`~repro.runner.cache.DatasetCache`."""

    def __call__(self, name: str, *, seed: int, scale: float): ...


#: Name under which the DNN's cross-corpus training set is requested
#: from the provider (see :mod:`repro.datasets.kddcup`).
CROSS_CORPUS_DATASET = "KDD-reference"


def cross_corpus_requirement(
    config: ExperimentConfig,
) -> tuple[str, int, float] | None:
    """The extra ``(name, seed, scale)`` dataset this cell requests from
    its provider beyond ``config.dataset_name`` (or ``None``) — the
    engine uses this to warm caches before dispatch."""
    if not config.cross_corpus_train:
        return None
    return (CROSS_CORPUS_DATASET, config.seed, max(config.scale * 0.5, 0.1))


#: Signature of a registered experiment kind: given a config and a
#: dataset provider, produce the cell's result. Kinds must honour the
#: determinism contract — the result depends only on ``config``.
ExperimentRunner = Callable[[ExperimentConfig, DatasetProvider], "ExperimentResult"]

_EXPERIMENT_KINDS: dict[str, ExperimentRunner] = {}


def register_experiment_kind(name: str, runner: ExperimentRunner) -> ExperimentRunner:
    """Register a custom experiment kind under ``name``.

    Registration is per-process; for kinds that must also resolve in
    engine worker processes, use a ``"module:function"`` dotted path as
    the config's ``experiment`` value instead — it is imported lazily
    wherever the cell runs.
    """
    if name == TABLE4_KIND:
        raise ValueError(f"{TABLE4_KIND!r} is the built-in kind")
    _EXPERIMENT_KINDS[name] = runner
    return runner


def resolve_experiment_kind(name: str) -> ExperimentRunner:
    """Look up an experiment kind by registered name or dotted path."""
    runner = _EXPERIMENT_KINDS.get(name)
    if runner is not None:
        return runner
    if ":" in name:
        module_name, _, attr = name.partition(":")
        runner = getattr(importlib.import_module(module_name), attr)
        _EXPERIMENT_KINDS[name] = runner
        return runner
    known = ", ".join(sorted(_EXPERIMENT_KINDS) or ("<none>",))
    raise KeyError(
        f"unknown experiment kind {name!r} (registered: {known}; "
        f"dotted 'module:function' paths also resolve)"
    )


def experiment_input_kind(config: ExperimentConfig) -> InputKind:
    """Whether this cell's IDS consumes packets or flows."""
    factory, _ = _build_ids(config)
    return factory.input_kind


def build_packet_cell(config: ExperimentConfig, dataset):
    """Adapt ``dataset`` and instantiate the IDS for one packet-level
    cell, exactly as :func:`run_experiment` does.

    This is the shared substrate of the batch path and the streaming
    path (:mod:`repro.stream.service`): both derive the same RNG
    children, the same train/test adaptation and the same grace-period
    arithmetic, so their scores agree bit for bit. Returns the
    *untrained* IDS and the adapted :class:`PacketExperimentData`.
    """
    rng = SeededRNG(config.seed, f"exp/{config.ids_name}/{config.dataset_name}")
    factory, kwargs = _build_ids(config)
    if factory.input_kind is not InputKind.PACKET:
        raise ValueError(f"{config.ids_name} is not a packet-level IDS")
    data = prepare_packet_experiment(
        dataset,
        rng.child("prep"),
        train_fraction=config.train_fraction,
        test_prevalence=config.test_prevalence,
        max_test_packets=config.max_test_packets,
        max_train_packets=config.max_train_packets,
    )
    if config.ids_name == "Kitsune":
        # Grace periods must fit the available training stream —
        # the per-dataset setup labour the paper describes.
        fm = max(100, len(data.train_packets) // 10)
        kwargs.setdefault("seed", config.seed)
        kwargs["fm_grace"] = fm
        kwargs["ad_grace"] = max(100, len(data.train_packets) - fm)
    else:
        kwargs.setdefault("seed", config.seed)
    return factory(**kwargs), data


def build_flow_cell(config: ExperimentConfig, dataset, train_dataset=None):
    """Adapt ``dataset`` and instantiate the IDS for one flow-level
    cell, exactly as :func:`run_experiment` does (see
    :func:`build_packet_cell`). Returns the *untrained* IDS and the
    adapted :class:`FlowExperimentData`."""
    rng = SeededRNG(config.seed, f"exp/{config.ids_name}/{config.dataset_name}")
    factory, kwargs = _build_ids(config)
    if factory.input_kind is not InputKind.FLOW:
        raise ValueError(f"{config.ids_name} is not a flow-level IDS")
    data = prepare_flow_experiment(
        dataset,
        rng.child("prep"),
        schema=config.schema,
        train_dataset=train_dataset,
        train_fraction=config.flow_train_fraction,
        train_prevalence=config.train_prevalence,
        test_prevalence=config.test_prevalence,
        max_flows=config.max_flows,
    )
    if config.ids_name == "DNN":
        kwargs.setdefault("seed", config.seed)
    return factory(**kwargs), data


def run_experiment(
    config: ExperimentConfig,
    *,
    dataset_provider: DatasetProvider | None = None,
) -> ExperimentResult:
    """Execute one experiment cell end to end.

    The default kind (:data:`TABLE4_KIND`) is the paper's Table IV
    evaluation; other ``config.experiment`` values dispatch to the
    registered (or dotted-path) kind runner.

    ``dataset_provider`` injects where datasets come from (default: the
    registry generator, regenerating per call). Providers must be
    deterministic in ``(name, seed, scale)``; the result then depends
    only on ``config``.
    """
    setup_start = time.perf_counter()
    provider: DatasetProvider = dataset_provider or generate_dataset
    if config.experiment != TABLE4_KIND:
        return resolve_experiment_kind(config.experiment)(config, provider)
    dataset = provider(
        config.dataset_name, seed=config.seed, scale=config.scale
    )
    factory, _ = _build_ids(config)

    if factory.input_kind is InputKind.PACKET:
        ids, data = build_packet_cell(config, dataset)
        fit_score_start = time.perf_counter()
        ids.fit(data.train_packets)
        # score_batch feeds the batched execute path where the IDS
        # advertises one (bit-identical to the per-packet reference;
        # tests/test_ml_batched.py) and falls back to it otherwise.
        scores = ids.score_batch(data.test_packets)
        fit_score_seconds = time.perf_counter() - fit_score_start
        y_true = data.y_true
        from repro.backends import backend_notes

        notes = dict(data.notes)
        notes.update(backend_notes(ids))
        attack_types = tuple(p.attack_type for p in data.test_packets)
    else:
        train_dataset = None
        requirement = cross_corpus_requirement(config)
        if requirement is not None:
            cc_name, cc_seed, cc_scale = requirement
            train_dataset = provider(cc_name, seed=cc_seed, scale=cc_scale)
        ids, data = build_flow_cell(config, dataset, train_dataset)
        fit_score_start = time.perf_counter()
        ids.fit(data.train_flows, data.train_features, data.train_labels)
        scores = ids.anomaly_scores(data.test_flows, data.test_features)
        fit_score_seconds = time.perf_counter() - fit_score_start
        y_true = data.y_true
        notes = data.notes
        attack_types = tuple(f.attack_type for f in data.test_flows)

    threshold = standard_threshold(
        y_true,
        scores,
        strategy=config.threshold_strategy,
        max_fpr=config.max_fpr,
        lambda_fpr=config.lambda_fpr,
        fixed_value=config.fixed_threshold,
    )
    predictions = (scores >= threshold).astype(int)
    metrics = compute_metrics(y_true, predictions)
    notes = dict(notes)
    notes["setup_seconds"] = fit_score_start - setup_start
    return ExperimentResult(
        config=config,
        metrics=metrics,
        threshold=threshold,
        scores=scores,
        y_true=y_true,
        notes=notes,
        runtime_seconds=fit_score_seconds,
        attack_types=attack_types,
    )


def _matrix() -> dict[tuple[str, str], ExperimentConfig]:
    """The 20-cell experiment matrix behind Table IV."""
    configs: dict[tuple[str, str], ExperimentConfig] = {}

    # ---- Kitsune: packet-level, trained on initial benign traffic ----
    # Enterprise samples are benign-dominated after flow sampling (the
    # paper's Kitsune rows imply ~1-5% attack packets there); IoT
    # captures keep their natural attack-heavy composition.
    kitsune_prevalence = {
        "UNSW-NB15": 0.05,
        "BoT-IoT": None,
        "CICIDS2017": 0.02,
        "Stratosphere": None,
        "Mirai": None,
    }
    for dataset, prevalence in kitsune_prevalence.items():
        configs[("Kitsune", dataset)] = ExperimentConfig(
            ids_name="Kitsune",
            dataset_name=dataset,
            test_prevalence=prevalence,
            # Detection-first thresholding: Kitsune's published rows
            # (recall 0.98 at precision 0.01 on CICIDS2017) show the
            # procedure tolerated near-total flagging when scores did
            # not separate the classes.
            threshold_strategy="detection-priority",
            lambda_fpr=0.3,
        )

    # ---- HELAD: conservatively thresholded (its published CICIDS2017
    # row trades recall 0.37 for precision 0.97). Sample compositions
    # follow the prevalences implied by its published accuracies
    # (CICIDS2017 acc 0.6437 at prec 0.97 implies a ~57% attack sample;
    # UNSW-NB15 acc 0.9717 with near-zero detections implies ~3%).
    helad_prevalence = {
        "UNSW-NB15": 0.03,
        "BoT-IoT": None,
        "CICIDS2017": 0.57,
        "Stratosphere": None,
        "Mirai": None,
    }
    for dataset, prevalence in helad_prevalence.items():
        configs[("HELAD", dataset)] = ExperimentConfig(
            ids_name="HELAD",
            dataset_name=dataset,
            test_prevalence=prevalence,
            threshold_strategy="fpr-budget",
            max_fpr=0.04,
        )

    # ---- DNN: out-of-the-box pipeline arrives pre-trained on its
    # KDD-like corpus; test compositions follow the paper's implied
    # prevalences (accuracy == precision, recall == 1.0).
    dnn_prevalence = {
        "UNSW-NB15": 0.982,
        "BoT-IoT": 0.977,
        "CICIDS2017": 0.98,
        "Stratosphere": 0.211,
        "Mirai": 0.906,
    }
    for dataset, prevalence in dnn_prevalence.items():
        configs[("DNN", dataset)] = ExperimentConfig(
            ids_name="DNN",
            dataset_name=dataset,
            cross_corpus_train=True,
            test_prevalence=prevalence,
            # The DNN's native sigmoid decision boundary — out of the box.
            threshold_strategy="fixed",
            fixed_threshold=0.5,
        )

    # ---- Slips: flow-level, training-free; natural compositions except
    # where the paper's accuracies imply specific samples.
    slips_prevalence = {
        "UNSW-NB15": 0.13,
        "BoT-IoT": None,  # naturally >98% attack, like the real BoT-IoT
        "CICIDS2017": 0.063,
        "Stratosphere": None,
        "Mirai": 0.20,
    }
    for dataset, prevalence in slips_prevalence.items():
        configs[("Slips", dataset)] = ExperimentConfig(
            ids_name="Slips",
            dataset_name=dataset,
            test_prevalence=prevalence,
            # Training-free: the whole capture is evaluated, and Slips'
            # own evidence threshold is the decision boundary.
            flow_train_fraction=0.0,
            threshold_strategy="fixed",
            fixed_threshold=0.5,
        )
    return configs


EXPERIMENT_MATRIX: dict[tuple[str, str], ExperimentConfig] = _matrix()
