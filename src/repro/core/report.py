"""Paper-style table rendering (Tables I-IV)."""

from __future__ import annotations

from repro.core.metrics import average_metrics
from repro.core.selection import run_selection
from repro.datasets.registry import EXCLUDED_DATASETS, USED_DATASET_INFO
from repro.utils.tables import TextTable, format_float


def render_table1() -> str:
    """Table I: IDSs investigated, with outcome / failure reason."""
    table = TextTable(["NIDS", "Year", "Dataset", "Source", "Usability/Issues"])
    for outcome in run_selection():
        record = outcome.record
        status = "Used in Paper" if outcome.selected else (
            outcome.detail or record.issue
        )
        table.add_row([record.name, record.year, record.dataset,
                       record.source, status])
    return table.render()


def render_table2() -> str:
    """Table II: datasets used for evaluation."""
    table = TextTable(["Dataset", "Characteristics", "Relevance / Reason"])
    for info in USED_DATASET_INFO.values():
        table.add_row([info.name, info.characteristics, info.relevance])
    return table.render()


def render_table3() -> str:
    """Table III: datasets considered but excluded."""
    table = TextTable(["Dataset", "Characteristics", "Reason for Exclusion"])
    for info in EXCLUDED_DATASETS:
        table.add_row([info.name, info.characteristics, info.exclusion_reason])
    return table.render()


def render_table4(pipeline) -> str:
    """Table IV: performance results for tested IDSs and datasets.

    ``pipeline`` is a completed :class:`repro.core.pipeline.
    IDSAnalysisPipeline`. Layout mirrors the paper: one block per IDS,
    one row per dataset, then the per-IDS average row.
    """
    lines: list[str] = []
    header = f"{'Dataset':14s}  {'Acc.':>7s}  {'Prec.':>7s}  {'Rec.':>7s}  {'F1':>7s}"
    for ids_name in pipeline.ids_names:
        lines.append(f"IDS: {ids_name}")
        lines.append(header)
        lines.append("-" * len(header))
        cells = pipeline.row(ids_name)
        for cell in cells:
            m = cell.metrics
            lines.append(
                f"{cell.dataset_name:14s}  {format_float(m.accuracy):>7s}  "
                f"{format_float(m.precision):>7s}  {format_float(m.recall):>7s}  "
                f"{format_float(m.f1):>7s}"
            )
        avg = average_metrics([c.metrics for c in cells])
        lines.append(
            f"{'Average:':14s}  {format_float(avg.accuracy):>7s}  "
            f"{format_float(avg.precision):>7s}  {format_float(avg.recall):>7s}  "
            f"{format_float(avg.f1):>7s}"
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_table4_sweep(sweep) -> str:
    """Table IV with variance: one ``mean±std`` entry per metric.

    ``sweep`` is a :class:`repro.runner.sweep.SweepResult`. Layout
    mirrors :func:`render_table4` — one block per IDS, one row per
    dataset, then the per-IDS average row (dataset averages computed
    within each seed, then summarised across seeds).
    """
    width = 15  # "0.9876±0.0123" plus breathing room
    seed_list = ",".join(str(s) for s in sweep.seeds)
    lines: list[str] = [
        f"Table IV sweep: seeds [{seed_list}] at scale {sweep.scale:g} "
        f"(mean±std over {len(sweep.seeds)} seed"
        f"{'s' if len(sweep.seeds) != 1 else ''})",
        "",
    ]
    header = (
        f"{'Dataset':14s}  {'Acc.':>{width}s}  {'Prec.':>{width}s}  "
        f"{'Rec.':>{width}s}  {'F1':>{width}s}"
    )
    for ids_name in sweep.ids_names:
        lines.append(f"IDS: {ids_name}")
        lines.append(header)
        lines.append("-" * len(header))
        for cell in sweep.row(ids_name):
            lines.append(
                f"{cell.dataset_name:14s}  "
                f"{cell.accuracy.format():>{width}s}  "
                f"{cell.precision.format():>{width}s}  "
                f"{cell.recall.format():>{width}s}  "
                f"{cell.f1.format():>{width}s}"
            )
        avg = sweep.average_for(ids_name)
        lines.append(
            f"{'Average:':14s}  "
            f"{avg['accuracy'].format():>{width}s}  "
            f"{avg['precision'].format():>{width}s}  "
            f"{avg['recall'].format():>{width}s}  "
            f"{avg['f1'].format():>{width}s}"
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_shape_checks(pipeline) -> str:
    """The qualitative-findings verification block."""
    lines = ["Qualitative shape checks (paper Section V):"]
    for check in pipeline.shape_checks():
        mark = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{mark}] {check.claim}")
        lines.append(f"         {check.detail}")
    return "\n".join(lines)
