"""Machine-readable exports of pipeline results.

The text tables in :mod:`repro.core.report` mirror the paper; these
exporters serve downstream tooling: JSON for archival / CI comparison,
markdown for READMEs and issue reports.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.metrics import average_metrics
from repro.utils.tables import format_float, render_markdown_table


def results_to_dict(pipeline) -> dict[str, Any]:
    """Flatten a completed pipeline into a JSON-serialisable dict."""
    cells = []
    for (ids_name, dataset_name), result in sorted(pipeline.results.items()):
        m = result.metrics
        cells.append({
            "ids": ids_name,
            "dataset": dataset_name,
            "accuracy": m.accuracy,
            "precision": m.precision,
            "recall": m.recall,
            "f1": m.f1,
            "tp": m.tp,
            "fp": m.fp,
            "tn": m.tn,
            "fn": m.fn,
            "threshold": result.threshold,
            "threshold_strategy": result.config.threshold_strategy,
            "runtime_seconds": result.runtime_seconds,
            "notes": {k: _jsonable(v) for k, v in result.notes.items()},
        })
    averages = {
        ids_name: pipeline.average_for(ids_name).f1
        for ids_name in pipeline.ids_names
        if all((ids_name, d) in pipeline.results
               for d in pipeline.dataset_names)
    }
    return {
        "seed": pipeline.seed,
        "scale": pipeline.scale,
        "cells": cells,
        "average_f1": averages,
    }


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return value


def results_to_json(pipeline, *, indent: int = 2) -> str:
    """Serialise a completed pipeline to a JSON string."""
    return json.dumps(results_to_dict(pipeline), indent=indent)


def distribution_to_dict(dist) -> dict[str, Any]:
    """Flatten a :class:`~repro.runner.sweep.MetricDistribution`."""
    return {
        "mean": dist.mean,
        "std": dist.std,
        "min": dist.min,
        "max": dist.max,
        "values": list(dist.values),
    }


def cell_sweep_to_dict(cell) -> dict[str, Any]:
    """Flatten one :class:`~repro.runner.sweep.CellSweep`."""
    from repro.runner.sweep import METRIC_NAMES

    return {
        "ids": cell.ids_name,
        "dataset": cell.dataset_name,
        "seeds": list(cell.seeds),
        "metrics": {
            metric: distribution_to_dict(cell.distribution(metric))
            for metric in METRIC_NAMES
        },
        "per_seed": [
            {"seed": seed, "accuracy": m.accuracy, "precision": m.precision,
             "recall": m.recall, "f1": m.f1}
            for seed, m in cell.per_seed()
        ],
    }


def sweep_to_dict(sweep) -> dict[str, Any]:
    """Flatten a :class:`~repro.runner.sweep.SweepResult` for ``--json``
    export: per-cell metric distributions plus the per-IDS average
    rows, mirroring the text rendering's content."""
    averages = {}
    for ids_name in sweep.ids_names:
        if all((ids_name, d) in sweep.cells for d in sweep.dataset_names):
            averages[ids_name] = {
                metric: distribution_to_dict(dist)
                for metric, dist in sweep.average_for(ids_name).items()
            }
    return {
        "ids": list(sweep.ids_names),
        "datasets": list(sweep.dataset_names),
        "seeds": list(sweep.seeds),
        "scale": sweep.scale,
        "cells": [
            cell_sweep_to_dict(sweep.cells[key])
            for key in sorted(sweep.cells)
        ],
        "averages": averages,
    }


def sweep_to_json(sweep, *, indent: int = 2) -> str:
    """Serialise a sweep result to a JSON string."""
    return json.dumps(sweep_to_dict(sweep), indent=indent)


def results_to_markdown(pipeline) -> str:
    """Render Table IV as one markdown table per IDS."""
    sections = []
    for ids_name in pipeline.ids_names:
        rows = []
        cells = pipeline.row(ids_name)
        for cell in cells:
            m = cell.metrics
            rows.append([
                cell.dataset_name,
                format_float(m.accuracy),
                format_float(m.precision),
                format_float(m.recall),
                format_float(m.f1),
            ])
        avg = average_metrics([c.metrics for c in cells])
        rows.append([
            "**Average**",
            format_float(avg.accuracy),
            format_float(avg.precision),
            format_float(avg.recall),
            format_float(avg.f1),
        ])
        table = render_markdown_table(
            ["Dataset", "Acc.", "Prec.", "Rec.", "F1"], rows
        )
        sections.append(f"### {ids_name}\n\n{table}")
    return "\n\n".join(sections)
