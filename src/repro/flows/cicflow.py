"""CICFlowMeter-style flow features (the CICIDS2017 feature set).

Produces the ~80 statistical features CICFlowMeter exports per flow,
computed from a completed :class:`repro.flows.record.FlowRecord`. The
names follow the CICIDS2017 CSV headers (lower-snake-cased); rate
features guard against zero-duration flows the way CICFlowMeter does
(rate 0 rather than infinity).
"""

from __future__ import annotations

from repro.flows.record import FlowRecord


def _safe_rate(amount: float, duration: float) -> float:
    return amount / duration if duration > 0 else 0.0


def cicflow_features(flow: FlowRecord) -> dict[str, float]:
    """Export the CICFlowMeter feature dictionary for ``flow``."""
    fwd, bwd = flow.forward, flow.backward
    duration = flow.duration
    total_packets = flow.total_packets
    total_payload = fwd.payload_bytes + bwd.payload_bytes

    # Combined packet-length distribution across both directions.
    all_len_mean = _safe_rate(total_payload, total_packets)
    combined = _merge_stats(fwd, bwd)

    features: dict[str, float] = {
        "flow_duration": duration,
        "total_fwd_packets": float(fwd.packets),
        "total_bwd_packets": float(bwd.packets),
        "total_length_fwd_packets": float(fwd.payload_bytes),
        "total_length_bwd_packets": float(bwd.payload_bytes),
        "fwd_packet_length_max": fwd.lengths.max_or(),
        "fwd_packet_length_min": fwd.lengths.min_or(),
        "fwd_packet_length_mean": fwd.lengths.mean,
        "fwd_packet_length_std": fwd.lengths.std,
        "bwd_packet_length_max": bwd.lengths.max_or(),
        "bwd_packet_length_min": bwd.lengths.min_or(),
        "bwd_packet_length_mean": bwd.lengths.mean,
        "bwd_packet_length_std": bwd.lengths.std,
        "flow_bytes_per_s": _safe_rate(flow.total_bytes, duration),
        "flow_packets_per_s": _safe_rate(total_packets, duration),
        "flow_iat_mean": flow.flow_iats.mean,
        "flow_iat_std": flow.flow_iats.std,
        "flow_iat_max": flow.flow_iats.max_or(),
        "flow_iat_min": flow.flow_iats.min_or(),
        "fwd_iat_total": fwd.iats.total,
        "fwd_iat_mean": fwd.iats.mean,
        "fwd_iat_std": fwd.iats.std,
        "fwd_iat_max": fwd.iats.max_or(),
        "fwd_iat_min": fwd.iats.min_or(),
        "bwd_iat_total": bwd.iats.total,
        "bwd_iat_mean": bwd.iats.mean,
        "bwd_iat_std": bwd.iats.std,
        "bwd_iat_max": bwd.iats.max_or(),
        "bwd_iat_min": bwd.iats.min_or(),
        "fwd_psh_flags": float(fwd.psh_count),
        "bwd_psh_flags": float(bwd.psh_count),
        "fwd_urg_flags": float(fwd.urg_count),
        "bwd_urg_flags": float(bwd.urg_count),
        "fwd_header_length": float(fwd.header_bytes),
        "bwd_header_length": float(bwd.header_bytes),
        "fwd_packets_per_s": _safe_rate(fwd.packets, duration),
        "bwd_packets_per_s": _safe_rate(bwd.packets, duration),
        "packet_length_min": combined.min_or(),
        "packet_length_max": combined.max_or(),
        "packet_length_mean": combined.mean,
        "packet_length_std": combined.std,
        "packet_length_variance": combined.variance,
        "fin_flag_count": float(flow.flag_count("FIN")),
        "syn_flag_count": float(flow.flag_count("SYN")),
        "rst_flag_count": float(flow.flag_count("RST")),
        "psh_flag_count": float(flow.flag_count("PSH")),
        "ack_flag_count": float(flow.flag_count("ACK")),
        "urg_flag_count": float(flow.flag_count("URG")),
        "cwe_flag_count": float(flow.flag_count("CWR")),
        "ece_flag_count": float(flow.flag_count("ECE")),
        "down_up_ratio": _safe_rate(bwd.packets, fwd.packets),
        "average_packet_size": all_len_mean,
        "avg_fwd_segment_size": fwd.lengths.mean,
        "avg_bwd_segment_size": bwd.lengths.mean,
        # CICFlowMeter's sub-flow features degenerate to the whole flow
        # when no sub-flow split occurs; we export the whole-flow values.
        "subflow_fwd_packets": float(fwd.packets),
        "subflow_fwd_bytes": float(fwd.payload_bytes),
        "subflow_bwd_packets": float(bwd.packets),
        "subflow_bwd_bytes": float(bwd.payload_bytes),
        "init_win_bytes_forward": float(max(fwd.init_window, 0)),
        "init_win_bytes_backward": float(max(bwd.init_window, 0)),
        "act_data_pkt_fwd": float(_count_data_packets(fwd)),
        "min_seg_size_forward": fwd.lengths.min_or(),
        "active_mean": flow.active_periods.mean,
        "active_std": flow.active_periods.std,
        "active_max": flow.active_periods.max_or(),
        "active_min": flow.active_periods.min_or(),
        "idle_mean": flow.idle_periods.mean,
        "idle_std": flow.idle_periods.std,
        "idle_max": flow.idle_periods.max_or(),
        "idle_min": flow.idle_periods.min_or(),
        "destination_port": float(flow.dst_port),
        "protocol_tcp": 1.0 if flow.protocol == "tcp" else 0.0,
        "protocol_udp": 1.0 if flow.protocol == "udp" else 0.0,
        "protocol_icmp": 1.0 if flow.protocol == "icmp" else 0.0,
    }
    return features


def _merge_stats(fwd, bwd):
    from repro.flows.record import RunningStats

    combined = RunningStats()
    combined.merge(fwd.lengths)
    combined.merge(bwd.lengths)
    return combined


def _count_data_packets(direction) -> int:
    # Approximation: packets carrying payload. The exact CICFlowMeter
    # definition (TCP packets with >= 1 data byte) matches because our
    # accumulators only count payload lengths.
    return direction.packets if direction.payload_bytes > 0 else 0


#: Stable, ordered list of exported feature names.
CICFLOW_FEATURE_NAMES: tuple[str, ...] = (
        "flow_duration",
        "total_fwd_packets",
        "total_bwd_packets",
        "total_length_fwd_packets",
        "total_length_bwd_packets",
        "fwd_packet_length_max",
        "fwd_packet_length_min",
        "fwd_packet_length_mean",
        "fwd_packet_length_std",
        "bwd_packet_length_max",
        "bwd_packet_length_min",
        "bwd_packet_length_mean",
        "bwd_packet_length_std",
        "flow_bytes_per_s",
        "flow_packets_per_s",
        "flow_iat_mean",
        "flow_iat_std",
        "flow_iat_max",
        "flow_iat_min",
        "fwd_iat_total",
        "fwd_iat_mean",
        "fwd_iat_std",
        "fwd_iat_max",
        "fwd_iat_min",
        "bwd_iat_total",
        "bwd_iat_mean",
        "bwd_iat_std",
        "bwd_iat_max",
        "bwd_iat_min",
        "fwd_psh_flags",
        "bwd_psh_flags",
        "fwd_urg_flags",
        "bwd_urg_flags",
        "fwd_header_length",
        "bwd_header_length",
        "fwd_packets_per_s",
        "bwd_packets_per_s",
        "packet_length_min",
        "packet_length_max",
        "packet_length_mean",
        "packet_length_std",
        "packet_length_variance",
        "fin_flag_count",
        "syn_flag_count",
        "rst_flag_count",
        "psh_flag_count",
        "ack_flag_count",
        "urg_flag_count",
        "cwe_flag_count",
        "ece_flag_count",
        "down_up_ratio",
        "average_packet_size",
        "avg_fwd_segment_size",
        "avg_bwd_segment_size",
        "subflow_fwd_packets",
        "subflow_fwd_bytes",
        "subflow_bwd_packets",
        "subflow_bwd_bytes",
        "init_win_bytes_forward",
        "init_win_bytes_backward",
        "act_data_pkt_fwd",
        "min_seg_size_forward",
        "active_mean",
        "active_std",
        "active_max",
        "active_min",
        "idle_mean",
        "idle_std",
        "idle_max",
        "idle_min",
        "destination_port",
        "protocol_tcp",
        "protocol_udp",
        "protocol_icmp",
)
