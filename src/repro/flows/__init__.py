"""Flow substrate: bidirectional flow assembly and flow-feature export.

Replaces the role CICFlowMeter, Argus and Bro/Zeek play in the paper:
packets are grouped into bidirectional 5-tuple flows with idle/active
timeouts and TCP termination handling, and each completed flow can be
exported as a CICFlowMeter-style (~80 features, CICIDS2017) or
UNSW-style (~49 features, UNSW-NB15) record.
"""

from repro.flows.key import FlowKey, flow_key_for_packet
from repro.flows.record import DirectionStats, FlowRecord, RunningStats
from repro.flows.assembler import FlowAssembler
from repro.flows.cicflow import CICFLOW_FEATURE_NAMES, cicflow_features
from repro.flows.netflow import NETFLOW_FEATURE_NAMES, netflow_features
from repro.flows.sampling import random_flow_sample, random_packet_sample, sort_by_timestamp

__all__ = [
    "FlowKey",
    "flow_key_for_packet",
    "FlowRecord",
    "DirectionStats",
    "RunningStats",
    "FlowAssembler",
    "cicflow_features",
    "CICFLOW_FEATURE_NAMES",
    "netflow_features",
    "NETFLOW_FEATURE_NAMES",
    "random_flow_sample",
    "random_packet_sample",
    "sort_by_timestamp",
]
