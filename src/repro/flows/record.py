"""Flow records: per-direction accumulation of packet statistics.

A :class:`FlowRecord` is built incrementally by the assembler — one
:meth:`FlowRecord.add` call per packet — and holds everything the
CICFlowMeter-style and UNSW-style exporters need: per-direction packet
and byte counts, packet-length and inter-arrival-time distributions,
TCP flag counts, window sizes, active/idle periods, and ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.flows.key import FlowKey
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags, TCPHeader


class RunningStats:
    """Streaming count/mean/std/min/max via Welford's algorithm.

    Numerically stable single-pass moments, so million-packet flows can
    be summarised without holding per-packet arrays.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def min_or(self, default: float = 0.0) -> float:
        return self.min if self.count else default

    def max_or(self, default: float = 0.0) -> float:
        return self.max if self.count else default

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two summaries (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return self
        combined = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / combined
        )
        self.mean = (self.mean * self.count + other.mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


@dataclass
class DirectionStats:
    """Per-direction accumulators (forward = initiator → responder)."""

    packets: int = 0
    bytes: int = 0
    payload_bytes: int = 0
    lengths: RunningStats = field(default_factory=RunningStats)
    iats: RunningStats = field(default_factory=RunningStats)
    header_bytes: int = 0
    last_timestamp: float | None = None
    init_window: int = -1
    psh_count: int = 0
    urg_count: int = 0

    def add(self, packet: Packet) -> None:
        self.packets += 1
        wire_len = packet.wire_len
        self.bytes += wire_len
        self.payload_bytes += len(packet.payload)
        self.lengths.add(float(len(packet.payload)))
        if self.last_timestamp is not None:
            self.iats.add(packet.timestamp - self.last_timestamp)
        self.last_timestamp = packet.timestamp
        self.header_bytes += wire_len - len(packet.payload)
        transport = packet.transport
        if isinstance(transport, TCPHeader):
            if self.init_window < 0:
                self.init_window = transport.window
            if transport.has(TCPFlags.PSH):
                self.psh_count += 1
            if transport.has(TCPFlags.URG):
                self.urg_count += 1


#: Gap of inactivity that splits a flow into separate "active" periods,
#: matching CICFlowMeter's default (in seconds).
ACTIVE_IDLE_THRESHOLD = 5.0


@dataclass
class FlowRecord:
    """A bidirectional flow under construction or completed."""

    key: FlowKey
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str
    start_time: float
    end_time: float = 0.0
    forward: DirectionStats = field(default_factory=DirectionStats)
    backward: DirectionStats = field(default_factory=DirectionStats)
    flag_counts: dict[str, int] = field(default_factory=dict)
    flow_iats: RunningStats = field(default_factory=RunningStats)
    active_periods: RunningStats = field(default_factory=RunningStats)
    idle_periods: RunningStats = field(default_factory=RunningStats)
    attack_packets: int = 0
    attack_types: dict[str, int] = field(default_factory=dict)
    terminated: bool = False
    _last_timestamp: float | None = field(default=None, repr=False)
    _active_start: float | None = field(default=None, repr=False)

    @classmethod
    def open(cls, key: FlowKey, first_packet: Packet) -> "FlowRecord":
        """Open a new flow; the first packet's source is the initiator."""
        record = cls(
            key=key,
            src_ip=first_packet.ip.src_ip,
            src_port=first_packet.src_port or 0,
            dst_ip=first_packet.ip.dst_ip,
            dst_port=first_packet.dst_port or 0,
            protocol=first_packet.protocol_name,
            start_time=first_packet.timestamp,
        )
        record.add(first_packet)
        return record

    def is_forward(self, packet: Packet) -> bool:
        """True if ``packet`` travels initiator → responder."""
        return (
            packet.ip is not None
            and packet.ip.src_ip == self.src_ip
            and (packet.src_port or 0) == self.src_port
        )

    def add(self, packet: Packet) -> None:
        """Fold one packet into the flow."""
        direction = self.forward if self.is_forward(packet) else self.backward
        direction.add(packet)
        self.end_time = packet.timestamp

        if self._last_timestamp is not None:
            gap = packet.timestamp - self._last_timestamp
            self.flow_iats.add(gap)
            if gap > ACTIVE_IDLE_THRESHOLD:
                if self._active_start is not None:
                    self.active_periods.add(self._last_timestamp - self._active_start)
                self.idle_periods.add(gap)
                self._active_start = packet.timestamp
        if self._active_start is None:
            self._active_start = packet.timestamp
        self._last_timestamp = packet.timestamp

        transport = packet.transport
        if isinstance(transport, TCPHeader):
            for flag in TCPFlags:
                if transport.has(flag):
                    name = flag.name or ""
                    self.flag_counts[name] = self.flag_counts.get(name, 0) + 1
            if transport.has(TCPFlags.FIN) or transport.has(TCPFlags.RST):
                self.terminated = True

        if packet.label:
            self.attack_packets += 1
            if packet.attack_type:
                self.attack_types[packet.attack_type] = (
                    self.attack_types.get(packet.attack_type, 0) + 1
                )

    def close(self) -> None:
        """Finalise the trailing active period."""
        if self._active_start is not None and self._last_timestamp is not None:
            span = self._last_timestamp - self._active_start
            if span > 0:
                self.active_periods.add(span)
            self._active_start = None

    # -- derived quantities -------------------------------------------
    @property
    def duration(self) -> float:
        return max(self.end_time - self.start_time, 0.0)

    @property
    def total_packets(self) -> int:
        return self.forward.packets + self.backward.packets

    @property
    def total_bytes(self) -> int:
        return self.forward.bytes + self.backward.bytes

    @property
    def label(self) -> int:
        """Flow-level ground truth: attack if any member packet is attack.

        This is the labelling convention the CICIDS2017 authors use
        (a flow touched by attack traffic is an attack flow).
        """
        return 1 if self.attack_packets > 0 else 0

    @property
    def attack_type(self) -> str:
        """The dominant attack family among member packets, or ``""``."""
        if not self.attack_types:
            return ""
        return max(self.attack_types.items(), key=lambda kv: kv[1])[0]

    def flag_count(self, name: str) -> int:
        return self.flag_counts.get(name, 0)
