"""Canonical bidirectional flow keys."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet


@dataclass(frozen=True)
class FlowKey:
    """A direction-less 5-tuple identifying a bidirectional flow.

    The endpoint pair is stored in canonical (sorted) order so that both
    directions of a conversation map to the same key. Flow *direction*
    (who initiated) is tracked by :class:`repro.flows.record.FlowRecord`,
    not by the key.
    """

    ip_a: str
    port_a: int
    ip_b: str
    port_b: int
    protocol: str

    @classmethod
    def canonical(
        cls, src_ip: str, src_port: int, dst_ip: str, dst_port: int, protocol: str
    ) -> "FlowKey":
        """Build a key with endpoints in canonical order."""
        first = (src_ip, src_port)
        second = (dst_ip, dst_port)
        if first > second:
            first, second = second, first
        return cls(first[0], first[1], second[0], second[1], protocol)

    def endpoints(self) -> tuple[tuple[str, int], tuple[str, int]]:
        return (self.ip_a, self.port_a), (self.ip_b, self.port_b)


def flow_key_for_packet(packet: Packet) -> FlowKey | None:
    """Derive the canonical flow key for ``packet``.

    ICMP packets use port 0 on both sides (one "flow" per host pair, the
    convention CICFlowMeter follows). ARP and non-IP packets have no
    flow key and return ``None``.
    """
    if packet.ip is None:
        return None
    src_port = packet.src_port if packet.src_port is not None else 0
    dst_port = packet.dst_port if packet.dst_port is not None else 0
    return FlowKey.canonical(
        packet.ip.src_ip, src_port, packet.ip.dst_ip, dst_port, packet.protocol_name
    )
