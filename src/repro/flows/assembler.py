"""Bidirectional flow assembly with CICFlowMeter-compatible timeouts."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.flows.key import FlowKey, flow_key_for_packet
from repro.flows.record import FlowRecord
from repro.net.packet import Packet
from repro.net.tcp import TCPFlags, TCPHeader
from repro.utils.validation import check_positive


class FlowAssembler:
    """Groups a packet stream into completed :class:`FlowRecord` objects.

    Follows the flow semantics of CICFlowMeter/Argus:

    * a flow expires after ``idle_timeout`` seconds without a packet;
    * a flow is force-expired after ``active_timeout`` seconds of total
      lifetime (long-lived flows are split);
    * a TCP flow ends when FIN or RST is observed (the closing packet is
      included), matching how the public datasets delimit flows.

    Packets must arrive in non-decreasing timestamp order; the paper's
    methodology sorts sampled packets by timestamp before flow export
    for exactly this reason (Section IV-A-2).
    """

    def __init__(
        self, *, idle_timeout: float = 120.0, active_timeout: float = 3600.0
    ) -> None:
        self.idle_timeout = check_positive("idle_timeout", idle_timeout)
        self.active_timeout = check_positive("active_timeout", active_timeout)
        self._active: dict[FlowKey, FlowRecord] = {}
        self._last_seen_ts: float | None = None
        self.non_ip_packets = 0

    def process(self, packets: Iterable[Packet]) -> Iterator[FlowRecord]:
        """Consume packets, yielding flows as they complete.

        Call :meth:`flush` afterwards to drain still-open flows.
        """
        for packet in packets:
            if (
                self._last_seen_ts is not None
                and packet.timestamp < self._last_seen_ts - 1e-9
            ):
                raise ValueError(
                    "packets must be sorted by timestamp; "
                    f"saw {packet.timestamp} after {self._last_seen_ts} "
                    "(use repro.flows.sampling.sort_by_timestamp first)"
                )
            self._last_seen_ts = packet.timestamp
            yield from self._expire(packet.timestamp)
            key = flow_key_for_packet(packet)
            if key is None:
                self.non_ip_packets += 1
                continue
            record = self._active.get(key)
            if record is None:
                self._active[key] = FlowRecord.open(key, packet)
                continue
            record.add(packet)
            if self._tcp_closed(packet):
                record.close()
                del self._active[key]
                yield record

    def flush(self) -> Iterator[FlowRecord]:
        """Close and yield every still-open flow (end of capture)."""
        for key in list(self._active):
            record = self._active.pop(key)
            record.close()
            yield record

    def assemble(self, packets: Iterable[Packet]) -> list[FlowRecord]:
        """Convenience: process + flush into a list sorted by start time."""
        flows = list(self.process(packets))
        flows.extend(self.flush())
        flows.sort(key=lambda flow: (flow.start_time, flow.end_time))
        return flows

    @property
    def open_flows(self) -> int:
        return len(self._active)

    def _expire(self, now: float) -> Iterator[FlowRecord]:
        expired = [
            key
            for key, record in self._active.items()
            if now - record.end_time > self.idle_timeout
            or now - record.start_time > self.active_timeout
        ]
        for key in expired:
            record = self._active.pop(key)
            record.close()
            yield record

    @staticmethod
    def _tcp_closed(packet: Packet) -> bool:
        transport = packet.transport
        return isinstance(transport, TCPHeader) and (
            transport.has(TCPFlags.FIN) or transport.has(TCPFlags.RST)
        )
