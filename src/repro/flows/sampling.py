"""Random flow sampling and temporal re-sorting (paper Section IV-A).

The paper's methodology, steps 1-2: when a dataset is too large to run
in full, *random flow sampling* keeps a random subset of flows (all
packets of a kept flow are retained, so flow statistics stay intact),
and the surviving packets are re-sorted by timestamp so the IDSs see a
stream whose temporal statistics are preserved.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.flows.key import flow_key_for_packet
from repro.net.packet import Packet
from repro.utils.rng import SeededRNG
from repro.utils.validation import check_fraction


def sort_by_timestamp(packets: Iterable[Packet]) -> list[Packet]:
    """Return packets sorted by timestamp (stable, so equal stamps keep
    their generation order)."""
    return sorted(packets, key=lambda p: p.timestamp)


def random_flow_sample(
    packets: Sequence[Packet], fraction: float, rng: SeededRNG
) -> list[Packet]:
    """Keep a random ``fraction`` of flows, then re-sort by timestamp.

    Packets with no flow key (ARP, non-IP) are treated as one pseudo-flow
    so broadcast chatter is sampled consistently rather than dropped.
    """
    check_fraction("fraction", fraction)
    if fraction >= 1.0:
        return sort_by_timestamp(packets)
    keys = []
    seen = set()
    for packet in packets:
        key = flow_key_for_packet(packet)
        if key not in seen:
            seen.add(key)
            keys.append(key)
    keep_count = int(round(len(keys) * fraction))
    if keep_count == 0 and keys and fraction > 0:
        keep_count = 1
    order = rng.permutation(len(keys))
    kept = {keys[int(i)] for i in order[:keep_count]}
    sampled = [p for p in packets if flow_key_for_packet(p) in kept]
    return sort_by_timestamp(sampled)


def random_packet_sample(
    packets: Sequence[Packet], fraction: float, rng: SeededRNG
) -> list[Packet]:
    """Keep a random ``fraction`` of individual packets, then re-sort.

    Used to contrast against flow sampling in the sampling ablation:
    packet sampling destroys intra-flow statistics, which is why the
    paper samples *flows* (Section IV-A-1).
    """
    check_fraction("fraction", fraction)
    if fraction >= 1.0:
        return sort_by_timestamp(packets)
    n = len(packets)
    keep_count = int(round(n * fraction))
    if keep_count == 0 and n and fraction > 0:
        keep_count = 1
    order = rng.permutation(n)
    kept_idx = sorted(int(i) for i in order[:keep_count])
    return sort_by_timestamp([packets[i] for i in kept_idx])
