"""Deterministic, hierarchical random number generation.

The reproduction pipeline runs many stochastic components (traffic
generators, samplers, neural-network initializers). To make full runs
reproducible while keeping components independent, every component
receives its own :class:`SeededRNG` derived from a parent seed and a
string label. Re-ordering component construction therefore never
perturbs another component's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed deterministically from ``parent_seed`` and a label.

    Uses SHA-256 over the parent seed and label so that distinct labels
    yield statistically independent child seeds.

    >>> derive_seed(42, "traffic") != derive_seed(42, "sampler")
    True
    >>> derive_seed(42, "traffic") == derive_seed(42, "traffic")
    True
    """
    if not isinstance(parent_seed, int):
        raise TypeError(f"parent_seed must be int, got {type(parent_seed).__name__}")
    payload = f"{parent_seed & _MASK64}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class SeededRNG:
    """A labelled wrapper around :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Any 64-bit integer. Negative seeds are mapped into range.
    label:
        Human-readable label recorded for debugging and used when
        spawning children.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed & _MASK64
        self.label = label
        self._gen = np.random.Generator(np.random.PCG64(self.seed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRNG(seed={self.seed}, label={self.label!r})"

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._gen

    def child(self, label: str) -> "SeededRNG":
        """Spawn an independent child RNG keyed by ``label``."""
        return SeededRNG(derive_seed(self.seed, label), label=f"{self.label}/{label}")

    # -- convenience passthroughs -------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._gen.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._gen.normal(loc, scale, size)

    def exponential(self, scale: float = 1.0, size=None):
        return self._gen.exponential(scale, size)

    def integers(self, low: int, high: int | None = None, size=None):
        return self._gen.integers(low, high, size)

    def choice(self, seq, size=None, replace=True, p=None):
        return self._gen.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, array) -> None:
        self._gen.shuffle(array)

    def permutation(self, x):
        return self._gen.permutation(x)

    def random(self, size=None):
        return self._gen.random(size)

    def poisson(self, lam: float = 1.0, size=None):
        return self._gen.poisson(lam, size)

    def pareto(self, a: float, size=None):
        return self._gen.pareto(a, size)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        return self._gen.lognormal(mean, sigma, size)

    def geometric(self, p: float, size=None):
        return self._gen.geometric(p, size)


def spawn_child(rng: SeededRNG | int, label: str) -> SeededRNG:
    """Spawn a child RNG from either a :class:`SeededRNG` or a raw seed."""
    if isinstance(rng, SeededRNG):
        return rng.child(label)
    return SeededRNG(derive_seed(int(rng), label), label=label)
