"""Shared utilities: deterministic RNG, validation helpers, text tables.

Every stochastic component in :mod:`repro` draws randomness through
:class:`repro.utils.rng.SeededRNG` so that a full pipeline run is
reproducible bit-for-bit from a single integer seed.
"""

from repro.utils.rng import SeededRNG, derive_seed, spawn_child
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability_vector,
)
from repro.utils.tables import TextTable, format_float, render_markdown_table

__all__ = [
    "SeededRNG",
    "derive_seed",
    "spawn_child",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability_vector",
    "TextTable",
    "format_float",
    "render_markdown_table",
]
