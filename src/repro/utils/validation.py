"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive)."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_probability_vector(name: str, probs: Sequence[float]) -> np.ndarray:
    """Validate and normalise a vector of non-negative weights summing to ~1."""
    arr = np.asarray(probs, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative, got {arr!r}")
    total = float(arr.sum())
    if total <= 0:
        raise ValueError(f"{name} must have positive sum, got {arr!r}")
    if abs(total - 1.0) > 1e-6:
        arr = arr / total
    return arr
