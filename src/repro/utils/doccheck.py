"""Lightweight doctest-style checker for the repository's markdown.

Documentation rots silently: a renamed flag or moved file breaks every
quickstart that mentions it, and nothing fails. This module keeps
``README.md`` and ``docs/*.md`` honest without executing anything
heavyweight:

* fenced ``python`` blocks must *compile* (syntax-checked, not run);
* every ``repro-cli ...`` / ``python -m repro.cli ...`` command inside
  fenced ``bash``/``shell``/``console`` blocks must parse against the
  real :func:`repro.cli.build_parser` — so the documented quickstart
  commands cannot drift from the argparse surface;
* relative markdown links must point at files that exist.

Run it directly (the CI docs job does)::

    PYTHONPATH=src python -m repro.utils.doccheck

Lines inside bash blocks that are comments, other tools (``pytest``,
``pip``), or output are ignored. A trailing ``# doccheck: skip`` on a
command line skips it explicitly.
"""

from __future__ import annotations

import contextlib
import io
import re
import shlex
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Fenced code block: ```lang\n ... \n```
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
#: Inline markdown link: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SHELL_LANGS = {"bash", "sh", "shell", "console"}
_SKIP_MARKER = "# doccheck: skip"


@dataclass(frozen=True)
class DocIssue:
    """One thing wrong with one documentation file."""

    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def extract_code_blocks(text: str) -> Iterator[tuple[str, int, str]]:
    """Yield ``(language, first_content_line, code)`` per fenced block."""
    language = None
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE_RE.match(line.strip())
        if match and language is None:
            language = match.group(1).lower()
            start = number + 1
            buffer = []
        elif line.strip() == "```" and language is not None:
            yield language, start, "\n".join(buffer)
            language = None
        elif language is not None:
            buffer.append(line)


def _cli_words(line: str) -> list[str] | None:
    """The argv for ``build_parser`` if this shell line invokes the CLI
    (``repro-cli ...`` or ``[ENV=...] python -m repro.cli ...``)."""
    try:
        words = shlex.split(line, comments=True)
    except ValueError:
        return None
    while words and "=" in words[0] and not words[0].startswith(("-", "/")):
        words = words[1:]  # strip ENV=value prefixes
    if not words:
        return None
    if words[0] == "repro-cli":
        return words[1:]
    if (len(words) >= 4 and Path(words[0]).name.startswith("python")
            and words[1] == "-m" and words[2] == "repro.cli"):
        return words[3:]
    return None


def check_python_block(path: str, line: int, code: str) -> list[DocIssue]:
    try:
        compile(code, f"{path}:{line}", "exec")
    except SyntaxError as error:
        return [DocIssue(path, line + (error.lineno or 1) - 1,
                         f"python block does not compile: {error.msg}")]
    return []


def check_shell_block(path: str, line: int, code: str) -> list[DocIssue]:
    from repro.cli import build_parser

    issues: list[DocIssue] = []
    pending = ""
    for offset, raw in enumerate(code.splitlines()):
        stripped = pending + raw.strip()
        pending = ""
        if stripped.endswith("\\"):
            pending = stripped[:-1] + " "
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.endswith(_SKIP_MARKER):
            continue
        # Console-style transcripts prefix commands with "$ ".
        if stripped.startswith("$ "):
            stripped = stripped[2:]
        argv = _cli_words(stripped)
        if argv is None:
            continue
        sink = io.StringIO()
        try:
            with contextlib.redirect_stderr(sink):
                build_parser().parse_args(argv)
        except SystemExit:
            detail = sink.getvalue().strip().splitlines()
            issues.append(DocIssue(
                path, line + offset,
                "documented CLI command does not parse: "
                f"{stripped!r}" + (f" ({detail[-1]})" if detail else ""),
            ))
    return issues


def check_links(path: Path, text: str, root: Path) -> list[DocIssue]:
    issues: list[DocIssue] = []
    for number, line in enumerate(text.splitlines(), start=1):
        for target in _LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.partition("#")[0]).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                issues.append(DocIssue(str(path), number,
                                       f"link escapes the repository: {target}"))
                continue
            if not resolved.exists():
                issues.append(DocIssue(str(path), number,
                                       f"broken link: {target}"))
    return issues


def check_file(path: Path, root: Path | None = None) -> list[DocIssue]:
    """Every check, one file."""
    root = root or path.parent
    text = path.read_text(encoding="utf-8")
    issues = check_links(path, text, root)
    for language, line, code in extract_code_blocks(text):
        if language == "python":
            issues.extend(check_python_block(str(path), line, code))
        elif language in _SHELL_LANGS:
            issues.extend(check_shell_block(str(path), line, code))
    return issues


def default_documents(root: Path) -> list[Path]:
    """The documentation set the CI docs job guards."""
    documents = [root / "README.md"]
    documents.extend(sorted((root / "docs").glob("*.md")))
    return [d for d in documents if d.exists()]


def check_documents(paths: Iterable[Path], root: Path) -> list[DocIssue]:
    issues: list[DocIssue] = []
    for path in paths:
        issues.extend(check_file(path, root))
    return issues


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path.cwd()
    paths = [Path(a) for a in args] if args else default_documents(root)
    if not paths:
        print("doccheck: no documentation files found", file=sys.stderr)
        return 2
    issues = check_documents(paths, root)
    for issue in issues:
        print(issue, file=sys.stderr)
    checked = ", ".join(str(p) for p in paths)
    if issues:
        print(f"doccheck: {len(issues)} issue(s) in {checked}",
              file=sys.stderr)
        return 1
    print(f"doccheck: OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
