"""Plain-text and markdown table rendering for paper-style reports.

The benchmark harness prints the same rows the paper reports; these
helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_float(value: float, digits: int = 4) -> str:
    """Format a metric value the way the paper prints it (e.g. ``0.8537``)."""
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}f}"


def render_markdown_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


class TextTable:
    """A fixed-width text table with column auto-sizing.

    >>> t = TextTable(["Dataset", "F1"])
    >>> t.add_row(["Mirai", "0.9354"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Dataset  F1
    -------  ------
    Mirai    0.9354
    """

    def __init__(self, header: Sequence[str], *, padding: int = 2) -> None:
        if not header:
            raise ValueError("header must not be empty")
        self.header = [str(h) for h in header]
        self.padding = padding
        self.rows: list[list[str]] = []

    def add_row(self, row: Sequence[object]) -> None:
        cells = [str(cell) for cell in row]
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.header)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        pad = " " * self.padding
        out = [
            pad.join(h.ljust(widths[i]) for i, h in enumerate(self.header)).rstrip(),
            pad.join("-" * widths[i] for i in range(len(widths))).rstrip(),
        ]
        for row in self.rows:
            out.append(
                pad.join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            )
        return "\n".join(out)
