"""Incremental flow assembly for the streaming path.

:class:`StreamingFlowTracker` is the push-based face of
:class:`~repro.flows.assembler.FlowAssembler`: one packet in, zero or
more *completed* flows out. Flow boundaries (idle timeout, active
timeout, TCP FIN/RST) are exactly the assembler's — the tracker is a
thin per-packet driver over the same state machine, so streaming and
batch flow exports agree flow-for-flow
(``tests/test_stream_tracker.py``).
"""

from __future__ import annotations

from typing import Iterable

from repro.flows.assembler import FlowAssembler
from repro.flows.record import FlowRecord
from repro.net.packet import Packet


class StreamingFlowTracker:
    """Per-packet flow eviction over the batch assembler's semantics."""

    def __init__(
        self, *, idle_timeout: float = 120.0, active_timeout: float = 3600.0
    ) -> None:
        self._assembler = FlowAssembler(
            idle_timeout=idle_timeout, active_timeout=active_timeout
        )
        self.packets_seen = 0
        self.flows_completed = 0

    def add(self, packet: Packet) -> list[FlowRecord]:
        """Consume one packet; return flows it completed (by closing
        them or by advancing time past another flow's timeout)."""
        self.packets_seen += 1
        completed = list(self._assembler.process((packet,)))
        self.flows_completed += len(completed)
        return completed

    def add_many(self, packets: Iterable[Packet]) -> list[FlowRecord]:
        """Consume a burst of packets (micro-batch convenience)."""
        completed: list[FlowRecord] = []
        for packet in packets:
            completed.extend(self.add(packet))
        return completed

    def flush(self) -> list[FlowRecord]:
        """Close and return every still-open flow (end of stream)."""
        remaining = list(self._assembler.flush())
        self.flows_completed += len(remaining)
        return remaining

    @property
    def open_flows(self) -> int:
        return self._assembler.open_flows

    @property
    def non_ip_packets(self) -> int:
        return self._assembler.non_ip_packets
