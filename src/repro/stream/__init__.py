"""Online streaming detection: live packet streams through the IDSs.

The batch pipeline (:mod:`repro.core`) materialises a dataset, adapts
it, then fits and scores in one shot. This package is the *push* mode
the evaluated systems were actually built for: a
:class:`~repro.stream.sources.PacketSource` feeds packets one at a time
into a :class:`~repro.stream.detector.StreamingDetector`, flows are
assembled incrementally (:class:`~repro.stream.tracker.StreamingFlowTracker`),
scores emerge in micro-batches, and sliding-window metrics
(:class:`~repro.stream.metrics.WindowedMetrics`) plus a hysteresis alert
sink (:class:`~repro.stream.alerts.HysteresisAlerter`) summarise the
stream as it runs.

Contract with the batch path: for the same packets, the streaming
scores are *bit-identical* to the batch pipeline's
(``tests/test_stream_parity.py``). See ``docs/STREAMING.md``.

:func:`~repro.stream.sharded.stream_capture_sharded` scales the live
path across worker processes — flow-consistent sharding
(:mod:`repro.stream.shard`), bounded-queue backpressure, and
checkpointed crash-resume — with a coverage digest that is invariant
across worker counts.

Capture replay additionally supports the ``columnar-mmap`` ingest
backend (:mod:`repro.net.columnar`): the capture is mmap'd and decoded
into column batches that feed batched feature extraction directly, with
no ``Packet`` objects on the hot path. Scores, features and coverage
digests are bit-identical to the packet-object path
(:func:`~repro.stream.service.resolve_ingest_backend` picks the
backend per session).
"""

from repro.stream.alerts import AlertEpisode, HysteresisAlerter
from repro.stream.detector import (
    FlowStreamDetector,
    PacketStreamDetector,
    StreamingDetector,
    StreamScore,
    build_streaming_detector,
    canonical_ids_name,
)
from repro.stream.metrics import WindowedMetrics, WindowSnapshot
from repro.stream.sources import (
    DatasetSource,
    ListSource,
    MixedSource,
    PacketSource,
    PcapReplaySource,
)
from repro.stream.tracker import StreamingFlowTracker
from repro.stream.service import (
    StreamReport,
    resolve_ingest_backend,
    stream_capture,
    stream_experiment,
)
from repro.stream.shard import (
    shard_for_packet,
    shard_ids_for_batch,
    shard_key_for_packet,
    shard_of_key,
)
from repro.stream.sharded import (
    FaultInjection,
    coverage_digest,
    stream_capture_sharded,
)

__all__ = [
    "AlertEpisode",
    "HysteresisAlerter",
    "FlowStreamDetector",
    "PacketStreamDetector",
    "StreamingDetector",
    "StreamScore",
    "build_streaming_detector",
    "canonical_ids_name",
    "WindowedMetrics",
    "WindowSnapshot",
    "DatasetSource",
    "ListSource",
    "MixedSource",
    "PacketSource",
    "PcapReplaySource",
    "StreamingFlowTracker",
    "StreamReport",
    "resolve_ingest_backend",
    "stream_capture",
    "stream_experiment",
    "shard_for_packet",
    "shard_ids_for_batch",
    "shard_key_for_packet",
    "shard_of_key",
    "FaultInjection",
    "coverage_digest",
    "stream_capture_sharded",
]
