"""Sliding-window evaluation over a live score stream.

:class:`WindowedMetrics` buckets scored items into fixed-width time
windows (aligned to the first timestamp seen) and renders, per window,
the alert rate plus — when the source carries ground truth — the four
Table IV metrics. Per-window and overall aggregates both go through
:func:`repro.core.metrics.metrics_from_counts`, the same zero-division
conventions as the batch pipeline (zero detections give precision =
recall = F1 = 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.metrics import MetricReport, metrics_from_counts
from repro.utils.validation import check_positive


@dataclass
class WindowSnapshot:
    """One closed time window's counts and metrics."""

    index: int
    start: float
    end: float
    items: int = 0
    alerts: int = 0
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0
    labelled_items: int = 0

    @property
    def alert_rate(self) -> float:
        return self.alerts / self.items if self.items else 0.0

    @property
    def report(self) -> MetricReport | None:
        """Table IV metrics for this window, or None if unlabelled."""
        if not self.labelled_items:
            return None
        return metrics_from_counts(self.tp, self.fp, self.tn, self.fn)

    def describe(self) -> str:
        line = (
            f"window {self.index:3d} [{self.start:10.2f}, {self.end:10.2f}) "
            f"items={self.items:6d} alerts={self.alerts:6d} "
            f"rate={self.alert_rate:6.1%}"
        )
        report = self.report
        if report is not None:
            line += (
                f" prec={report.precision:.4f} rec={report.recall:.4f} "
                f"f1={report.f1:.4f}"
            )
        return line

    def to_dict(self) -> dict:
        row = {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "items": self.items,
            "alerts": self.alerts,
            "alert_rate": self.alert_rate,
        }
        report = self.report
        if report is not None:
            row.update(
                accuracy=report.accuracy, precision=report.precision,
                recall=report.recall, f1=report.f1,
            )
        return row


class WindowedMetrics:
    """Rolling per-window confusion counts over stream time.

    Items must arrive in non-decreasing timestamp order (the source
    contract). A window closes when an item lands past its end;
    ``on_close`` fires with the closed snapshot — the CLI's live
    summary hook. Empty windows (gaps in traffic) are skipped rather
    than emitted as zero rows.
    """

    def __init__(
        self,
        window_seconds: float,
        *,
        on_close: Callable[[WindowSnapshot], None] | None = None,
    ) -> None:
        self.window_seconds = check_positive("window_seconds", window_seconds)
        self.on_close = on_close
        self._origin: float | None = None
        self._current: WindowSnapshot | None = None
        self.windows: list[WindowSnapshot] = []
        self.total_items = 0
        self.total_alerts = 0

    def add(self, timestamp: float, alerted: bool, label: int | None) -> None:
        """Record one scored item (``label=None`` for unlabelled)."""
        if self._origin is None:
            self._origin = timestamp
        index = int((timestamp - self._origin) // self.window_seconds)
        if self._current is not None and index > self._current.index:
            self._close_current()
        if self._current is None:
            start = self._origin + index * self.window_seconds
            self._current = WindowSnapshot(
                index=index, start=start, end=start + self.window_seconds
            )
        window = self._current
        window.items += 1
        self.total_items += 1
        if alerted:
            window.alerts += 1
            self.total_alerts += 1
        if label is not None:
            window.labelled_items += 1
            truth, pred = bool(label), bool(alerted)
            if truth and pred:
                window.tp += 1
            elif truth:
                window.fn += 1
            elif pred:
                window.fp += 1
            else:
                window.tn += 1

    def _close_current(self) -> None:
        assert self._current is not None
        self.windows.append(self._current)
        if self.on_close is not None:
            self.on_close(self._current)
        self._current = None

    def finalize(self) -> list[WindowSnapshot]:
        """Close the trailing window; return every window in order."""
        if self._current is not None:
            self._close_current()
        return self.windows

    @property
    def alert_rate(self) -> float:
        return self.total_alerts / self.total_items if self.total_items else 0.0

    def overall(self) -> MetricReport | None:
        """Whole-stream metrics (batch conventions), or None if no
        ground truth was ever seen. O(windows), not O(items): the
        per-window confusion counts are sufficient statistics, so a
        multi-hour live stream holds no per-item state."""
        snapshots = list(self.windows)
        if self._current is not None:
            snapshots.append(self._current)
        if not any(w.labelled_items for w in snapshots):
            return None
        return metrics_from_counts(
            sum(w.tp for w in snapshots),
            sum(w.fp for w in snapshots),
            sum(w.tn for w in snapshots),
            sum(w.fn for w in snapshots),
        )
