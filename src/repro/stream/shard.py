"""Deterministic flow-consistent shard assignment for packet streams.

The sharded streaming engine (:mod:`repro.stream.sharded`) splits one
packet stream across N worker processes, each owning its own NetStat +
detector state. For that split to preserve packet-IDS semantics, every
packet of a conversation must land on the same worker — AfterImage's
damped statistics are keyed by traffic aggregate, and an aggregate torn
across workers would evolve differently than in a single process.

The shard key is therefore the **canonical channel**: the unordered
pair of endpoint addresses (IPs when the packet has them — including
ARP sender/target — MACs otherwise). This is strictly coarser than the
bidirectional 5-tuple flow key, so:

* both directions of any 5-tuple map to the same shard (the flow-key
  invariant), and
* *all* sockets of a host pair stay together, so the Channel and
  Socket aggregations (70 of NetStat's 100 features) are bit-exact
  under sharding.

The remaining source-keyed aggregations (SrcMAC-IP, SrcIP; 30
features) are exact within a shard but see only the shard's share of a
source that talks to hosts in different shards — the documented
tolerance of the sharded mode (see ``docs/STREAMING.md``).

Assignment must be identical in every process, so hashing goes through
BLAKE2b, not Python's per-process-salted ``hash()``.
"""

from __future__ import annotations

import hashlib

from repro.net.packet import Packet

#: Shard-key kinds, in fallback order.
KEY_KIND_IP = "ip"
KEY_KIND_MAC = "mac"
KEY_KIND_NONE = "none"


def shard_key_for_packet(packet: Packet) -> tuple[str, str, str]:
    """The canonical channel key: ``(kind, endpoint_a, endpoint_b)``.

    Endpoints are sorted so both directions of a conversation produce
    the same key. IP-bearing packets (including ARP, whose
    sender/target IPs surface through ``Packet.src_ip``/``dst_ip``) key
    on the IP pair; bare L2 frames fall back to the MAC pair; a frame
    with neither maps to the constant ``none`` key (shard 0 territory —
    such frames carry no flow identity at all).
    """
    src_ip, dst_ip = packet.src_ip, packet.dst_ip
    if src_ip is not None or dst_ip is not None:
        a, b = sorted((src_ip or "0.0.0.0", dst_ip or "0.0.0.0"))
        return (KEY_KIND_IP, a, b)
    ether = packet.ether
    if ether is not None:
        a, b = sorted((ether.src_mac, ether.dst_mac))
        return (KEY_KIND_MAC, a, b)
    return (KEY_KIND_NONE, "", "")


def shard_of_key(key: tuple[str, str, str], n_shards: int) -> int:
    """Map a shard key to ``[0, n_shards)`` with a process-stable hash."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    digest = hashlib.blake2b(
        "|".join(key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_shards


def shard_for_packet(packet: Packet, n_shards: int) -> int:
    """Deterministic worker index for ``packet`` (flow-consistent)."""
    return shard_of_key(shard_key_for_packet(packet), n_shards)


def shard_ids_for_batch(batch, n_shards: int):
    """Per-row worker indices for a :class:`ColumnBatch`, vectorized.

    Computes :func:`shard_for_packet` once per *unique flow* (the
    batch's flow table) and broadcasts through the inverse index, so
    the per-row cost is one fancy-index gather instead of a hash. The
    key construction mirrors :func:`shard_key_for_packet` exactly —
    including the *string* sort of dotted-quad IPs — so a row shards
    identically whether it arrives as a packet object or a column.
    """
    import numpy as np

    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return np.zeros(len(batch), dtype=np.int64)
    inverse, flows = batch.flow_table()
    flow_shards = np.empty(len(flows), dtype=np.int64)
    for j, flow in enumerate(flows):
        if flow.ip_present:
            a, b = sorted((flow.src_ip, flow.dst_ip))
            key = (KEY_KIND_IP, a, b)
        elif flow.has_ether:
            a, b = sorted((flow.src_mac, flow.dst_mac))
            key = (KEY_KIND_MAC, a, b)
        else:
            key = (KEY_KIND_NONE, "", "")
        flow_shards[j] = shard_of_key(key, n_shards)
    return flow_shards[inverse]
