"""Sharded multi-process streaming: one source, N detector workers.

:func:`stream_capture_sharded` scales :func:`repro.stream.service.stream_capture`
across worker processes. The supervisor owns the
:class:`~repro.stream.sources.PacketSource`, trains the detector on the
warmup prefix exactly as the single-process path does, then fans the
scored phase out by canonical channel key
(:mod:`repro.stream.shard`) — every conversation lands wholly on one
worker, so each worker's NetStat + detector state evolves exactly as a
single process seeing only that traffic would. One merged, order-stable
alert sink consumes all workers' scores.

Operational surface:

* **Backpressure** — every queue is bounded. A slow worker blocks the
  supervisor's dispatch (which in turn stops consuming the source);
  a slow supervisor blocks workers' score puts. End-to-end memory is
  bounded by ``workers x (queue depth + checkpoint interval)`` packets;
  nothing buffers unboundedly.
* **Crash-resume** — workers periodically checkpoint their *entire*
  live state (model + NetStat traffic state + buffered micro-batch)
  through :mod:`repro.ids.persistence`. The supervisor retains each
  worker's packets since its last acknowledged checkpoint; a worker
  that dies (SIGKILL, OOM) is respawned from its newest valid on-disk
  checkpoint and replayed the retained packets. Scoring is
  deterministic, so the resumed run re-emits exactly the lost scores;
  duplicates of scores that survived the crash are dropped by index.
  The merged result is bit-identical to an uninterrupted run at the
  same worker count (``tests/test_stream_faultinject.py``).
* **Pacing** — ``pace=R`` replays the stream at R× capture time
  (1.0 = wall-clock realistic replay) instead of as fast as possible.
* **Telemetry** — per-worker packets, scores, busy seconds, checkpoint
  cadence/age, restarts, retention peaks; exported in the stream JSON.

A worker that *raises* (detector bug, malformed input) is fatal: the
error is propagated to the caller with the worker traceback — a
deterministic failure would simply recur under resume. Only process
*death* triggers crash-resume.

Fault injection (``fault=FaultInjection(...)``) is a first-class test
seam: kill/stall/slow a chosen worker at a chosen packet count,
deterministically. ``tests/faultinject.py`` builds the test harness on
top of it.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as queue_mod
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import backends, obs
from repro.core.thresholds import standard_threshold
from repro.ids.persistence import (
    latest_stream_checkpoint,
    prune_stream_checkpoints,
    save_stream_checkpoint,
)
from repro.net.columnar import ColumnBatch
from repro.net.packet import Packet
from repro.stream.detector import StreamingDetector, StreamScore
from repro.stream.service import (
    StreamReport,
    WindowCallback,
    _evaluate_stream,
    resolve_ingest_backend,
)
from repro.stream.shard import shard_for_packet, shard_ids_for_batch
from repro.stream.sources import PacketSource
from repro.utils.validation import check_positive

import hashlib

__all__ = [
    "FaultInjection",
    "WirePacket",
    "coverage_digest",
    "stream_capture_sharded",
]


# --------------------------------------------------------------------------
# Fault injection seam (driven by tests/faultinject.py).

_FAULT_ACTIONS = ("kill", "stall", "slow")


@dataclass(frozen=True)
class FaultInjection:
    """Deterministically disturb one worker at one packet count.

    ``at_packets`` counts the worker's *consumed* shard packets (1-based
    absolute cursor); the fault fires just before that packet is scored:

    * ``kill``  — SIGKILL the worker process (crash-resume path);
    * ``stall`` — sleep ``seconds`` once (backpressure path);
    * ``slow``  — sleep ``per_packet_delay`` before every packet from
      the trigger on (sustained backpressure).

    After a kill-triggered restart the supervisor drops the fault
    unless ``repeat_after_restart`` — with it, the worker dies at the
    same cursor every incarnation and the run exhausts
    ``max_restarts`` (the crash-loop test).
    """

    worker: int
    at_packets: int
    action: str = "kill"
    seconds: float = 0.0
    per_packet_delay: float = 0.0
    repeat_after_restart: bool = False

    def __post_init__(self) -> None:
        if self.action not in _FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"known: {', '.join(_FAULT_ACTIONS)}"
            )
        if self.at_packets < 1:
            raise ValueError("at_packets must be >= 1 (1-based cursor)")


# --------------------------------------------------------------------------
# Wire transport: the slim packet record crossing the process boundary.
#
# Pickling full Packet objects (five nested header dataclasses) costs
# ~15 us per packet on each side — enough to make the IPC hop the
# bottleneck. The packet-level detectors consume exactly seven fields
# (NetStat: timestamp, size, src MAC, IPs, ports; StreamScore: label,
# attack family), so only those cross the boundary, as primitive tuples
# that pickle ~5x faster. WirePacket duck-types Packet for that field
# set; bit parity with the in-process path is enforced by
# tests/test_stream_sharded.py.


class WirePacket:
    """A decoded wire record, duck-typing ``Packet`` for NetStat."""

    __slots__ = (
        "timestamp", "src_mac", "src_ip", "dst_ip",
        "src_port", "dst_port", "wire_len", "label", "attack_type",
    )

    def __init__(self, timestamp, src_mac, src_ip, dst_ip,
                 src_port, dst_port, wire_len, label, attack_type) -> None:
        self.timestamp = timestamp
        self.src_mac = src_mac
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.wire_len = wire_len
        self.label = label
        self.attack_type = attack_type

    @property
    def ether(self):
        # NetStat reads ``packet.ether.src_mac`` (guarding on None);
        # exposing self keeps that path allocation-free.
        return self if self.src_mac is not None else None

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def _rows_in(items: Sequence) -> int:
    """Row count of a dispatch/retention list: a column slice counts
    its rows, a wire tuple counts one."""
    return sum(
        len(item) if isinstance(item, ColumnBatch) else 1 for item in items
    )


def _encode_packet(packet: Packet) -> tuple:
    ether = packet.ether
    return (
        packet.timestamp,
        ether.src_mac if ether is not None else None,
        packet.src_ip,
        packet.dst_ip,
        packet.src_port,
        packet.dst_port,
        packet.wire_len,
        packet.label,
        packet.attack_type,
    )


def coverage_digest(emitted: Sequence[StreamScore]) -> str:
    """Worker-count-invariant digest over *which* items were scored.

    Hashes the sorted multiset of (timestamp, label, attack family) —
    the fields that come from the packets, not from the model — so it
    is identical across worker counts iff sharding lost or duplicated
    nothing. Scores are deliberately excluded: the source-keyed NetStat
    aggregations make scores shard-layout-dependent (the documented
    tolerance), while coverage must never be.
    """
    rows = sorted(
        (item.timestamp, -1 if item.label is None else item.label,
         item.attack_type)
        for item in emitted
    )
    digest = hashlib.sha256()
    for timestamp, label, attack_type in rows:
        digest.update(f"{timestamp!r}|{label}|{attack_type}\n".encode())
    return digest.hexdigest()


# --------------------------------------------------------------------------
# Worker process.


def _worker_main(worker_id, checkpoint_dir, inq, outq, fault,
                 keep_checkpoints) -> None:
    # Forked workers inherit the supervisor's registry contents (its
    # warmup-time training metrics); start from a clean slate so the
    # merged per-worker tree counts every event exactly once. run_id
    # and the enabled flag survive the reset — they describe the
    # invocation, not this process's metric state.
    registry = obs.reset_registry()
    consumed = -1
    try:
        found = latest_stream_checkpoint(checkpoint_dir, worker_id)
        if found is None:
            raise RuntimeError(
                f"worker {worker_id}: no valid checkpoint under "
                f"{checkpoint_dir}"
            )
        _, checkpoint = found
        detector = checkpoint.restore_detector()
        consumed = checkpoint.consumed
        slow_delay = 0.0
        m_packets = registry.counter("stream.worker.packets")
        m_items = registry.counter("stream.worker.items_scored")
        m_busy = registry.counter("stream.worker.busy_seconds")
        m_ckpts = registry.counter("stream.worker.checkpoints_written")
        # Crash-resume baselining: the counters describe the *logical*
        # worker, so a restarted incarnation resumes from the
        # checkpoint cursor instead of zero — merged per-worker packet
        # totals stay exactly equal to the packets the shard consumed,
        # replay or not.
        if consumed:
            m_packets.inc(consumed)
        if detector.items_scored:
            m_items.inc(detector.items_scored)
        obs_on = obs.is_enabled()
        chunk_hist = (
            registry.histogram("stream.worker.chunk_seconds")
            if obs_on else None
        )
        while True:
            message = inq.get()
            kind = message[0]
            if kind == "chunk":
                emitted: list[StreamScore] = []
                started = time.perf_counter()
                rows_consumed = 0
                for row in message[1]:
                    if isinstance(row, ColumnBatch):
                        # Column-slice IPC (columnar ingest): the whole
                        # slice scores in one batched call. Fault
                        # injection is per-packet and rejected up front
                        # for this mode.
                        consumed += len(row)
                        rows_consumed += len(row)
                        emitted.extend(detector.process_columns(row))
                        continue
                    consumed += 1
                    rows_consumed += 1
                    if fault is not None and consumed == fault.at_packets:
                        if fault.action == "kill":
                            os.kill(os.getpid(), signal.SIGKILL)
                        elif fault.action == "stall":
                            time.sleep(fault.seconds)
                        else:  # slow
                            slow_delay = fault.per_packet_delay
                    if slow_delay:
                        time.sleep(slow_delay)
                    emitted.extend(detector.process(WirePacket(*row)))
                elapsed = time.perf_counter() - started
                m_busy.inc(elapsed)
                m_packets.inc(rows_consumed)
                if chunk_hist is not None:
                    chunk_hist.observe(elapsed)
                if emitted:
                    m_items.inc(len(emitted))
                    outq.put(("scores", worker_id, emitted))
            elif kind == "ckpt":
                save_stream_checkpoint(
                    checkpoint_dir, detector,
                    worker_id=worker_id, consumed=consumed,
                )
                prune_stream_checkpoints(
                    checkpoint_dir, worker_id, keep=keep_checkpoints
                )
                m_ckpts.inc()
                # Piggyback a registry snapshot on the ack so the
                # supervisor's periodic exports carry fresh per-worker
                # trees (None when obs is off: no steady-state cost).
                outq.put(("ckpt_ok", worker_id, consumed,
                          obs.process_snapshot() if obs_on else None))
            elif kind == "eof":
                started = time.perf_counter()
                emitted = detector.finish()
                m_busy.inc(time.perf_counter() - started)
                if emitted:
                    m_items.inc(len(emitted))
                    outq.put(("scores", worker_id, emitted))
                outq.put(("done", worker_id, {
                    "consumed": consumed,
                    "items_scored": detector.items_scored,
                    "checkpoints_written": int(m_ckpts.value),
                    "busy_seconds": m_busy.value,
                }, obs.process_snapshot()))
                return
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown message kind {kind!r}")
    except BaseException:
        # Report, don't hang the merge queue: the supervisor treats a
        # worker exception as fatal and re-raises with this traceback.
        try:
            outq.put(("error", worker_id, consumed, traceback.format_exc()))
        finally:
            raise


# --------------------------------------------------------------------------
# Supervisor.


@dataclass
class _WorkerState:
    worker_id: int
    process: multiprocessing.Process | None = None
    inq: object = None
    outq: object = None
    sent: int = 0                 # absolute shard cursor dispatched
    next_ckpt_at: int = 0         # send a ckpt marker when sent crosses
    retained: list = field(default_factory=list)
    retained_base: int = 0        # shard cursor of retained[0]'s first row
    retained_rows: int = 0        # rows currently retained
    retained_peak: int = 0        # peak retained rows
    pending: list = field(default_factory=list)
    pending_rows: int = 0
    score_cursor: int = 0         # next expected StreamScore.index
    accepted: int = 0
    duplicates_dropped: int = 0
    restarts: int = 0
    fault: FaultInjection | None = None
    eof_sent: bool = False
    done: bool = False
    telemetry: dict = field(default_factory=dict)
    acked_consumed: int = 0
    obs_snapshot: dict | None = None  # latest registry snapshot shipped


class _WorkerFailed(RuntimeError):
    """A worker raised (as opposed to died); carries its traceback."""


def stream_capture_sharded(
    source: PacketSource,
    detector: StreamingDetector,
    *,
    workers: int,
    warmup_packets: int,
    threshold: float | None = None,
    window_seconds: float = 10.0,
    checkpoint_every: int = 5000,
    checkpoint_dir: str | Path | None = None,
    pace: float | None = None,
    chunk_packets: int = 256,
    queue_chunks: int = 8,
    max_restarts: int = 3,
    keep_checkpoints: int = 2,
    on_window: WindowCallback | None = None,
    fault: FaultInjection | None = None,
    exporter: "obs.SnapshotExporter | None" = None,
    ingest_backend: str | None = None,
) -> StreamReport:
    """Stream ``source`` through ``workers`` sharded detector processes.

    When ``exporter`` is given, obs is enabled for the run and periodic
    JSONL snapshots carry a per-worker metric tree (each worker ships
    its registry over the result queue; the supervisor folds them with
    :func:`repro.obs.merge_snapshots` under ``workers``/``merged``).

    Semantics match :func:`~repro.stream.service.stream_capture`: train
    on the first ``warmup_packets`` packets (in the supervisor — every
    worker starts from one identical warmed snapshot), score the rest.
    ``workers=1`` is bit-identical to the in-process path; at higher
    counts coverage is exact and scores follow the sharding tolerance
    documented in ``docs/STREAMING.md``.

    The ``detector`` object itself is *not* advanced past warmup — the
    workers own forked copies; the caller's instance stays at its
    post-warmup state.
    """
    workers = int(check_positive("workers", workers))
    checkpoint_every = int(check_positive("checkpoint_every", checkpoint_every))
    chunk_packets = int(check_positive("chunk_packets", chunk_packets))
    if warmup_packets < 0:
        raise ValueError(f"warmup_packets must be >= 0, got {warmup_packets}")
    if detector.unit != "packet":
        raise ValueError(
            "sharded streaming drives packet-level detectors; flow "
            f"detectors ({detector.unit!r} unit) accumulate cross-flow "
            "state that channel sharding does not preserve"
        )
    if threshold is None and not source.labelled:
        raise ValueError(
            "unlabelled sources need an explicit threshold "
            "(no ground truth to standardise against)"
        )
    if pace is not None and pace <= 0:
        raise ValueError(f"pace must be > 0, got {pace}")
    if fault is not None and not 0 <= fault.worker < workers:
        raise ValueError(
            f"fault targets worker {fault.worker}, but there are only "
            f"{workers} worker(s)"
        )
    resolved_ingest = resolve_ingest_backend(source, detector, ingest_backend)
    columnar = resolved_ingest == "columnar-mmap"
    if columnar and fault is not None:
        raise ValueError(
            "fault injection fires on per-packet cursors and cannot be "
            "combined with the columnar ingest backend (column slices "
            "cross the worker boundary whole)"
        )
    if columnar and pace is not None:
        raise ValueError(
            "pace replays per-packet timestamps and cannot be combined "
            "with the columnar ingest backend"
        )

    if exporter is not None and not obs.is_enabled():
        obs.enable()

    created_dir = checkpoint_dir is None
    if created_dir:
        checkpoint_dir = tempfile.mkdtemp(prefix="repro-stream-ckpt-")
    checkpoint_dir = Path(checkpoint_dir)

    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    # ---- Phase 1: warmup, exactly as the single-process path. --------
    # Columnar mode hydrates the warmup prefix out of column batches
    # (training wants full packets, once, off the hot path) and keeps
    # the first live slice for dispatch.
    prefix: list[Packet] = []
    stream = None
    batch_stream = None
    leftover: ColumnBatch | None = None
    if columnar:
        batch_stream = source.iter_batches()
        for batch in batch_stream:
            if len(prefix) >= warmup_packets:
                leftover = batch
                break
            take = min(warmup_packets - len(prefix), len(batch))
            prefix.extend(batch.hydrate_range(0, take))
            if take < len(batch):
                leftover = batch.slice(take, len(batch))
                break
    else:
        stream = iter(source)
        while len(prefix) < warmup_packets:
            try:
                prefix.append(next(stream))
            except StopIteration:
                break
    warmup_start = time.perf_counter()
    with obs.span("stream.warmup"):
        detector.warmup(prefix)
    warmup_seconds = time.perf_counter() - warmup_start

    # ---- Phase 2: genesis checkpoints + spawn. -----------------------
    states = [_WorkerState(worker_id=i) for i in range(workers)]
    for state in states:
        save_stream_checkpoint(
            checkpoint_dir, detector,
            worker_id=state.worker_id, consumed=0,
            meta={"genesis": True},
        )
        state.next_ckpt_at = checkpoint_every
        if fault is not None and state.worker_id == fault.worker:
            state.fault = fault
    merged: list[tuple[int, StreamScore]] = []
    # Supervisor-side telemetry lives in the obs registry (always on —
    # these are chunk-, ack- and restart-frequency events, far off the
    # per-packet hot path). ``send_stalls`` in the report notes is read
    # back from the counter, bit-compatible with the old nonlocal int.
    registry = obs.get_registry()
    m_stalls = registry.counter("stream.shard.send_stalls")
    m_dispatched = registry.counter("stream.shard.packets_dispatched")
    m_replayed = registry.counter("stream.shard.packets_replayed")
    m_restarts = registry.counter("stream.shard.worker_restarts")
    m_ckpt_acks = registry.counter("stream.shard.checkpoints_acked")
    m_dups = registry.counter("stream.shard.duplicate_scores_dropped")
    registry.gauge("stream.shard.workers_n").set(workers)

    def _obs_tree() -> dict:
        worker_snaps = {
            str(state.worker_id): state.obs_snapshot
            for state in states if state.obs_snapshot is not None
        }
        tree: dict = {"workers": worker_snaps}
        if worker_snaps:
            tree["merged"] = obs.merge_snapshots(list(worker_snaps.values()))
        return tree

    def _handle(message) -> None:
        kind = message[0]
        if kind == "scores":
            _, worker_id, scores = message
            state = states[worker_id]
            for item in scores:
                if item.index < state.score_cursor:
                    state.duplicates_dropped += 1
                    m_dups.inc()
                    continue
                state.score_cursor = item.index + 1
                state.accepted += 1
                merged.append((worker_id, item))
        elif kind == "ckpt_ok":
            _, worker_id, consumed, snapshot = message
            state = states[worker_id]
            if consumed > state.retained_base:
                _trim_retained(state, consumed)
            state.acked_consumed = max(state.acked_consumed, consumed)
            m_ckpt_acks.inc()
            if snapshot is not None:
                state.obs_snapshot = snapshot
        elif kind == "done":
            _, worker_id, telemetry, snapshot = message
            states[worker_id].done = True
            states[worker_id].telemetry = telemetry
            states[worker_id].obs_snapshot = snapshot
        elif kind == "error":
            _, worker_id, consumed, trace = message
            raise _WorkerFailed(
                f"stream worker {worker_id} failed at shard packet "
                f"{consumed}:\n{trace}"
            )

    def _trim_retained(state: _WorkerState, consumed: int) -> None:
        # Drop retained rows up to the acked cursor. Wire tuples are
        # one row each; a column slice may straddle the cursor, in
        # which case its tail is kept as a view.
        drop = consumed - state.retained_base
        retained = state.retained
        index = 0
        while index < len(retained) and drop > 0:
            item = retained[index]
            size = len(item) if isinstance(item, ColumnBatch) else 1
            if size <= drop:
                drop -= size
                index += 1
            else:
                retained[index] = item.slice(drop, size)
                drop = 0
        if index:
            del retained[:index]
        state.retained_rows -= consumed - state.retained_base
        state.retained_base = consumed

    def _retained_since(state: _WorkerState, resume_from: int) -> list:
        # The replay slice from an absolute shard-row cursor, again
        # splitting a straddling column slice on its row boundary.
        skip = resume_from - state.retained_base
        if skip <= 0:
            return list(state.retained)
        replay: list = []
        for item in state.retained:
            size = len(item) if isinstance(item, ColumnBatch) else 1
            if skip >= size:
                skip -= size
                continue
            if skip:
                replay.append(item.slice(skip, size))
                skip = 0
            else:
                replay.append(item)
        return replay

    def _pump() -> None:
        # Each worker has its own result queue, so a killed worker can
        # only ever corrupt its own channel, never a sibling's.
        for state in states:
            if state.outq is None or state.done:
                continue
            while True:
                try:
                    message = state.outq.get_nowait()
                except queue_mod.Empty:
                    break
                _handle(message)

    def _spawn(state: _WorkerState) -> None:
        state.inq = ctx.Queue(maxsize=queue_chunks)
        state.outq = ctx.Queue(maxsize=max(4, queue_chunks))
        state.process = ctx.Process(
            target=_worker_main,
            args=(state.worker_id, checkpoint_dir, state.inq, state.outq,
                  state.fault, keep_checkpoints),
            daemon=True,
        )
        state.process.start()

    def _on_death(state: _WorkerState) -> None:
        exitcode = state.process.exitcode
        state.process.join()
        if exitcode is not None and exitcode >= 0:
            # Graceful interpreter unwind: the queue feeder flushed
            # completely, so the tail is safe to read — it carries the
            # worker's error report (fatal) or its done message.
            while True:
                try:
                    _handle(state.outq.get(timeout=0.2))
                except queue_mod.Empty:
                    break
            if state.done:
                return
        # SIGKILLed (or died without a report). The dead incarnation
        # may have been cut off mid-write, so its queue tail is not
        # trustworthy: discard it unread. Replay re-emits any scores we
        # never accepted, and the dedup cursor drops the rest.
        state.outq.cancel_join_thread()
        _restart(state)

    def _restart(state: _WorkerState) -> None:
        state.restarts += 1
        m_restarts.inc()
        if state.restarts > max_restarts:
            raise RuntimeError(
                f"stream worker {state.worker_id} died "
                f"{state.restarts} times (max_restarts={max_restarts}); "
                "giving up"
            )
        state.inq.cancel_join_thread()
        found = latest_stream_checkpoint(checkpoint_dir, state.worker_id)
        assert found is not None, "genesis checkpoint must exist"
        _, checkpoint = found
        resume_from = checkpoint.consumed
        # The fault fires on an absolute cursor the replay will cross
        # again; drop it unless the test asked for a crash loop.
        if state.fault is not None and not state.fault.repeat_after_restart:
            state.fault = None
        _spawn(state)
        # Replay retention from the checkpoint cursor. Retention covers
        # [retained_base, sent) and the checkpoint can only be newer
        # than the last *acked* one, so the slice is always in range.
        replay = _retained_since(state, resume_from)
        m_replayed.inc(_rows_in(replay))
        was_eof = state.eof_sent
        state.sent = resume_from
        state.next_ckpt_at = (
            resume_from // checkpoint_every + 1
        ) * checkpoint_every
        state.eof_sent = False
        for start in range(0, len(replay), chunk_packets):
            _dispatch(state, replay[start:start + chunk_packets],
                      retain=False)
        if was_eof:
            _send(state, ("eof",))
            state.eof_sent = True

    def _send(state: _WorkerState, message) -> None:
        while True:
            try:
                state.inq.put(message, timeout=0.05)
                return
            except queue_mod.Full:
                m_stalls.inc()
                _pump()
                if state.process.exitcode is not None and not state.done:
                    _on_death(state)

    def _dispatch(state: _WorkerState, rows: list, *, retain: bool) -> None:
        _send(state, ("chunk", rows))
        n_rows = _rows_in(rows)
        if retain:
            m_dispatched.inc(n_rows)
            state.retained.extend(rows)
            state.retained_rows += n_rows
            state.retained_peak = max(state.retained_peak,
                                      state.retained_rows)
        state.sent += n_rows
        while state.sent >= state.next_ckpt_at:
            _send(state, ("ckpt",))
            state.next_ckpt_at += checkpoint_every

    def _flush_pending(state: _WorkerState) -> None:
        if state.pending:
            rows, state.pending = state.pending, []
            state.pending_rows = 0
            _dispatch(state, rows, retain=True)

    def _check_liveness() -> None:
        for state in states:
            if (state.process is not None and not state.done
                    and state.process.exitcode is not None):
                _on_death(state)

    packets_streamed = 0
    stream_start: float | None = None
    pace_origin: float | None = None

    try:
        for state in states:
            _spawn(state)

        # ---- Phase 3: dispatch. --------------------------------------
        if columnar:
            # Column-slice IPC: shard ids come vectorized off the flow
            # table; each worker's rows cross the boundary as one
            # compact column slice (``take`` drops hydration sources,
            # so a slice pickles as bare arrays).
            import itertools

            batches = itertools.chain(
                [leftover] if leftover is not None else [], batch_stream
            )
            for batch in batches:
                if stream_start is None:
                    stream_start = time.perf_counter()
                shard_ids = shard_ids_for_batch(batch, workers)
                packets_streamed += len(batch)
                for state in states:
                    selected = np.nonzero(shard_ids == state.worker_id)[0]
                    if selected.size == 0:
                        continue
                    state.pending.append(batch.take(selected))
                    state.pending_rows += int(selected.size)
                    if state.pending_rows >= chunk_packets:
                        _flush_pending(state)
                        _pump()
                        if exporter is not None:
                            exporter.maybe_export(_obs_tree)
        else:
            for packet in stream:
                if stream_start is None:
                    stream_start = time.perf_counter()
                if pace is not None:
                    if pace_origin is None:
                        pace_origin = packet.timestamp
                    target = (
                        stream_start + (packet.timestamp - pace_origin) / pace
                    )
                    delay = target - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                state = states[shard_for_packet(packet, workers)]
                state.pending.append(_encode_packet(packet))
                state.pending_rows += 1
                packets_streamed += 1
                if state.pending_rows >= chunk_packets:
                    _flush_pending(state)
                    _pump()
                    if exporter is not None:
                        exporter.maybe_export(_obs_tree)
        if stream_start is None:
            stream_start = time.perf_counter()

        # ---- Phase 4: EOF + drain. -----------------------------------
        for state in states:
            _flush_pending(state)
            _send(state, ("eof",))
            state.eof_sent = True
        while not all(state.done for state in states):
            _pump()
            _check_liveness()
            if exporter is not None:
                exporter.maybe_export(_obs_tree)
            if not all(state.done for state in states):
                time.sleep(0.005)
        stream_seconds = time.perf_counter() - stream_start
        for state in states:
            state.process.join()
    except _WorkerFailed as error:
        raise RuntimeError(str(error)) from None
    finally:
        for state in states:
            process = state.process
            if process is not None and process.exitcode is None:
                process.terminate()
                process.join(timeout=2.0)
                if process.exitcode is None:  # pragma: no cover
                    process.kill()
                    process.join()
        for state in states:
            if state.inq is not None:
                state.inq.cancel_join_thread()
            if state.outq is not None:
                state.outq.cancel_join_thread()

    # ---- Phase 5: merge into one order-stable sink. ------------------
    # Sort key (timestamp, shard, per-worker index) is deterministic
    # across runs and across crash-resume: per-worker order is the
    # worker's deterministic emission order, and cross-worker ties
    # break by shard id.
    merged.sort(key=lambda pair: (pair[1].timestamp, pair[0], pair[1].index))
    emitted = [
        dataclasses.replace(item, index=position)
        for position, (_, item) in enumerate(merged)
    ]

    scores = np.array([item.score for item in emitted], dtype=np.float64)
    labelled = source.labelled
    y_true = (
        np.array([item.label for item in emitted], dtype=int)
        if labelled else None
    )
    if threshold is None:
        assert y_true is not None
        resolved = standard_threshold(y_true, scores, strategy="fpr-budget")
        threshold_source = "posthoc:fpr-budget"
    else:
        resolved = float(threshold)
        threshold_source = "fixed"

    windows, alerter = _evaluate_stream(
        emitted,
        labelled=labelled,
        threshold=resolved,
        window_seconds=window_seconds,
        on_window=on_window,
    )

    worker_rows = []
    for state in states:
        consumed = state.telemetry.get("consumed", 0)
        busy = state.telemetry.get("busy_seconds", 0.0)
        worker_rows.append({
            "worker": state.worker_id,
            "packets": consumed,
            "items_scored": state.telemetry.get("items_scored", 0),
            # A shard that saw no packets has no meaningful rate; None
            # (JSON null) instead of a misleading 0.0 pps.
            "pps": consumed / busy if consumed and busy > 0 else None,
            "busy_seconds": busy,
            "checkpoints_written": state.telemetry.get(
                "checkpoints_written", 0),
            "checkpoint_age_packets": consumed - state.acked_consumed,
            "restarts": state.restarts,
            "duplicate_scores_dropped": state.duplicates_dropped,
            "retained_peak": state.retained_peak,
        })
    registry.gauge("stream.shard.retained_peak").set(
        max((state.retained_peak for state in states), default=0)
    )

    if exporter is not None:
        exporter.export(_obs_tree())

    if created_dir:
        # Successful run: the scratch checkpoints have served their
        # purpose. An explicit --checkpoint-dir is always kept.
        for entry in checkpoint_dir.iterdir():
            entry.unlink()
        checkpoint_dir.rmdir()

    return StreamReport(
        ids_name=getattr(detector, "ids", detector).name,
        source=source.describe(),
        unit=detector.unit,
        labelled=labelled,
        batch_size=detector.batch_size,
        window_seconds=window_seconds,
        threshold=resolved,
        threshold_source=threshold_source,
        n_warmup=len(prefix),
        n_scored=len(emitted),
        packets_streamed=packets_streamed,
        warmup_seconds=warmup_seconds,
        stream_seconds=stream_seconds,
        metrics=windows.overall(),
        alert_rate=windows.alert_rate,
        windows=windows.windows,
        alerts=alerter.episodes,
        scores=scores,
        y_true=y_true,
        notes={
            "scoring_path": detector.scoring_path,
            "ingest_backend": resolved_ingest,
            # The compute backends the supervisor's detector template
            # resolved to; every worker clones the same template.
            **backends.backend_notes(getattr(detector, "ids", None)),
            "sharded": True,
            "workers_n": workers,
            "shard_key": "canonical-channel",
            "checkpoint_every": checkpoint_every,
            "chunk_packets": chunk_packets,
            "pace": pace,
            "send_stalls": int(m_stalls.value),
            "run_id": obs.run_id(),
            "coverage_digest": coverage_digest(emitted),
            "merged_score_digest": hashlib.sha256(
                scores.tobytes()).hexdigest(),
            "workers": worker_rows,
        },
    )
