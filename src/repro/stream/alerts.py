"""Alerting over a live score stream, with threshold hysteresis.

A raw per-item threshold fires one alert per packet during an attack —
thousands of alerts for one event. :class:`HysteresisAlerter` collapses
them into *episodes*: an episode opens when the score crosses the
threshold and stays open until the score falls below a lower release
level (``threshold * release_ratio``). The gap between the two levels
absorbs score flutter around the boundary, the classic Schmitt-trigger
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction


@dataclass
class AlertEpisode:
    """One contiguous run of alert-level scores."""

    start: float
    end: float
    items: int
    peak_score: float
    peak_timestamp: float
    #: Most common attack family among labelled items in the episode
    #: (empty for unlabelled sources or benign false alarms).
    attack_type: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def describe(self) -> str:
        label = f" [{self.attack_type}]" if self.attack_type else ""
        return (
            f"alert [{self.start:10.2f}, {self.end:10.2f}] "
            f"items={self.items:6d} peak={self.peak_score:.4f}{label}"
        )

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "items": self.items,
            "peak_score": self.peak_score,
            "peak_timestamp": self.peak_timestamp,
            "attack_type": self.attack_type,
        }


class HysteresisAlerter:
    """Schmitt-trigger episode detection over (timestamp, score) items."""

    def __init__(self, threshold: float, *, release_ratio: float = 0.8) -> None:
        check_fraction("release_ratio", release_ratio)
        self.threshold = float(threshold)
        # For non-positive thresholds (fully-degenerate score streams)
        # the release level coincides with the threshold: scaling a
        # non-positive number would *raise* the release point.
        self.release = (
            self.threshold * release_ratio if self.threshold > 0
            else self.threshold
        )
        self.episodes: list[AlertEpisode] = []
        self._active: AlertEpisode | None = None
        self._attack_counts: dict[str, int] = {}

    @property
    def active(self) -> bool:
        return self._active is not None

    def update(
        self,
        timestamp: float,
        score: float,
        *,
        attack_type: str = "",
    ) -> AlertEpisode | None:
        """Feed one scored item; return an episode iff this item closed
        one."""
        if self._active is None:
            if score >= self.threshold:
                self._active = AlertEpisode(
                    start=timestamp, end=timestamp, items=1,
                    peak_score=score, peak_timestamp=timestamp,
                )
                self._attack_counts = {}
                if attack_type:
                    self._attack_counts[attack_type] = 1
            return None
        if score < self.release:
            return self._close()
        episode = self._active
        episode.end = timestamp
        episode.items += 1
        if score > episode.peak_score:
            episode.peak_score = score
            episode.peak_timestamp = timestamp
        if attack_type:
            self._attack_counts[attack_type] = (
                self._attack_counts.get(attack_type, 0) + 1
            )
        return None

    def finish(self) -> AlertEpisode | None:
        """Close any episode still open at end of stream."""
        if self._active is None:
            return None
        return self._close()

    def _close(self) -> AlertEpisode:
        assert self._active is not None
        episode = self._active
        if self._attack_counts:
            episode.attack_type = max(
                self._attack_counts.items(), key=lambda kv: (kv[1], kv[0])
            )[0]
        self.episodes.append(episode)
        self._active = None
        self._attack_counts = {}
        return episode
