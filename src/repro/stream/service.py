"""The streaming session: source → detector → windows → alerts.

Two entry points:

* :func:`stream_experiment` — the parity-bearing path. It adapts a
  dataset exactly as the batch pipeline does (same
  :func:`~repro.core.experiment.build_packet_cell` /
  :func:`~repro.core.experiment.build_flow_cell` substrate, same RNG
  derivations), trains on the prefix, then pushes the test stream
  through a :class:`~repro.stream.detector.StreamingDetector`. For the
  same config, its per-item scores are bit-identical to
  :func:`~repro.core.experiment.run_experiment` for the packet IDSs —
  streaming is an execution mode, not a different experiment.
* :func:`stream_capture` — the live path: any
  :class:`~repro.stream.sources.PacketSource` (pcap replay, synthetic
  generator, multi-attack mix), train-on-first-N packets, score the
  rest. Unlabelled sources report alert rates only.

Both produce a :class:`StreamReport`: overall metrics, per-window
snapshots, alert episodes and throughput, JSON-exportable for CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import backends, obs
from repro.core.experiment import (
    ExperimentConfig,
    build_flow_cell,
    build_packet_cell,
    cross_corpus_requirement,
    experiment_input_kind,
)
from repro.core.metrics import MetricReport
from repro.core.thresholds import standard_threshold
from repro.ids.base import InputKind
from repro.stream.alerts import AlertEpisode, HysteresisAlerter
from repro.stream.detector import (
    FlowStreamDetector,
    PacketStreamDetector,
    StreamingDetector,
    StreamScore,
)
from repro.stream.metrics import WindowedMetrics, WindowSnapshot
from repro.stream.sources import PacketSource
from repro.net.packet import Packet

#: Fired with each closed window — the CLI's live summary hook.
WindowCallback = Callable[[WindowSnapshot], None]


@dataclass
class StreamReport:
    """Everything one streaming session produced."""

    ids_name: str
    source: str
    unit: str  # "packet" | "flow"
    labelled: bool
    batch_size: int
    window_seconds: float
    threshold: float
    threshold_source: str  # "fixed" | "posthoc:<strategy>"
    n_warmup: int
    n_scored: int
    packets_streamed: int
    warmup_seconds: float
    stream_seconds: float
    metrics: MetricReport | None
    alert_rate: float
    windows: list[WindowSnapshot]
    alerts: list[AlertEpisode]
    scores: np.ndarray
    y_true: np.ndarray | None
    notes: dict = field(default_factory=dict)

    @property
    def packets_per_second(self) -> float:
        """Streamed packets over scoring wall time (the bench metric)."""
        if self.stream_seconds <= 0:
            return 0.0
        return self.packets_streamed / self.stream_seconds

    @property
    def items_per_second(self) -> float:
        if self.stream_seconds <= 0:
            return 0.0
        return self.n_scored / self.stream_seconds

    def to_dict(self, *, include_scores: bool = False) -> dict:
        """JSON-serialisable report (the ``--json`` artefact)."""
        payload = {
            "ids": self.ids_name,
            "source": self.source,
            "unit": self.unit,
            "labelled": self.labelled,
            "batch_size": self.batch_size,
            "window_seconds": self.window_seconds,
            "threshold": self.threshold,
            "threshold_source": self.threshold_source,
            "n_warmup": self.n_warmup,
            "n_scored": self.n_scored,
            "packets_streamed": self.packets_streamed,
            "warmup_seconds": self.warmup_seconds,
            "stream_seconds": self.stream_seconds,
            "packets_per_second": self.packets_per_second,
            "items_per_second": self.items_per_second,
            "alert_rate": self.alert_rate,
            "metrics": None,
            "windows": [w.to_dict() for w in self.windows],
            "alerts": [a.to_dict() for a in self.alerts],
            "notes": {k: _jsonable(v) for k, v in self.notes.items()},
        }
        if self.metrics is not None:
            m = self.metrics
            payload["metrics"] = {
                "accuracy": m.accuracy, "precision": m.precision,
                "recall": m.recall, "f1": m.f1,
                "tp": m.tp, "fp": m.fp, "tn": m.tn, "fn": m.fn,
            }
        if self.scores.size:
            payload["score_stats"] = {
                "min": float(self.scores.min()),
                "max": float(self.scores.max()),
                "mean": float(self.scores.mean()),
            }
        if include_scores:
            payload["scores"] = [float(s) for s in self.scores]
        return payload

    def render_summary(self) -> str:
        """The CLI's end-of-stream text block."""
        scoring = self.notes.get("scoring_path")
        lines = [
            f"stream: {self.ids_name} over {self.source}",
            f"  scored {self.n_scored} {self.unit}s "
            f"({self.packets_streamed} packets) in "
            f"{self.stream_seconds:.2f}s — "
            f"{self.packets_per_second:,.0f} pkt/s, warmup on "
            f"{self.n_warmup} item(s) in {self.warmup_seconds:.2f}s"
            + (f", {scoring} scoring" if scoring else ""),
            f"  threshold {self.threshold:.6f} ({self.threshold_source}); "
            f"alert rate {self.alert_rate:.1%} across "
            f"{len(self.windows)} windows, {len(self.alerts)} alert "
            f"episode(s)",
        ]
        if self.metrics is not None:
            m = self.metrics
            lines.append(
                f"  accuracy {m.accuracy:.4f}  precision {m.precision:.4f}"
                f"  recall {m.recall:.4f}  f1 {m.f1:.4f}"
            )
        else:
            lines.append("  (unlabelled source: alert rates only)")
        for episode in self.alerts[:10]:
            lines.append("  " + episode.describe())
        if len(self.alerts) > 10:
            lines.append(f"  ... {len(self.alerts) - 10} more episode(s)")
        return "\n".join(lines)


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return value


def _evaluate_stream(
    emitted: list[StreamScore],
    *,
    labelled: bool,
    threshold: float,
    window_seconds: float,
    on_window: WindowCallback | None,
) -> tuple[WindowedMetrics, HysteresisAlerter]:
    """Replay emitted scores through the window/alert consumers.

    Items are replayed in timestamp order: flow scores are emitted in
    *completion* order, where a long-lived flow's end time can precede
    an already-emitted short flow's — but windowed metrics and episode
    boundaries are defined over stream time, and both consumers require
    non-decreasing timestamps. The sort is stable on emission index, so
    packet streams (already monotonic) replay unchanged.
    """
    windows = WindowedMetrics(window_seconds, on_close=on_window)
    alerter = HysteresisAlerter(threshold)
    for item in sorted(emitted, key=lambda it: (it.timestamp, it.index)):
        alerted = item.score >= threshold
        label = item.label if labelled else None
        windows.add(item.timestamp, alerted, label)
        alerter.update(item.timestamp, item.score,
                       attack_type=item.attack_type if alerted else "")
    windows.finalize()
    alerter.finish()
    return windows, alerter


def _resolve_threshold(
    config: ExperimentConfig,
    y_true: np.ndarray,
    scores: np.ndarray,
) -> float:
    """The batch pipeline's standardized threshold over the streamed
    scores — identical inputs, identical cut point."""
    return standard_threshold(
        y_true,
        scores,
        strategy=config.threshold_strategy,
        max_fpr=config.max_fpr,
        lambda_fpr=config.lambda_fpr,
        fixed_value=config.fixed_threshold,
    )


def stream_experiment(
    config: ExperimentConfig,
    *,
    batch_size: int = 256,
    window_seconds: float = 10.0,
    threshold: float | None = None,
    dataset_provider=None,
    on_window: WindowCallback | None = None,
    exporter: "obs.SnapshotExporter | None" = None,
) -> StreamReport:
    """Run one Table IV cell as an online streaming session.

    The dataset is adapted exactly as the batch path adapts it; the
    test stream is then scored through micro-batched online processing.
    With ``threshold=None`` the standardized batch threshold is applied
    post hoc, so the final metrics coincide with the batch cell's.

    ``exporter`` (a :class:`repro.obs.SnapshotExporter`) enables the
    metrics registry and emits periodic snapshots at micro-batch
    boundaries plus one final snapshot.
    """
    if exporter is not None and not obs.is_enabled():
        obs.enable()
    from repro.datasets import generate_dataset

    provider = dataset_provider or generate_dataset
    dataset = provider(config.dataset_name, seed=config.seed, scale=config.scale)
    kind = experiment_input_kind(config)

    if kind is InputKind.PACKET:
        ids, data = build_packet_cell(config, dataset)
        detector: StreamingDetector = PacketStreamDetector(
            ids, batch_size=batch_size
        )
        train_items = data.train_packets
        stream_items = data.test_packets
        feed = detector.process
    else:
        train_dataset = None
        requirement = cross_corpus_requirement(config)
        if requirement is not None:
            cc_name, cc_seed, cc_scale = requirement
            train_dataset = provider(cc_name, seed=cc_seed, scale=cc_scale)
        ids, data = build_flow_cell(config, dataset, train_dataset)
        flow_detector = FlowStreamDetector(
            ids,
            schema=config.schema,
            batch_size=batch_size,
            encoder=data.encoder,
        )
        detector = flow_detector
        train_items = data.train_flows
        stream_items = data.test_flows
        feed = flow_detector.process_flow

    warmup_start = time.perf_counter()
    with obs.span("stream.warmup"):
        if kind is InputKind.PACKET:
            detector.warmup(train_items)
        else:
            flow_detector.warmup_flows(
                data.train_flows, data.train_features, data.train_labels
            )
    warmup_seconds = time.perf_counter() - warmup_start

    emitted: list[StreamScore] = []
    stream_start = time.perf_counter()
    for item in stream_items:
        released = feed(item)
        if released:
            emitted.extend(released)
            if exporter is not None:
                exporter.maybe_export()
    emitted.extend(detector.finish())
    stream_seconds = time.perf_counter() - stream_start

    scores = np.array([item.score for item in emitted], dtype=np.float64)
    y_true = data.y_true
    if threshold is None:
        resolved = _resolve_threshold(config, y_true, scores)
        threshold_source = f"posthoc:{config.threshold_strategy}"
    else:
        resolved = float(threshold)
        threshold_source = "fixed"

    windows, alerter = _evaluate_stream(
        emitted,
        labelled=True,
        threshold=resolved,
        window_seconds=window_seconds,
        on_window=on_window,
    )
    packets_streamed = (
        len(stream_items) if kind is InputKind.PACKET
        else sum(flow.total_packets for flow in stream_items)
    )
    if obs.is_enabled():
        registry = obs.get_registry()
        registry.counter("stream.packets_streamed").inc(packets_streamed)
        registry.counter("stream.items_scored").inc(len(emitted))
        registry.gauge("stream.warmup_items").set(len(train_items))
    notes = dict(data.notes)
    notes["seed"] = config.seed
    notes["scale"] = config.scale
    notes["scoring_path"] = detector.scoring_path
    notes.update(backends.backend_notes(ids))
    notes["run_id"] = obs.run_id()
    if exporter is not None:
        exporter.export()
    return StreamReport(
        ids_name=config.ids_name,
        source=f"dataset:{config.dataset_name} "
               f"(seed={config.seed}, scale={config.scale})",
        unit=detector.unit,
        labelled=True,
        batch_size=batch_size,
        window_seconds=window_seconds,
        threshold=resolved,
        threshold_source=threshold_source,
        n_warmup=len(train_items),
        n_scored=len(emitted),
        packets_streamed=packets_streamed,
        warmup_seconds=warmup_seconds,
        stream_seconds=stream_seconds,
        metrics=windows.overall(),
        alert_rate=windows.alert_rate,
        windows=windows.windows,
        alerts=alerter.episodes,
        scores=scores,
        y_true=y_true,
        notes=notes,
    )


def resolve_ingest_backend(
    source: PacketSource,
    detector: StreamingDetector,
    ingest_backend: str | None,
) -> str:
    """Resolve the ingest backend one streaming session will use.

    ``None`` keeps the packet-object path (status quo). ``"auto"``
    picks the registry's best backend but quietly falls back to
    packet objects when the source cannot produce column batches or
    the detector is flow-level (columns carry no payloads to assemble
    flows from). An *explicit* ``"columnar-mmap"`` on an unsupported
    combination raises instead of silently changing meaning.
    """
    if ingest_backend is None:
        return "packet-objects"
    resolved = backends.resolve(backends.INGEST, ingest_backend).name
    if resolved != "columnar-mmap":
        return resolved
    supported = hasattr(source, "iter_batches") and detector.unit == "packet"
    if supported:
        return resolved
    if ingest_backend == "auto":
        return "packet-objects"
    if not hasattr(source, "iter_batches"):
        raise ValueError(
            f"ingest backend {resolved!r} needs a source with column "
            f"batches (iter_batches); {source.describe()} has none"
        )
    raise ValueError(
        f"ingest backend {resolved!r} drives packet-level detectors; "
        f"this detector scores {detector.unit}s"
    )


def _score_digests(emitted: list[StreamScore], scores: np.ndarray) -> dict:
    """Parity digests over what was scored and the scores themselves.

    ``coverage_digest`` matches the sharded engine's (worker-count- and
    ingest-backend-invariant); ``score_digest`` hashes the raw float64
    score bytes, so two ingest paths agree iff they are bit-identical.
    """
    from repro.stream.sharded import coverage_digest

    import hashlib

    return {
        "coverage_digest": coverage_digest(emitted),
        "score_digest": hashlib.sha256(scores.tobytes()).hexdigest(),
    }


def stream_capture(
    source: PacketSource,
    detector: StreamingDetector,
    *,
    warmup_packets: int,
    threshold: float | None = None,
    window_seconds: float = 10.0,
    on_window: WindowCallback | None = None,
    exporter: "obs.SnapshotExporter | None" = None,
    ingest_backend: str | None = None,
) -> StreamReport:
    """Stream a raw packet source: train on the first ``warmup_packets``
    packets, score everything after them.

    Unlabelled sources (pcap replay) must pass an explicit
    ``threshold`` — there is no ground truth to standardise against —
    and report alert rates instead of precision/recall.

    ``exporter`` (a :class:`repro.obs.SnapshotExporter`) enables the
    metrics registry and emits periodic snapshots at micro-batch
    boundaries plus one final snapshot.

    ``ingest_backend`` selects how packets reach the detector: the
    default ``None`` (or ``"packet-objects"``) iterates decoded
    :class:`Packet` objects; ``"columnar-mmap"`` streams column batches
    straight off the capture file into the detector's batched scoring
    path (``"auto"`` lets the registry decide). Scores, coverage and
    digests are bit-identical across backends — ingest is a throughput
    knob, not a semantic one.
    """
    if warmup_packets < 0:
        raise ValueError(f"warmup_packets must be >= 0, got {warmup_packets}")
    if threshold is None and not source.labelled:
        raise ValueError(
            "unlabelled sources need an explicit threshold "
            "(no ground truth to standardise against)"
        )
    if exporter is not None and not obs.is_enabled():
        obs.enable()
    resolved_ingest = resolve_ingest_backend(source, detector, ingest_backend)
    if resolved_ingest == "columnar-mmap":
        return _stream_capture_columnar(
            source, detector,
            warmup_packets=warmup_packets,
            threshold=threshold,
            window_seconds=window_seconds,
            on_window=on_window,
            exporter=exporter,
        )
    obs_on = obs.is_enabled()
    packet_counter = (
        obs.counter("stream.packets_streamed") if obs_on else None
    )

    prefix: list[Packet] = []
    emitted: list[StreamScore] = []
    packets_streamed = 0
    warmup_seconds = 0.0
    warmed = False
    stream_start: float | None = None

    def warm_now() -> None:
        # With warmup_packets == 0 this fits on an empty prefix:
        # training-free IDSs accept that, supervised ones raise their
        # clear error up front instead of failing mid-stream.
        nonlocal warmup_seconds, warmed
        warmup_start = time.perf_counter()
        with obs.span("stream.warmup"):
            detector.warmup(prefix)
        warmup_seconds = time.perf_counter() - warmup_start
        warmed = True

    for packet in source:
        if len(prefix) < warmup_packets:
            prefix.append(packet)
            if len(prefix) == warmup_packets:
                warm_now()
            continue
        if not warmed:
            warm_now()
        if stream_start is None:
            stream_start = time.perf_counter()
        packets_streamed += 1
        if packet_counter is not None:
            packet_counter.inc()
        released = detector.process(packet)
        if released:
            emitted.extend(released)
            if exporter is not None:
                exporter.maybe_export()
    if not warmed:
        # Short (or empty) capture: everything fell into the prefix.
        warm_now()
    if stream_start is None:
        stream_start = time.perf_counter()
    emitted.extend(detector.finish())
    stream_seconds = time.perf_counter() - stream_start
    if obs_on:
        registry = obs.get_registry()
        registry.counter("stream.items_scored").inc(len(emitted))
        registry.gauge("stream.warmup_items").set(len(prefix))

    scores = np.array([item.score for item in emitted], dtype=np.float64)
    labelled = source.labelled
    y_true = (
        np.array([item.label for item in emitted], dtype=int)
        if labelled else None
    )
    if threshold is None:
        assert y_true is not None
        resolved = standard_threshold(y_true, scores, strategy="fpr-budget")
        threshold_source = "posthoc:fpr-budget"
    else:
        resolved = float(threshold)
        threshold_source = "fixed"

    windows, alerter = _evaluate_stream(
        emitted,
        labelled=labelled,
        threshold=resolved,
        window_seconds=window_seconds,
        on_window=on_window,
    )
    if exporter is not None:
        exporter.export()
    return StreamReport(
        ids_name=getattr(detector, "ids", detector).name,
        source=source.describe(),
        unit=detector.unit,
        labelled=labelled,
        batch_size=detector.batch_size,
        window_seconds=window_seconds,
        threshold=resolved,
        threshold_source=threshold_source,
        n_warmup=len(prefix),
        n_scored=len(emitted),
        packets_streamed=packets_streamed,
        warmup_seconds=warmup_seconds,
        stream_seconds=stream_seconds,
        metrics=windows.overall(),
        alert_rate=windows.alert_rate,
        windows=windows.windows,
        alerts=alerter.episodes,
        scores=scores,
        y_true=y_true,
        notes={
            "non_ip_packets": getattr(
                getattr(detector, "tracker", None), "non_ip_packets", 0
            ),
            "scoring_path": detector.scoring_path,
            "ingest_backend": resolved_ingest,
            **_score_digests(emitted, scores),
            **backends.backend_notes(getattr(detector, "ids", None)),
            "run_id": obs.run_id(),
        },
    )


def _stream_capture_columnar(
    source: PacketSource,
    detector: StreamingDetector,
    *,
    warmup_packets: int,
    threshold: float | None,
    window_seconds: float,
    on_window: WindowCallback | None,
    exporter: "obs.SnapshotExporter | None",
) -> StreamReport:
    """The columnar-mmap body of :func:`stream_capture`.

    The warmup prefix is hydrated into full packets (training happens
    once, off the hot path); everything after it is scored as column
    slices through :meth:`PacketStreamDetector.process_columns` without
    ever materialising per-packet objects.
    """
    obs_on = obs.is_enabled()
    packet_counter = (
        obs.counter("stream.packets_streamed") if obs_on else None
    )

    prefix: list[Packet] = []
    emitted: list[StreamScore] = []
    packets_streamed = 0
    warmup_seconds = 0.0
    warmed = False
    stream_start: float | None = None

    def warm_now() -> None:
        nonlocal warmup_seconds, warmed
        warmup_start = time.perf_counter()
        with obs.span("stream.warmup"):
            detector.warmup(prefix)
        warmup_seconds = time.perf_counter() - warmup_start
        warmed = True

    for batch in source.iter_batches():
        position = 0
        if len(prefix) < warmup_packets:
            take = min(warmup_packets - len(prefix), len(batch))
            prefix.extend(batch.hydrate_range(0, take))
            position = take
            if len(prefix) == warmup_packets:
                warm_now()
        if position >= len(batch):
            continue
        if not warmed:
            warm_now()
        if stream_start is None:
            stream_start = time.perf_counter()
        live = batch.slice(position, len(batch)) if position else batch
        packets_streamed += len(live)
        if packet_counter is not None:
            packet_counter.inc(len(live))
        released = detector.process_columns(live)
        if released:
            emitted.extend(released)
            if exporter is not None:
                exporter.maybe_export()
    if not warmed:
        warm_now()
    if stream_start is None:
        stream_start = time.perf_counter()
    emitted.extend(detector.finish())
    stream_seconds = time.perf_counter() - stream_start
    if obs_on:
        registry = obs.get_registry()
        registry.counter("stream.items_scored").inc(len(emitted))
        registry.gauge("stream.warmup_items").set(len(prefix))

    scores = np.array([item.score for item in emitted], dtype=np.float64)
    labelled = source.labelled
    y_true = (
        np.array([item.label for item in emitted], dtype=int)
        if labelled else None
    )
    if threshold is None:
        assert y_true is not None
        resolved = standard_threshold(y_true, scores, strategy="fpr-budget")
        threshold_source = "posthoc:fpr-budget"
    else:
        resolved = float(threshold)
        threshold_source = "fixed"

    windows, alerter = _evaluate_stream(
        emitted,
        labelled=labelled,
        threshold=resolved,
        window_seconds=window_seconds,
        on_window=on_window,
    )
    if exporter is not None:
        exporter.export()
    return StreamReport(
        ids_name=getattr(detector, "ids", detector).name,
        source=source.describe(),
        unit=detector.unit,
        labelled=labelled,
        batch_size=detector.batch_size,
        window_seconds=window_seconds,
        threshold=resolved,
        threshold_source=threshold_source,
        n_warmup=len(prefix),
        n_scored=len(emitted),
        packets_streamed=packets_streamed,
        warmup_seconds=warmup_seconds,
        stream_seconds=stream_seconds,
        metrics=windows.overall(),
        alert_rate=windows.alert_rate,
        windows=windows.windows,
        alerts=alerter.episodes,
        scores=scores,
        y_true=y_true,
        notes={
            "non_ip_packets": getattr(
                getattr(detector, "tracker", None), "non_ip_packets", 0
            ),
            "scoring_path": detector.scoring_path,
            "ingest_backend": "columnar-mmap",
            **_score_digests(emitted, scores),
            **backends.backend_notes(getattr(detector, "ids", None)),
            "run_id": obs.run_id(),
        },
    )
