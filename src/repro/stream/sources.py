"""Packet sources: where a live stream's packets come from.

A :class:`PacketSource` is anything that yields packets in
non-decreasing timestamp order. Three concrete sources cover the
paper's scenarios:

* :class:`PcapReplaySource` — replay a capture file through
  :class:`~repro.net.pcap.PcapReader` (ground-truth labels are absent,
  exactly as with the public datasets' raw pcaps);
* :class:`DatasetSource` — a synthetic generator-driven source from
  :mod:`repro.datasets` (labelled, deterministic in ``(seed, scale)``);
* :class:`MixedSource` — a k-way timestamp merge of other sources, for
  multi-attack scenarios composed from several captures.

Sources are *restartable* iterables, not one-shot iterators: each
``iter()`` starts from the beginning, so a session can take a training
prefix and then re-stream for scoring without re-opening anything.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.net.packet import Packet


@runtime_checkable
class PacketSource(Protocol):
    """A restartable stream of timestamp-ordered packets.

    ``labelled`` declares whether ``Packet.label`` carries ground truth
    (pcap replay does not — the format has no label field), so metric
    consumers know whether precision/recall are meaningful.
    """

    labelled: bool

    def __iter__(self) -> Iterator[Packet]: ...

    def describe(self) -> str: ...


class ListSource:
    """An in-memory packet list as a source (tests, pre-adapted data)."""

    def __init__(self, packets: Sequence[Packet], *, name: str = "list",
                 labelled: bool = True) -> None:
        self.packets = list(packets)
        self.name = name
        self.labelled = labelled

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __len__(self) -> int:
        return len(self.packets)

    def describe(self) -> str:
        return f"{self.name} ({len(self.packets)} packets)"


class PcapReplaySource:
    """Replays a libpcap capture file, packet by packet.

    Reading is streaming — the file is never loaded whole — so replay
    memory is O(1) in capture size. Labels are *not* ground truth: pcap
    carries no labels, so every packet arrives with ``label == 0`` and
    ``labelled`` is False.

    ``iter_batches`` exposes the same capture as zero-copy column
    batches (:class:`~repro.net.columnar.ColumnBatch`) for the columnar
    ingest backend; ``ingest_backend`` records the caller's requested
    backend name so session runners can resolve it once per stream.
    """

    labelled = False

    def __init__(
        self, path: str | Path, *, ingest_backend: str | None = None
    ) -> None:
        self.path = Path(path)
        self.ingest_backend = ingest_backend

    def __iter__(self) -> Iterator[Packet]:
        from repro.net.pcap import PcapReader

        return iter(PcapReader(self.path))

    def iter_batches(self, batch_size: int | None = None):
        """Column batches through the mmap decoder (restartable)."""
        from repro.net.columnar import DEFAULT_BATCH_SIZE, ColumnarPcapReader

        return iter(ColumnarPcapReader(
            self.path, batch_size=batch_size or DEFAULT_BATCH_SIZE
        ))

    def describe(self) -> str:
        return f"pcap:{self.path}"


class DatasetSource:
    """A synthetic dataset generator as a packet source.

    Generation goes through :func:`repro.datasets.generate_dataset`, so
    an installed dataset cache (the runner's) is honoured. The dataset
    is materialised lazily on first iteration and kept for re-streaming.
    """

    labelled = True

    def __init__(self, name: str, *, seed: int = 0, scale: float = 0.2) -> None:
        self.name = name
        self.seed = seed
        self.scale = scale
        self._dataset = None

    @property
    def dataset(self):
        if self._dataset is None:
            from repro.datasets import generate_dataset

            self._dataset = generate_dataset(
                self.name, seed=self.seed, scale=self.scale
            )
        return self._dataset

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.dataset.packets)

    def describe(self) -> str:
        return f"dataset:{self.name} (seed={self.seed}, scale={self.scale})"


class MixedSource:
    """Interleaves several sources into one timestamp-ordered stream.

    A lazy k-way merge: only one packet per upstream source is buffered.
    Ties break by source position (then arrival order within a source),
    so the interleave is deterministic — a multi-attack scenario built
    from the same parts always replays identically.
    """

    def __init__(self, sources: Sequence[PacketSource]) -> None:
        if not sources:
            raise ValueError("MixedSource needs at least one source")
        self.sources = list(sources)
        self.labelled = all(source.labelled for source in self.sources)

    @staticmethod
    def _keyed(source: PacketSource, position: int):
        for order, packet in enumerate(source):
            yield (packet.timestamp, position, order, packet)

    def __iter__(self) -> Iterator[Packet]:
        streams = [
            self._keyed(source, position)
            for position, source in enumerate(self.sources)
        ]
        for _, _, _, packet in heapq.merge(*streams):
            yield packet

    def describe(self) -> str:
        parts = " + ".join(source.describe() for source in self.sources)
        return f"mix[{parts}]"
