"""Streaming adapters over the registry's IDS models.

A :class:`StreamingDetector` turns a batch-interface IDS
(:class:`~repro.ids.base.PacketIDS` / :class:`~repro.ids.base.FlowIDS`)
into a push-based scorer: train on a prefix (``warmup``), then score
the live stream with micro-batched ``process`` calls.

**Parity contract.** The evaluated packet IDSs (Kitsune, HELAD) are
online systems: their internal state advances one packet at a time, so
calling ``anomaly_scores`` on consecutive micro-batches produces the
*bit-identical* score sequence a single batch call would — that is what
makes micro-batching a pure throughput knob rather than a semantic one
(``tests/test_stream_parity.py`` enforces it). The packet IDSs extract
features through the vectorized AfterImage engine by default, itself
bit-identical to the scalar reference (``docs/PERFORMANCE.md``), so the
streaming digests are engine-independent too. Flow IDSs split two
ways: the DNN scores flows row-independently, so completed flows are
scored as they close; Slips accumulates evidence across *all* profile
windows, so its adapter defers scoring to ``finish`` — the only point
where its batch semantics exist at all.
"""

from __future__ import annotations

import abc
import time
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.features.encoding import FlowVectorEncoder
from repro.flows.record import FlowRecord
from repro.ids.base import FlowIDS, InputKind, PacketIDS
from repro.ids.registry import evaluated_ids_factories
from repro.net.packet import Packet
from repro.stream.tracker import StreamingFlowTracker
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StreamScore:
    """One scored item (packet or flow) of the stream."""

    index: int
    timestamp: float
    score: float
    label: int | None = None
    attack_type: str = ""


def canonical_ids_name(name: str) -> str:
    """Resolve a (case-insensitive) IDS name to its Table IV spelling."""
    factories = evaluated_ids_factories()
    lowered = {known.lower(): known for known in factories}
    try:
        return lowered[name.lower()]
    except KeyError:
        known = ", ".join(sorted(factories))
        raise KeyError(f"unknown IDS {name!r}; known: {known}") from None


class StreamingDetector(abc.ABC):
    """Push-based scoring facade over one IDS instance."""

    #: What one emitted :class:`StreamScore` covers.
    unit: str  # "packet" | "flow"
    #: Which engine the IDS *advertises* for micro-batch scoring:
    #: ``"batched"`` (``supports_batch`` — the packed batch engine),
    #: ``"per-packet"`` (the reference loop fallback) or
    #: ``"flow-matrix"`` (flow IDSs score encoded matrices natively).
    #: Exported in stream reports/benches so losing the batched
    #: advertisement is visible; a throughput regression *behind* the
    #: advertisement is caught by ``bench_stream_throughput.py``'s
    #: batch>1-beats-batch-1 gate.
    scoring_path: str = "per-packet"

    def __init__(self, *, batch_size: int = 256) -> None:
        self.batch_size = int(check_positive("batch_size", batch_size))
        self.items_scored = 0

    @abc.abstractmethod
    def warmup(self, packets: Sequence[Packet]) -> None:
        """Train on the stream's prefix (fit-on-prefix regime)."""

    @abc.abstractmethod
    def process(self, packet: Packet) -> list[StreamScore]:
        """Consume one live packet; return any scores it released."""

    @abc.abstractmethod
    def finish(self) -> list[StreamScore]:
        """Drain buffered work at end of stream."""


class PacketStreamDetector(StreamingDetector):
    """Micro-batched per-packet scoring for Kitsune/HELAD."""

    unit = "packet"

    def __init__(self, ids: PacketIDS, *, batch_size: int = 256) -> None:
        super().__init__(batch_size=batch_size)
        if ids.input_kind is not InputKind.PACKET:
            raise TypeError(f"{ids.name} is not a packet-level IDS")
        self.ids = ids
        self.scoring_path = (
            "batched" if getattr(ids, "supports_batch", False)
            else "per-packet"
        )
        self._buffer: list[Packet] = []

    def warmup(self, packets: Sequence[Packet]) -> None:
        self.ids.fit(packets)

    def process(self, packet: Packet) -> list[StreamScore]:
        self._buffer.append(packet)
        if len(self._buffer) >= self.batch_size:
            return self._drain()
        return []

    def finish(self) -> list[StreamScore]:
        return self._drain()

    def process_columns(self, batch) -> list[StreamScore]:
        """Consume a :class:`~repro.net.columnar.ColumnBatch` in
        ``batch_size`` micro-batches.

        Any per-packet buffer is drained first so interleaving
        ``process`` and ``process_columns`` preserves stream order.
        Scores are bit-identical to hydrating the batch and pushing
        each packet through :meth:`process` — the IDSs' ``score_batch``
        accepts column batches natively (NetStat's columnar path).
        """
        emitted = self._drain()
        n = len(batch)
        obs_on = obs.is_enabled()
        for start in range(0, n, self.batch_size):
            sub = batch.slice(start, min(start + self.batch_size, n))
            if obs_on:
                started = time.perf_counter()
                scores = self.ids.score_batch(sub)
                registry = obs.get_registry()
                registry.histogram("stream.detector.score_seconds").observe(
                    time.perf_counter() - started
                )
                registry.histogram("stream.detector.batch_size").observe(
                    len(sub)
                )
            else:
                scores = self.ids.score_batch(sub)
            stamps = sub.timestamps.tolist()
            labels = sub.row_labels()
            attacks = sub.row_attack_types()
            base = self.items_scored
            emitted.extend(
                StreamScore(
                    index=base + offset,
                    timestamp=stamps[offset],
                    score=float(score),
                    label=labels[offset],
                    attack_type=attacks[offset],
                )
                for offset, score in enumerate(scores)
            )
            self.items_scored = base + len(scores)
        return emitted

    def _drain(self) -> list[StreamScore]:
        if not self._buffer:
            return []
        batch, self._buffer = self._buffer, []
        # Bit-identical to anomaly_scores; batch-capable IDSs score the
        # whole micro-batch through their packed execute engine.
        if obs.is_enabled():
            started = time.perf_counter()
            scores = self.ids.score_batch(batch)
            registry = obs.get_registry()
            registry.histogram("stream.detector.score_seconds").observe(
                time.perf_counter() - started
            )
            registry.histogram("stream.detector.batch_size").observe(
                len(batch)
            )
        else:
            scores = self.ids.score_batch(batch)
        emitted = [
            StreamScore(
                index=self.items_scored + offset,
                timestamp=packet.timestamp,
                score=float(score),
                label=packet.label,
                attack_type=packet.attack_type,
            )
            for offset, (packet, score) in enumerate(zip(batch, scores))
        ]
        self.items_scored += len(emitted)
        return emitted


class FlowStreamDetector(StreamingDetector):
    """Flow-level streaming: assemble incrementally, score on close.

    Flow IDSs already consume encoded feature matrices, so every
    micro-batch is scored in one call (``scoring_path = "flow-matrix"``).

    ``deferred=True`` (Slips) accumulates completed flows and scores
    them in one call at ``finish`` — Slips' evidence accumulation and
    recidivism are defined over the whole window set, so per-flow
    scoring would silently change its semantics. The DNN scores each
    micro-batch of closed flows as it fills.

    ``process_flow`` lets pre-assembled flows (the batch pipeline's
    adapted flow sample) be replayed directly, bypassing the tracker —
    the parity path used by :func:`repro.stream.service.stream_experiment`.
    """

    unit = "flow"
    scoring_path = "flow-matrix"

    def __init__(
        self,
        ids: FlowIDS,
        *,
        schema: str = "netflow",
        batch_size: int = 64,
        deferred: bool | None = None,
        encoder: FlowVectorEncoder | None = None,
        idle_timeout: float = 120.0,
        active_timeout: float = 3600.0,
        labelled: bool = True,
    ) -> None:
        super().__init__(batch_size=batch_size)
        if ids.input_kind is not InputKind.FLOW:
            raise TypeError(f"{ids.name} is not a flow-level IDS")
        self.ids = ids
        self.schema = schema
        # Slips is the only evaluated IDS whose scores couple across
        # flows; default its adapter to end-of-stream scoring.
        self.deferred = (ids.name == "Slips") if deferred is None else deferred
        self.encoder = encoder or self._default_encoder(schema)
        self.tracker = StreamingFlowTracker(
            idle_timeout=idle_timeout, active_timeout=active_timeout
        )
        self.labelled = labelled
        self._buffer: list[FlowRecord] = []
        self._deferred_flows: list[FlowRecord] = []

    @staticmethod
    def _default_encoder(schema: str) -> FlowVectorEncoder:
        """A live stream sees full packets, so every schema feature is
        available — no zero-filled adaptation loss."""
        if schema == "cicflow":
            from repro.flows.cicflow import CICFLOW_FEATURE_NAMES

            return FlowVectorEncoder(CICFLOW_FEATURE_NAMES)
        if schema == "netflow":
            from repro.flows.netflow import NETFLOW_FEATURE_NAMES

            return FlowVectorEncoder(NETFLOW_FEATURE_NAMES)
        raise ValueError(f"unknown flow schema {schema!r}")

    def _encode(self, flows: Sequence[FlowRecord]) -> np.ndarray:
        from repro.core.preprocessing import flow_feature_dicts

        return self.encoder.encode(flow_feature_dicts(flows, self.schema))

    def warmup(self, packets: Sequence[Packet]) -> None:
        """Assemble the prefix into flows and fit the IDS on them."""
        from repro.flows.assembler import FlowAssembler

        flows = FlowAssembler().assemble(packets)
        features = self._encode(flows)
        labels = (
            np.array([flow.label for flow in flows], dtype=int)
            if self.labelled else None
        )
        if self.ids.supervised and labels is None:
            raise ValueError(
                f"{self.ids.name} is supervised; an unlabelled source "
                "cannot provide its training labels"
            )
        self.warmup_flows(flows, features, labels)

    def warmup_flows(
        self,
        flows: Sequence[FlowRecord],
        features: np.ndarray,
        labels: np.ndarray | None,
    ) -> None:
        """Fit directly on pre-assembled (batch-adapted) flows."""
        self.ids.fit(list(flows), features, labels)

    def process(self, packet: Packet) -> list[StreamScore]:
        emitted: list[StreamScore] = []
        for flow in self.tracker.add(packet):
            emitted.extend(self.process_flow(flow))
        return emitted

    def process_flow(self, flow: FlowRecord) -> list[StreamScore]:
        if self.deferred:
            self._deferred_flows.append(flow)
            return []
        self._buffer.append(flow)
        if len(self._buffer) >= self.batch_size:
            return self._drain()
        return []

    def finish(self) -> list[StreamScore]:
        emitted: list[StreamScore] = []
        for flow in self.tracker.flush():
            emitted.extend(self.process_flow(flow))
        if self.deferred and self._deferred_flows:
            flows, self._deferred_flows = self._deferred_flows, []
            emitted.extend(self._emit(flows))
        else:
            emitted.extend(self._drain())
        return emitted

    def _drain(self) -> list[StreamScore]:
        if not self._buffer:
            return []
        batch, self._buffer = self._buffer, []
        return self._emit(batch)

    def _emit(self, flows: list[FlowRecord]) -> list[StreamScore]:
        if obs.is_enabled():
            started = time.perf_counter()
            scores = self.ids.anomaly_scores(flows, self._encode(flows))
            registry = obs.get_registry()
            registry.histogram("stream.detector.score_seconds").observe(
                time.perf_counter() - started
            )
            registry.histogram("stream.detector.flow_batch_size").observe(
                len(flows)
            )
        else:
            scores = self.ids.anomaly_scores(flows, self._encode(flows))
        emitted = [
            StreamScore(
                index=self.items_scored + offset,
                timestamp=flow.end_time,
                score=float(score),
                label=flow.label if self.labelled else None,
                attack_type=flow.attack_type,
            )
            for offset, (flow, score) in enumerate(zip(flows, scores))
        ]
        self.items_scored += len(emitted)
        return emitted


def build_streaming_detector(
    ids_name: str,
    *,
    seed: int = 0,
    batch_size: int = 256,
    schema: str = "netflow",
    ids_overrides: dict | None = None,
    labelled: bool = True,
    warmup_packets: int | None = None,
    feature_backend: str | None = None,
) -> StreamingDetector:
    """Construct a streaming adapter for one of the evaluated IDSs.

    The IDS is built from its out-of-the-box ``default_config`` (paper
    Section IV-A-3) plus ``ids_overrides``, mirroring how the batch
    experiment path instantiates it. Pass ``warmup_packets`` (the live
    session's training-prefix length) so Kitsune's grace periods are
    scaled to fit the prefix exactly as the batch path scales them —
    otherwise a short prefix leaves KitNET still in its grace periods
    and 'scores' are silently training-step outputs.

    ``feature_backend`` pins the AfterImage compute backend for
    packet-level IDSs: a registered feature-engine backend name, or
    ``"auto"`` to let the registry rank what this host can run (see
    :mod:`repro.backends`). Every backend is bit-identical to the
    scalar reference, so this is a pure throughput knob.
    """
    name = canonical_ids_name(ids_name)
    factory = evaluated_ids_factories()[name]
    kwargs = dict(factory.default_config())
    overrides = dict(ids_overrides or {})
    kwargs.update(overrides)
    if feature_backend is not None:
        from repro import backends

        resolved = backends.resolve(backends.FEATURE_ENGINE, feature_backend)
        if not getattr(factory, "supports_batch", False) or name not in (
            "Kitsune", "HELAD"
        ):
            raise ValueError(
                f"{name} is a flow-level IDS and does not use the "
                "NetStat feature engine; --feature-backend only applies "
                "to packet-level IDSs (Kitsune, HELAD)"
            )
        kwargs["netstat_engine"] = resolved.name
    if name != "Slips":
        kwargs.setdefault("seed", seed)
    if name == "Kitsune" and warmup_packets is not None:
        fm_overridden = "fm_grace" in overrides
        ad_overridden = "ad_grace" in overrides
        if not fm_overridden and not ad_overridden:
            # Same arithmetic as build_packet_cell in
            # repro.core.experiment.
            fm = max(100, warmup_packets // 10)
            kwargs["fm_grace"] = fm
            kwargs["ad_grace"] = max(100, warmup_packets - fm)
        elif fm_overridden != ad_overridden:
            # Overriding only one grace period used to leave the other
            # at its default, silently blowing the combined grace past
            # the warmup prefix; scale the non-overridden one to fill
            # the remainder instead.
            if fm_overridden:
                kwargs["ad_grace"] = max(
                    100, warmup_packets - kwargs["fm_grace"]
                )
            else:
                kwargs["fm_grace"] = max(
                    100, warmup_packets - kwargs["ad_grace"]
                )
        total_grace = kwargs["fm_grace"] + kwargs["ad_grace"]
        if total_grace > warmup_packets:
            warnings.warn(
                f"Kitsune grace periods (fm_grace={kwargs['fm_grace']} + "
                f"ad_grace={kwargs['ad_grace']} = {total_grace}) exceed "
                f"the warmup prefix of {warmup_packets} packets; the "
                "detector will still be training when scoring starts "
                "and early 'scores' are training-step outputs",
                RuntimeWarning,
                stacklevel=2,
            )
    ids = factory(**kwargs)
    if ids.input_kind is InputKind.PACKET:
        return PacketStreamDetector(ids, batch_size=batch_size)
    return FlowStreamDetector(
        ids, schema=schema, batch_size=batch_size, labelled=labelled
    )
