"""repro.obs — the unified observability layer.

One vocabulary for every subsystem's telemetry: named **counters**,
**gauges** and fixed-bucket **histograms** in a process-local
:class:`~repro.obs.registry.MetricsRegistry`; nestable low-overhead
**spans** (``with obs.span("stream.warmup"): ...``); a periodic JSONL
:class:`~repro.obs.export.SnapshotExporter` (plus Prometheus text
rendering); and deterministic cross-process aggregation
(:func:`merge_snapshots`) used by the sharded streaming supervisor to
fold worker registries into one tree keyed by worker id.

Everything is **disabled by default**: instrumented hot paths pay one
``obs.is_enabled()`` branch and nothing else (gated at ≤3% enabled
overhead by ``benchmarks/bench_obs_overhead.py``). Cheap once-per-cell
or once-per-chunk sites (runner cache stats, sharded worker totals)
record unconditionally so snapshots are useful even without opting in.

Metric naming convention (see ``docs/OBSERVABILITY.md``): dotted
lowercase ``<subsystem>.<component>.<metric>`` — ``stream.*`` for the
streaming service, ``stream.worker.*`` / ``stream.shard.*`` for the
sharded engine's worker/supervisor sides, ``runner.*`` for the
experiment engine, ``ml.kitnet.*`` for KitNET training internals.

Typical use::

    from repro import obs

    obs.enable()
    packets = obs.counter("stream.packets_streamed")
    packets.inc()
    with obs.span("stream.warmup"):
        detector.warmup(prefix)
    print(obs.process_snapshot()["counters"])
"""

from repro.obs.export import (
    SnapshotExporter,
    read_snapshots,
    render_prometheus,
)
from repro.obs.registry import (
    HISTOGRAM_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    is_enabled,
    merge_snapshots,
    process_snapshot,
    reset_registry,
    run_id,
)
from repro.obs.report import diff_snapshots, render_snapshot
from repro.obs.spans import NULL_SPAN, Span, span, traced

__all__ = [
    "HISTOGRAM_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SnapshotExporter",
    "Span",
    "counter",
    "diff_snapshots",
    "disable",
    "enable",
    "gauge",
    "get_registry",
    "histogram",
    "is_enabled",
    "merge_snapshots",
    "process_snapshot",
    "read_snapshots",
    "render_prometheus",
    "render_snapshot",
    "reset_registry",
    "run_id",
    "span",
    "traced",
]
