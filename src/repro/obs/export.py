"""Snapshot export: periodic JSONL and Prometheus text rendering.

:class:`SnapshotExporter` writes :func:`~repro.obs.registry.process_snapshot`
dicts either to a JSONL file (one snapshot per line, keys sorted) or to
a callback. ``maybe_export`` is the cheap periodic hook instrumented
loops call at batch/chunk boundaries — it returns immediately unless
``interval_seconds`` have elapsed since the last export — and a final
unconditional ``export`` closes every run, so even sub-interval runs
leave one snapshot. The snapshot schema is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import registry as _registry_mod

__all__ = ["SnapshotExporter", "read_snapshots", "render_prometheus"]


class SnapshotExporter:
    """Periodic registry-snapshot exporter (JSONL file or callback).

    Parameters
    ----------
    sink:
        A path (JSONL file, truncated on first export) or a callable
        invoked with each snapshot dict.
    interval_seconds:
        Minimum seconds between ``maybe_export`` emissions.
    registry:
        Registry to snapshot; defaults to the process default registry
        (resolved at export time, so it tracks ``reset_registry``).
    source:
        Free-form origin tag stamped into each snapshot
        (``"stream"``, ``"stream-sharded"``, ...).
    """

    def __init__(self, sink, *, interval_seconds: float = 5.0,
                 registry=None, source: str = "process") -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.interval_seconds = float(interval_seconds)
        self.source = source
        self.seq = 0
        self._registry = registry
        self._callback = sink if callable(sink) else None
        self._path = None if callable(sink) else Path(sink)
        self._fh = None
        self._origin = time.monotonic()
        self._last_export = self._origin

    @property
    def path(self) -> Path | None:
        return self._path

    def maybe_export(self, extra=None) -> bool:
        """Export if the interval elapsed; the steady-state no-op path
        is one clock read and one comparison. ``extra`` may be a dict
        merged into the snapshot or a zero-argument callable producing
        one (only invoked when an export actually happens)."""
        if time.monotonic() - self._last_export < self.interval_seconds:
            return False
        self.export(extra)
        return True

    def export(self, extra=None) -> dict:
        """Unconditionally snapshot and write; returns the snapshot."""
        now = time.monotonic()
        snapshot = _registry_mod.process_snapshot(self._registry)
        snapshot["seq"] = self.seq
        snapshot["elapsed_seconds"] = now - self._origin
        snapshot["source"] = self.source
        if extra is not None:
            if callable(extra):
                extra = extra()
            snapshot.update(extra)
        self.seq += 1
        self._last_export = now
        if self._callback is not None:
            self._callback(snapshot)
        else:
            if self._fh is None:
                self._fh = open(self._path, "w", encoding="utf-8")
            self._fh.write(json.dumps(snapshot, sort_keys=True) + "\n")
            self._fh.flush()
        return snapshot

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SnapshotExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_snapshots(path) -> list[dict]:
    """Parse a JSONL snapshot file back into dicts (blank lines ok)."""
    snapshots = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                snapshots.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON snapshot line: {error}"
                ) from None
    return snapshots


def _metric_name(name: str, prefix: str) -> str:
    sanitized = name.replace(".", "_").replace("-", "_").replace("/", "_")
    return f"{prefix}_{sanitized}"


def render_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render one snapshot as Prometheus text-exposition lines.

    Histograms render cumulatively with their fixed ``le`` bounds;
    span aggregates render as ``<prefix>_span_seconds_total`` /
    ``<prefix>_span_count`` with a ``span`` label. A sharded
    supervisor snapshot's ``merged`` worker tree is folded in (metrics
    summed/maxed by :func:`~repro.obs.registry.merge_snapshots`), so
    one exposition covers the whole process tree.
    """
    if "merged" in snapshot:
        snapshot = _registry_mod.merge_snapshots(
            [snapshot, snapshot["merged"]]
        )
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for label, count in hist["buckets"].items():
            if label == "+Inf":
                continue
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {hist['sum']:g}")
        lines.append(f"{metric}_count {hist['count']}")
    spans = snapshot.get("spans", {})
    if spans:
        seconds_metric = f"{prefix}_span_seconds_total"
        count_metric = f"{prefix}_span_count"
        lines.append(f"# TYPE {seconds_metric} counter")
        lines.append(f"# TYPE {count_metric} counter")
        for path, entry in spans.items():
            lines.append(
                f'{seconds_metric}{{span="{path}"}} {entry["seconds"]:g}'
            )
            lines.append(f'{count_metric}{{span="{path}"}} {entry["count"]}')
    return "\n".join(lines)
