"""Human rendering and diffing of obs snapshots (``repro-cli obs-report``)."""

from __future__ import annotations

__all__ = ["diff_snapshots", "render_snapshot"]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def _render_sections(snapshot: dict, indent: str) -> list[str]:
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(f"{indent}counters:")
        for name, value in counters.items():
            lines.append(f"{indent}  {name:44s} {_fmt(value)}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append(f"{indent}gauges:")
        for name, value in gauges.items():
            lines.append(f"{indent}  {name:44s} {_fmt(value)}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append(f"{indent}histograms:")
        for name, hist in histograms.items():
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(
                f"{indent}  {name:44s} count={hist['count']} "
                f"mean={_fmt(mean)} min={_fmt(hist['min'])} "
                f"max={_fmt(hist['max'])}"
            )
    spans = snapshot.get("spans", {})
    if spans:
        lines.append(f"{indent}spans:")
        for path, entry in spans.items():
            lines.append(
                f"{indent}  {path:44s} count={entry['count']} "
                f"total={entry['seconds']:.4f}s"
            )
    if not lines:
        lines.append(f"{indent}(no metrics recorded)")
    return lines


def render_snapshot(snapshot: dict) -> str:
    """Pretty-print one snapshot, including any per-worker tree."""
    header = (
        f"obs snapshot — run {snapshot.get('run_id', '?')}"
        f", seq {snapshot.get('seq', '?')}"
        f", source {snapshot.get('source', '?')}"
        f", pid {snapshot.get('pid', '?')}"
    )
    elapsed = snapshot.get("elapsed_seconds")
    if elapsed is not None:
        header += f", elapsed {elapsed:.2f}s"
    lines = [header]
    lines.extend(_render_sections(snapshot, "  "))
    workers = snapshot.get("workers")
    if workers:
        lines.append("  workers:")
        for worker_id in sorted(workers, key=lambda key: (len(key), key)):
            worker = workers[worker_id]
            lines.append(
                f"    worker {worker_id} (pid {worker.get('pid', '?')}):"
            )
            lines.extend(_render_sections(worker, "      "))
        merged = snapshot.get("merged")
        if merged:
            lines.append("  merged across workers:")
            lines.extend(_render_sections(merged, "    "))
    return "\n".join(lines)


def diff_snapshots(before: dict, after: dict) -> str:
    """Value deltas between two snapshots (new/changed metrics only)."""
    lines = [
        f"obs diff — {before.get('run_id', '?')} seq "
        f"{before.get('seq', '?')} -> {after.get('run_id', '?')} seq "
        f"{after.get('seq', '?')}"
    ]
    for section in ("counters", "gauges"):
        old = before.get(section, {})
        new = after.get(section, {})
        changed = [
            name for name in sorted(set(old) | set(new))
            if old.get(name) != new.get(name)
        ]
        if changed:
            lines.append(f"  {section}:")
            for name in changed:
                old_value, new_value = old.get(name), new.get(name)
                delta = ""
                if isinstance(old_value, (int, float)) and isinstance(
                    new_value, (int, float)
                ):
                    delta = f" ({new_value - old_value:+g})"
                lines.append(
                    f"    {name:42s} {_fmt(old_value)} -> "
                    f"{_fmt(new_value)}{delta}"
                )
    old_hists = before.get("histograms", {})
    new_hists = after.get("histograms", {})
    changed = [
        name for name in sorted(set(old_hists) | set(new_hists))
        if old_hists.get(name, {}).get("count")
        != new_hists.get(name, {}).get("count")
    ]
    if changed:
        lines.append("  histograms:")
        for name in changed:
            old_count = old_hists.get(name, {}).get("count", 0)
            new_count = new_hists.get(name, {}).get("count", 0)
            lines.append(
                f"    {name:42s} count {old_count} -> {new_count} "
                f"({new_count - old_count:+d})"
            )
    old_spans = before.get("spans", {})
    new_spans = after.get("spans", {})
    changed = [
        path for path in sorted(set(old_spans) | set(new_spans))
        if old_spans.get(path) != new_spans.get(path)
    ]
    if changed:
        lines.append("  spans:")
        for path in changed:
            old_entry = old_spans.get(path, {"count": 0, "seconds": 0.0})
            new_entry = new_spans.get(path, {"count": 0, "seconds": 0.0})
            lines.append(
                f"    {path:42s} count {old_entry['count']} -> "
                f"{new_entry['count']}, seconds "
                f"{old_entry['seconds']:.4f} -> {new_entry['seconds']:.4f}"
            )
    if len(lines) == 1:
        lines.append("  (no metric differences)")
    return "\n".join(lines)
