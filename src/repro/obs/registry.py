"""The process-local metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process holds every named metric.
Histograms use *fixed* base-2 log-scale buckets (``2**-30 .. 2**30``),
so two registries that observed the same values always produce the
same bucket labels — which is what makes :func:`merge_snapshots`
deterministic across processes and runs.

Merge semantics (enforced by ``tests/test_obs.py``):

* counters, histogram buckets/sums/counts and span totals **add**;
* gauges take the **max** (a gauge is a level, not a flow — the merged
  tree reports the worst/furthest level any process reached);
* metric names sort lexicographically in every snapshot, so merged
  output is byte-stable regardless of arrival order.

The module also owns the process-wide observability state: the default
registry, the enabled flag (one branch on the hot path when off), and
the ``run_id`` — a short random hex stamped into every snapshot,
:class:`~repro.stream.service.StreamReport` and
:class:`~repro.runner.telemetry.RunTelemetry` so artifacts from one
invocation can be joined after the fact. The id comes from
``os.urandom``, deliberately *exempt* from :mod:`repro.utils.rng`
seeding: it identifies an invocation and never influences results.
Forked workers inherit it (same invocation), but must call
:func:`reset_registry` so inherited metric values are not double
counted when the supervisor merges their snapshots.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "HISTOGRAM_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "disable",
    "enable",
    "gauge",
    "get_registry",
    "histogram",
    "is_enabled",
    "merge_snapshots",
    "process_snapshot",
    "reset_registry",
    "run_id",
]

#: Fixed histogram bucket upper bounds: powers of two spanning ~1 ns to
#: ~1 Gi-unit. Fixed boundaries (rather than adaptive ones) are what
#: make cross-process histogram merges exact: equal values always land
#: in equally-labelled buckets.
HISTOGRAM_BOUNDS: tuple[float, ...] = tuple(2.0 ** e for e in range(-30, 31))

_BUCKET_LABELS: tuple[str, ...] = tuple(
    f"{bound:.9g}" for bound in HISTOGRAM_BOUNDS
) + ("+Inf",)

#: Label -> position, for ordering sparse bucket dicts numerically.
_LABEL_ORDER: dict[str, int] = {
    label: index for index, label in enumerate(_BUCKET_LABELS)
}


class Counter:
    """A monotonically increasing count (float-capable, e.g. seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A point-in-time level; merge takes the max across processes."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution over fixed base-2 log-scale buckets.

    ``observe(v)`` lands ``v`` in the first bucket whose upper bound is
    ``>= v`` (Prometheus ``le`` semantics); values beyond the largest
    bound go to ``+Inf``. The snapshot keeps only non-empty buckets.
    """

    __slots__ = ("name", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(HISTOGRAM_BOUNDS, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {
                label: count
                for label, count in zip(_BUCKET_LABELS, self.counts)
                if count
            },
        }


class MetricsRegistry:
    """All named metrics of one process, plus recorded span totals.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the live metric object — hot paths cache the handle and call
    ``inc``/``observe`` directly. One name maps to exactly one metric
    type; re-registering under a different type raises.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_spans")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # span path -> [count, total_seconds]
        self._spans: dict[str, list] = {}

    def _check_unclaimed(self, name: str, kind: str) -> None:
        for table, other in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other}; "
                    f"cannot re-register as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unclaimed(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unclaimed(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unclaimed(name, "histogram")
            metric = self._histograms[name] = Histogram(name)
        return metric

    def record_span(self, path: str, seconds: float) -> None:
        entry = self._spans.get(path)
        if entry is None:
            self._spans[path] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def snapshot(self) -> dict:
        """JSON-serialisable registry state, keys sorted for stability."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
                if self._gauges[name].value is not None
            },
            "histograms": {
                name: self._histograms[name].snapshot_value()
                for name in sorted(self._histograms)
            },
            "spans": {
                path: {"count": entry[0], "seconds": entry[1]}
                for path, entry in sorted(self._spans.items())
            },
        }

    def clear(self) -> None:
        """Drop every metric (cached handles go stale — re-fetch)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()


# --------------------------------------------------------------------------
# Process-wide state.

_enabled = False
_registry = MetricsRegistry()
_run_id: str | None = None


def is_enabled() -> bool:
    """Whether instrumented hot paths should record (one branch off)."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    return _registry


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh default registry and return it.

    Forked workers call this at startup so metrics inherited from the
    parent (supervisor warmup, earlier work) are not double counted in
    merged trees. The enabled flag and ``run_id`` are kept — they
    describe the invocation, not the process's metric state.
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry


def counter(name: str) -> Counter:
    """``Counter`` on the default registry (create on first use)."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """``Gauge`` on the default registry (create on first use)."""
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    """``Histogram`` on the default registry (create on first use)."""
    return _registry.histogram(name)


def run_id() -> str:
    """This process's 8-hex-char invocation id (seeded-RNG-exempt)."""
    global _run_id
    if _run_id is None:
        _run_id = os.urandom(4).hex()
    return _run_id


def process_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """A registry snapshot plus process context (run id, pid, cpus)."""
    target = registry if registry is not None else _registry
    snapshot = {
        "run_id": run_id(),
        "pid": os.getpid(),
        "cpu_count": os.cpu_count() or 1,
    }
    snapshot.update(target.snapshot())
    return snapshot


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Deterministically merge registry snapshots into one tree.

    Counters, histograms and spans sum element-wise; gauges take the
    max. Non-metric context keys (``run_id``, ``pid``...) are ignored,
    so both bare ``MetricsRegistry.snapshot()`` dicts and full
    :func:`process_snapshot` dicts merge. Output keys are sorted:
    merging is order-independent byte for byte.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    spans: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            if value is None:
                continue
            gauges[name] = (
                value if name not in gauges else max(gauges[name], value)
            )
        for name, incoming in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "count": incoming["count"],
                    "sum": incoming["sum"],
                    "min": incoming["min"],
                    "max": incoming["max"],
                    "buckets": dict(incoming["buckets"]),
                }
                continue
            merged["count"] += incoming["count"]
            merged["sum"] += incoming["sum"]
            for bound, pick in (("min", min), ("max", max)):
                if incoming[bound] is not None:
                    merged[bound] = (
                        incoming[bound] if merged[bound] is None
                        else pick(merged[bound], incoming[bound])
                    )
            buckets = merged["buckets"]
            for label, count in incoming["buckets"].items():
                buckets[label] = buckets.get(label, 0) + count
        for path, entry in snapshot.get("spans", {}).items():
            merged_span = spans.get(path)
            if merged_span is None:
                spans[path] = {
                    "count": entry["count"], "seconds": entry["seconds"]
                }
            else:
                merged_span["count"] += entry["count"]
                merged_span["seconds"] += entry["seconds"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: {
                **histograms[name],
                "buckets": dict(sorted(
                    histograms[name]["buckets"].items(),
                    key=lambda item: _LABEL_ORDER.get(
                        item[0], len(_LABEL_ORDER)
                    ),
                )),
            }
            for name in sorted(histograms)
        },
        "spans": dict(sorted(spans.items())),
    }
