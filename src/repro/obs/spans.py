"""Low-overhead span timing: ``with obs.span("netstat"): ...``.

Spans nest: entering a span pushes its name on a thread-local stack and
the recorded path is the ``"/"``-joined stack (``"stream.warmup"``
inside nothing records ``stream.warmup``; a ``"fit"`` span opened
inside it records ``stream.warmup/fit``). Totals land in the registry
as per-path ``{count, seconds}`` aggregates — no per-event storage, so
a span on a hot path costs two ``perf_counter`` calls and a dict
update.

Disabled (the default), :func:`span` returns a shared no-op singleton:
the hot path pays exactly one branch and no allocation. The overhead
contract is gated by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import functools
import threading
import time

from repro.obs import registry as _registry_mod

__all__ = ["NULL_SPAN", "Span", "span", "traced"]

_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class _NullSpan:
    """The disabled-mode span: enter/exit do nothing, one shared copy."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """A timed, nestable region recorded into a registry on exit."""

    __slots__ = ("name", "_registry", "_path", "_start")

    def __init__(self, name: str, registry=None) -> None:
        self.name = name
        self._registry = registry

    def __enter__(self) -> "Span":
        stack = _stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        _stack().pop()
        registry = (
            self._registry if self._registry is not None
            else _registry_mod.get_registry()
        )
        registry.record_span(self._path, elapsed)
        return False


def span(name: str, registry=None):
    """A context manager timing ``name`` — no-op when obs is disabled."""
    if not _registry_mod.is_enabled():
        return NULL_SPAN
    return Span(name, registry)


def traced(name: str | None = None):
    """Decorator form: time every call as a span named after the
    function (or ``name``), still one branch when disabled::

        @obs.traced("runner.warm")
        def warm(...): ...
    """

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _registry_mod.is_enabled():
                return fn(*args, **kwargs)
            with Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
