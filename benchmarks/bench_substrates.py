"""Throughput microbenchmarks for the substrates.

These are classic pytest-benchmark timing loops: packets/second through
the AfterImage extractor (both engines), the flow assembler, the pcap
codec, and the traffic generators — the performance envelope that
bounds how large an evaluation the pipeline can run. Each loop records
its headline number as ``BENCH_substrates_*.json`` at the repo root
(``benchmarks/bench_netstat_throughput.py`` is the dedicated
scalar-vs-vector comparison with the parity gate).
"""

import pytest

from repro.datasets import generate_dataset
from repro.features.netstat import NetStat
from repro.flows.assembler import FlowAssembler
from repro.net.packet import Packet
from repro.net.pcap import read_pcap, write_pcap

from benchmarks.conftest import bench_seconds, save_bench_json


@pytest.fixture(scope="module")
def packets():
    return generate_dataset("Mirai", seed=0, scale=0.1).packets


def test_netstat_throughput(benchmark, packets):
    sample = packets[:2000]

    def extract():
        ns = NetStat()
        for packet in sample:
            ns.update(packet)

    benchmark(extract)
    save_bench_json(
        "substrates_netstat", metric="pps",
        value=round(len(sample) / bench_seconds(benchmark)),
        engine="vector", kernel=NetStat()._db.kernel_name,
    )


def test_netstat_scalar_throughput(benchmark, packets):
    sample = packets[:2000]

    def extract():
        ns = NetStat(engine="scalar")
        for packet in sample:
            ns.update(packet)

    benchmark(extract)
    save_bench_json(
        "substrates_netstat_scalar", metric="pps",
        value=round(len(sample) / bench_seconds(benchmark)),
        engine="scalar",
    )


def test_flow_assembly_throughput(benchmark, packets):
    def assemble():
        return FlowAssembler().assemble(packets)

    flows = benchmark(assemble)
    assert flows
    save_bench_json(
        "substrates_flow_assembly", metric="pps",
        value=round(len(packets) / bench_seconds(benchmark)),
        flows=len(flows),
    )


def test_pcap_write_throughput(benchmark, packets, tmp_path_factory):
    path = tmp_path_factory.mktemp("pcap") / "bench.pcap"

    def write():
        return write_pcap(path, packets)

    count = benchmark(write)
    assert count == len(packets)
    save_bench_json(
        "substrates_pcap_write", metric="pps",
        value=round(count / bench_seconds(benchmark)),
    )


def test_pcap_read_throughput(benchmark, packets, tmp_path_factory):
    path = tmp_path_factory.mktemp("pcap") / "bench-read.pcap"
    write_pcap(path, packets)
    loaded = benchmark(lambda: read_pcap(path))
    assert len(loaded) == len(packets)
    save_bench_json(
        "substrates_pcap_read", metric="pps",
        value=round(len(loaded) / bench_seconds(benchmark)),
    )


def test_packet_serialization_throughput(benchmark, packets):
    sample = packets[:2000]

    def roundtrip():
        return [Packet.from_bytes(p.to_bytes()) for p in sample]

    out = benchmark(roundtrip)
    assert len(out) == len(sample)
    save_bench_json(
        "substrates_packet_serialization", metric="pps",
        value=round(len(sample) / bench_seconds(benchmark)),
    )


def test_dataset_generation_throughput(benchmark):
    dataset = benchmark.pedantic(
        lambda: generate_dataset("BoT-IoT", seed=1, scale=0.2),
        rounds=1, iterations=1,
    )
    assert len(dataset) > 1000
    save_bench_json(
        "substrates_dataset_generation", metric="pps",
        value=round(len(dataset) / bench_seconds(benchmark)),
        scale=0.2, dataset="BoT-IoT",
    )
