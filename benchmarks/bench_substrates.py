"""Throughput microbenchmarks for the substrates.

These are classic pytest-benchmark timing loops: packets/second through
the AfterImage extractor, the flow assembler, the pcap codec, and the
traffic generators — the performance envelope that bounds how large an
evaluation the pipeline can run.
"""

import pytest

from repro.datasets import generate_dataset
from repro.features.netstat import NetStat
from repro.flows.assembler import FlowAssembler
from repro.net.packet import Packet
from repro.net.pcap import read_pcap, write_pcap


@pytest.fixture(scope="module")
def packets():
    return generate_dataset("Mirai", seed=0, scale=0.1).packets


def test_netstat_throughput(benchmark, packets):
    sample = packets[:2000]

    def extract():
        ns = NetStat()
        for packet in sample:
            ns.update(packet)

    benchmark(extract)


def test_flow_assembly_throughput(benchmark, packets):
    def assemble():
        return FlowAssembler().assemble(packets)

    flows = benchmark(assemble)
    assert flows


def test_pcap_write_throughput(benchmark, packets, tmp_path_factory):
    path = tmp_path_factory.mktemp("pcap") / "bench.pcap"

    def write():
        return write_pcap(path, packets)

    count = benchmark(write)
    assert count == len(packets)


def test_pcap_read_throughput(benchmark, packets, tmp_path_factory):
    path = tmp_path_factory.mktemp("pcap") / "bench-read.pcap"
    write_pcap(path, packets)
    loaded = benchmark(lambda: read_pcap(path))
    assert len(loaded) == len(packets)


def test_packet_serialization_throughput(benchmark, packets):
    sample = packets[:2000]

    def roundtrip():
        return [Packet.from_bytes(p.to_bytes()) for p in sample]

    out = benchmark(roundtrip)
    assert len(out) == len(sample)


def test_dataset_generation_throughput(benchmark):
    dataset = benchmark.pedantic(
        lambda: generate_dataset("BoT-IoT", seed=1, scale=0.2),
        rounds=1, iterations=1,
    )
    assert len(dataset) > 1000
