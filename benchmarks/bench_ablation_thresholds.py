"""Ablation A1: the anomaly-threshold strategy (paper Section IV-A-4).

The paper notes the threshold "might differ across IDSs due to their
varying sensitivity". This bench quantifies that: the same Kitsune
score stream re-thresholded under every strategy, on one separable
dataset (Mirai) and one inseparable one (CICIDS2017).

The two score streams are produced by ``ExperimentEngine.run_configs``
— bit-identical to a direct ``run_experiment`` call by the engine's
determinism contract, and cached/parallelisable like any matrix cell.
"""

from dataclasses import replace

import pytest

from repro.core.experiment import EXPERIMENT_MATRIX
from repro.core.metrics import compute_metrics
from repro.core.thresholds import standard_threshold
from repro.runner import ExperimentEngine
from repro.utils.tables import TextTable

from benchmarks.conftest import (bench_seconds, jobs_or,
                                 save_bench_json, save_result, scale_or)

DEFAULT_SCALE = 0.2

STRATEGIES = (
    ("fpr-budget", {"max_fpr": 0.05}),
    ("detection-priority", {"lambda_fpr": 0.3}),
    ("best-f1", {}),
)


@pytest.fixture(scope="module")
def score_streams(bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    configs = [
        replace(EXPERIMENT_MATRIX[("Kitsune", dataset)], scale=scale, seed=0)
        for dataset in ("Mirai", "CICIDS2017")
    ]
    engine = ExperimentEngine(jobs=jobs_or(bench_jobs))
    results = engine.run_configs(configs)
    return {
        result.config.dataset_name: (result.y_true, result.scores)
        for result in results
    }


def test_threshold_strategy_ablation(benchmark, score_streams):
    def sweep():
        rows = []
        for dataset, (y_true, scores) in score_streams.items():
            for strategy, kwargs in STRATEGIES:
                t = standard_threshold(y_true, scores, strategy=strategy,
                                       **kwargs)
                m = compute_metrics(y_true, scores >= t)
                rows.append((dataset, strategy, m))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["Dataset", "Strategy", "Acc.", "Prec.", "Rec.", "F1"])
    by_key = {}
    for dataset, strategy, m in rows:
        table.add_row([dataset, strategy, *m.row()])
        by_key[(dataset, strategy)] = m
    save_result("ablation_thresholds", table.render())
    save_bench_json(
        "ablation_thresholds", metric="sweep_seconds",
        value=round(bench_seconds(benchmark), 3),
        strategies=len(STRATEGIES), datasets=len(score_streams),
    )

    # Shape: on the separable dataset every strategy agrees (floods are
    # unmistakable); on the inseparable one, detection-priority floods
    # the alert channel while fpr-budget keeps precision by giving up
    # recall — the strategy choice *is* the result.
    assert by_key[("Mirai", "fpr-budget")].f1 > 0.9
    assert by_key[("Mirai", "detection-priority")].f1 > 0.9
    insep_dp = by_key[("CICIDS2017", "detection-priority")]
    insep_budget = by_key[("CICIDS2017", "fpr-budget")]
    assert insep_dp.recall > insep_budget.recall
    assert insep_dp.precision < 0.2
