"""Ablation A3: benign-baseline availability (paper Sections I, V-6).

Autoencoder IDSs need a clean benign training baseline. The paper
reports that training "on initial benign traffic ... often did not
result in adequate performance" when datasets lack a labelled benign
period. This bench contaminates Kitsune's training prefix with
increasing fractions of attack traffic and watches detection degrade.

Each contamination fraction is one engine cell: a custom experiment
kind (:func:`run_contamination_point`, named by dotted path so worker
processes can resolve it) dispatched through
``ExperimentEngine.run_configs``. The Mirai capture is requested
through the engine's dataset provider, so every fraction shares one
generated dataset and each point's result caches like a Table IV cell.
"""

import copy
import time

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.metrics import compute_metrics
from repro.core.thresholds import fpr_budget_threshold
from repro.flows.sampling import sort_by_timestamp
from repro.ids.kitsune import Kitsune
from repro.runner import ExperimentEngine
from repro.utils.tables import TextTable

from benchmarks.conftest import (bench_seconds, jobs_or,
                                 save_bench_json, save_result, scale_or)

CONTAMINATION = (0.0, 0.1, 0.3, 0.6)
DEFAULT_SCALE = 0.2

#: Dotted-path experiment kind, resolvable in engine worker processes.
CONTAMINATION_KIND = (
    "benchmarks.bench_ablation_benign_baseline:run_contamination_point"
)


def _contaminated_train(dataset, fraction):
    """The benign prefix plus a contiguous attack burst.

    The burst is a slice of the dataset's own attack phase, time-shifted
    into the middle of the prefix with its inter-packet gaps intact —
    i.e. at its true rate. This is what "no labelled benign period"
    really costs an autoencoder: the normalizer's learned ranges expand
    to cover attack-level feature values, so the same traffic no longer
    looks out-of-range at test time.
    """
    prefix = dataset.benign_prefix()
    if fraction == 0.0:
        return prefix
    attacks = [p for p in dataset.packets if p.label]
    count = int(len(prefix) * fraction)
    burst_source = attacks[:count]
    if not burst_source:
        return prefix
    midpoint = prefix[len(prefix) // 2].timestamp
    t0 = burst_source[0].timestamp
    injected = []
    for packet in burst_source:
        clone = copy.copy(packet)
        clone.timestamp = midpoint + (packet.timestamp - t0)
        injected.append(clone)
    return sort_by_timestamp(prefix + injected)


def run_contamination_point(config: ExperimentConfig, provider) -> ExperimentResult:
    """Kitsune trained on a contaminated prefix, tested on a fixed
    window of held-out benign packets plus the attack phase."""
    dataset = provider(config.dataset_name, seed=config.seed,
                       scale=config.scale)
    fraction = config.experiment_params["contamination"]
    prefix = dataset.benign_prefix()
    holdout = len(prefix) // 5  # benign negatives for the test window
    test = prefix[-holdout:] + dataset.packets[len(prefix):][:6000]
    y_true = np.array([p.label for p in test])
    train = _contaminated_train(dataset, fraction)
    train = [p for p in train
             if p.timestamp <= prefix[-holdout].timestamp or p.label]
    fm = max(100, len(train) // 10)
    ids = Kitsune(fm_grace=fm, ad_grace=max(100, len(train) - fm), seed=0)
    fit_score_start = time.perf_counter()
    ids.fit(train)
    scores = ids.anomaly_scores(test)
    fit_score_seconds = time.perf_counter() - fit_score_start
    threshold = fpr_budget_threshold(y_true, scores, max_fpr=0.05)
    return ExperimentResult(
        config=config,
        metrics=compute_metrics(y_true, scores >= threshold),
        threshold=threshold,
        scores=scores,
        y_true=y_true,
        notes={"contamination": fraction, "train_packets": len(train)},
        runtime_seconds=fit_score_seconds,
        attack_types=tuple(p.attack_type for p in test),
    )


def test_benign_baseline_ablation(benchmark, bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    configs = [
        ExperimentConfig(
            ids_name="Kitsune",
            dataset_name="Mirai",
            seed=0,
            scale=scale,
            experiment=CONTAMINATION_KIND,
            experiment_params={"contamination": fraction},
        )
        for fraction in CONTAMINATION
    ]
    engine = ExperimentEngine(jobs=jobs_or(bench_jobs))

    def sweep():
        results = engine.run_configs(configs)
        return [(r.notes["contamination"], r.metrics) for r in results]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["Train contamination", "Acc.", "Prec.", "Rec.", "F1"])
    for fraction, m in rows:
        table.add_row([f"{fraction:.0%}", *m.row()])
    save_result("ablation_benign_baseline", table.render())

    # Shape: clean baseline detects the botnet; a heavily contaminated
    # baseline (attack traffic normalised into "normal") loses recall.
    clean_f1 = rows[0][1].f1
    dirty_f1 = rows[-1][1].f1
    save_bench_json(
        "ablation_benign_baseline", metric="sweep_seconds",
        value=round(bench_seconds(benchmark), 3), scale=scale,
        clean_f1=clean_f1, dirty_f1=dirty_f1,
    )
    assert clean_f1 > 0.8
    assert dirty_f1 < clean_f1
