"""Ablation A3: benign-baseline availability (paper Sections I, V-6).

Autoencoder IDSs need a clean benign training baseline. The paper
reports that training "on initial benign traffic ... often did not
result in adequate performance" when datasets lack a labelled benign
period. This bench contaminates Kitsune's training prefix with
increasing fractions of attack traffic and watches detection degrade.
"""

import pytest

from repro.core.metrics import compute_metrics
from repro.core.thresholds import fpr_budget_threshold
from repro.datasets import generate_dataset
from repro.flows.sampling import sort_by_timestamp
from repro.ids.kitsune import Kitsune
from repro.utils.rng import SeededRNG
from repro.utils.tables import TextTable

from benchmarks.conftest import save_result

CONTAMINATION = (0.0, 0.1, 0.3, 0.6)


@pytest.fixture(scope="module")
def mirai():
    return generate_dataset("Mirai", seed=0, scale=0.2)


def _contaminated_train(dataset, fraction, rng):
    """The benign prefix plus a contiguous attack burst.

    The burst is a slice of the dataset's own attack phase, time-shifted
    into the middle of the prefix with its inter-packet gaps intact —
    i.e. at its true rate. This is what "no labelled benign period"
    really costs an autoencoder: the normalizer's learned ranges expand
    to cover attack-level feature values, so the same traffic no longer
    looks out-of-range at test time.
    """
    prefix = dataset.benign_prefix()
    if fraction == 0.0:
        return prefix
    import copy

    attacks = [p for p in dataset.packets if p.label]
    count = int(len(prefix) * fraction)
    burst_source = attacks[:count]
    if not burst_source:
        return prefix
    midpoint = prefix[len(prefix) // 2].timestamp
    t0 = burst_source[0].timestamp
    injected = []
    for packet in burst_source:
        clone = copy.copy(packet)
        clone.timestamp = midpoint + (packet.timestamp - t0)
        injected.append(clone)
    return sort_by_timestamp(prefix + injected)


def test_benign_baseline_ablation(benchmark, mirai):
    def sweep():
        import numpy as np

        rows = []
        prefix = mirai.benign_prefix()
        holdout = len(prefix) // 5  # benign negatives for the test window
        test = prefix[-holdout:] + mirai.packets[len(prefix):][:6000]
        y_true = np.array([p.label for p in test])
        for fraction in CONTAMINATION:
            rng = SeededRNG(7, f"contam-{fraction}")
            train = _contaminated_train(mirai, fraction, rng)
            train = [p for p in train if p.timestamp <= prefix[-holdout].timestamp
                     or p.label]
            fm = max(100, len(train) // 10)
            ids = Kitsune(fm_grace=fm, ad_grace=max(100, len(train) - fm),
                          seed=0)
            ids.fit(train)
            scores = ids.anomaly_scores(test)
            t = fpr_budget_threshold(y_true, scores, max_fpr=0.05)
            rows.append((fraction, compute_metrics(y_true, scores >= t)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["Train contamination", "Acc.", "Prec.", "Rec.", "F1"])
    for fraction, m in rows:
        table.add_row([f"{fraction:.0%}", *m.row()])
    save_result("ablation_benign_baseline", table.render())

    # Shape: clean baseline detects the botnet; a heavily contaminated
    # baseline (attack traffic normalised into "normal") loses recall.
    clean_f1 = rows[0][1].f1
    dirty_f1 = rows[-1][1].f1
    assert clean_f1 > 0.8
    assert dirty_f1 < clean_f1
