"""Capture-to-features ingest throughput: columnar mmap vs packet objects.

Everything upstream of the feature matrix is ingest: reading capture
bytes and turning them into NetStat's input. The packet-object path
decodes one :class:`~repro.net.packet.Packet` per record and feeds the
batched extractor a list; the ``columnar-mmap`` backend
(:mod:`repro.net.columnar`) mmaps the capture, decodes headers with
vectorized NumPy gathers into column batches, and feeds those batches
to the extractor directly — no per-packet objects on the hot path.

This bench writes a synthetic replay to a pcap (untimed), then times
the full pcap→features pipeline under both backends and gates:

* **bit parity while it measures** — the two feature matrices must be
  ``np.array_equal`` (a fast-but-wrong decode must not pass), and the
  live capture paths must produce identical score and coverage
  digests under both backends;
* **speedup** — at scale >= 1.0 the columnar path must be >= 3x the
  packet-object path on the headline dataset;
* **sharded parity** — a 2-worker sharded run over column-slice IPC
  must reproduce the single-process coverage digest.

The headline dataset is CICIDS2017 (flow uniqueness ~29% of packets —
typical captures revisit conversations, which is what the columnar
path's per-unique-flow amortisation exploits). Mirai is measured too
and recorded as the documented worst case: its scan phase makes ~80%
of packets a fresh flow, so stream-entry resolution dominates and the
speedup compresses (see docs/PERFORMANCE.md).

Run the acceptance configuration with::

    PYTHONPATH=src pytest benchmarks/bench_ingest_throughput.py -s --scale 1.0
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.features.netstat import NetStat
from repro.net.columnar import ColumnarPcapReader
from repro.net.pcap import PcapReader, write_pcap

from benchmarks.conftest import save_bench_json, save_result, scale_or

DEFAULT_SCALE = 1.0
SEED = 0
#: Headline dataset: typical flow-revisit traffic (~29% unique flows).
DATASET = "CICIDS2017"
#: Documented worst case: scan-heavy, ~80% of packets open a new flow.
WORST_CASE_DATASET = "Mirai"
#: Acceptance gate at scale >= 1.0 on the headline dataset.
FULL_SCALE_SPEEDUP = 3.0
#: Best-of-N timing to damp scheduler noise on small CI hosts.
REPEATS = 3


def _write_capture(tmp_path: Path, dataset: str, scale: float) -> Path:
    from repro.datasets.registry import generate_dataset_uncached

    data = generate_dataset_uncached(dataset, seed=SEED, scale=scale)
    path = tmp_path / f"{dataset.lower()}.pcap"
    write_pcap(path, data.packets)
    return path


def _time_object_path(capture: Path) -> tuple[float, np.ndarray]:
    """pcap -> Packet objects -> features, end to end."""
    best = float("inf")
    matrix = None
    for _ in range(REPEATS):
        extractor = NetStat(engine="vector")
        start = time.perf_counter()
        packets = list(PcapReader(capture))
        matrix = extractor.extract_all(packets)
        best = min(best, time.perf_counter() - start)
    return best, matrix


def _time_columnar_path(capture: Path) -> tuple[float, np.ndarray]:
    """pcap -> mmap'd column batches -> features, end to end."""
    best = float("inf")
    matrix = None
    for _ in range(REPEATS):
        extractor = NetStat(engine="vector")
        start = time.perf_counter()
        chunks = [
            extractor.extract_all(batch)
            for batch in ColumnarPcapReader(capture)
        ]
        matrix = np.vstack(chunks)
        best = min(best, time.perf_counter() - start)
    return best, matrix


def _measure(capture: Path) -> dict:
    object_seconds, object_matrix = _time_object_path(capture)
    columnar_seconds, columnar_matrix = _time_columnar_path(capture)
    # Parity gate while measuring: speed must not change semantics.
    assert object_matrix.shape == columnar_matrix.shape
    assert np.array_equal(object_matrix, columnar_matrix), (
        "columnar features diverged from the packet-object reference — "
        "bit-parity contract broken"
    )
    n = len(object_matrix)
    return {
        "packets": n,
        "object_seconds": object_seconds,
        "columnar_seconds": columnar_seconds,
        "object_pps": n / object_seconds,
        "columnar_pps": n / columnar_seconds,
        "speedup": object_seconds / columnar_seconds,
    }


def _warmup_for(packets: int) -> int:
    """Warmup prefix that leaves a stream to score even at smoke scales."""
    return min(1000, max(200, packets // 2))


def _capture_digests(capture: Path, ingest_backend: str, warmup: int) -> dict:
    """Score + coverage digests of a live capture session."""
    from repro.stream import (
        PcapReplaySource,
        build_streaming_detector,
        stream_capture,
    )

    detector = build_streaming_detector(
        "Kitsune", seed=SEED, labelled=False, warmup_packets=warmup
    )
    report = stream_capture(
        PcapReplaySource(capture),
        detector,
        warmup_packets=warmup,
        threshold=0.5,
        ingest_backend=ingest_backend,
    )
    return {
        "score_digest": report.notes["score_digest"],
        "coverage_digest": report.notes["coverage_digest"],
        "ingest_backend": report.notes["ingest_backend"],
    }


def _sharded_coverage_digest(capture: Path, warmup: int) -> str:
    """Coverage digest of a 2-worker sharded run over column-slice IPC."""
    from repro.stream import (
        PcapReplaySource,
        build_streaming_detector,
        stream_capture_sharded,
    )

    detector = build_streaming_detector(
        "Kitsune", seed=SEED, labelled=False, warmup_packets=warmup
    )
    report = stream_capture_sharded(
        PcapReplaySource(capture),
        detector,
        workers=2,
        warmup_packets=warmup,
        threshold=0.5,
        ingest_backend="columnar-mmap",
    )
    assert report.notes["ingest_backend"] == "columnar-mmap"
    return report.notes["coverage_digest"]


def test_ingest_throughput(bench_scale, tmp_path):
    scale = scale_or(bench_scale, DEFAULT_SCALE)

    capture = _write_capture(tmp_path, DATASET, scale)
    headline = _measure(capture)
    worst_capture = _write_capture(tmp_path, WORST_CASE_DATASET, scale)
    worst = _measure(worst_capture)

    # Live-path digest parity: the streaming session must score the
    # same packets to the same bits under either ingest backend...
    warmup = _warmup_for(headline["packets"])
    object_digests = _capture_digests(capture, "packet-objects", warmup)
    columnar_digests = _capture_digests(capture, "columnar-mmap", warmup)
    assert columnar_digests["ingest_backend"] == "columnar-mmap"
    assert (
        object_digests["score_digest"] == columnar_digests["score_digest"]
    ), "columnar live path changed scores — bit-parity contract broken"
    assert (
        object_digests["coverage_digest"]
        == columnar_digests["coverage_digest"]
    ), "columnar live path changed coverage"
    # ...and a 2-worker sharded run (column batches sliced per shard
    # and shipped over IPC) must cover exactly the same packets.
    sharded_digest = _sharded_coverage_digest(capture, warmup)
    assert sharded_digest == columnar_digests["coverage_digest"], (
        "sharded columnar coverage diverged from single-process"
    )

    lines = [
        f"ingest throughput @ scale={scale} seed={SEED} "
        f"(pcap -> features, best of {REPEATS})",
        f"  {'dataset':12s} {'packets':>8s} {'objects':>10s} "
        f"{'columnar':>10s} {'obj pkt/s':>11s} {'col pkt/s':>11s} "
        f"{'speedup':>8s}",
    ]
    for name, row in ((DATASET, headline), (WORST_CASE_DATASET, worst)):
        lines.append(
            f"  {name:12s} {row['packets']:8d} "
            f"{row['object_seconds']:9.3f}s {row['columnar_seconds']:9.3f}s "
            f"{row['object_pps']:11,.0f} {row['columnar_pps']:11,.0f} "
            f"{row['speedup']:7.2f}x"
        )
    lines.append(
        f"  feature bit-parity: pass; live score digest "
        f"{columnar_digests['score_digest'][:12]} identical across "
        f"backends; sharded(2) coverage digest matches single-process"
    )
    save_result("ingest_throughput", "\n".join(lines))

    save_bench_json(
        "ingest_throughput",
        metric="ingest_speedup",
        value=round(headline["speedup"], 3),
        scale=scale,
        ingest_backend="columnar-mmap",
        dataset=DATASET,
        packets=headline["packets"],
        object_pps=round(headline["object_pps"]),
        columnar_pps=round(headline["columnar_pps"]),
        object_seconds=round(headline["object_seconds"], 4),
        columnar_seconds=round(headline["columnar_seconds"], 4),
        feature_parity=True,
        score_digest=columnar_digests["score_digest"],
        coverage_digest=columnar_digests["coverage_digest"],
        sharded_coverage_parity=True,
        worst_case={
            "dataset": WORST_CASE_DATASET,
            "packets": worst["packets"],
            "speedup": round(worst["speedup"], 3),
            "object_pps": round(worst["object_pps"]),
            "columnar_pps": round(worst["columnar_pps"]),
        },
    )

    assert headline["speedup"] > 1.0, (
        f"columnar ingest slower than packet objects: "
        f"{headline['speedup']:.2f}x"
    )
    if scale >= 1.0:
        assert headline["speedup"] >= FULL_SCALE_SPEEDUP, (
            f"columnar ingest speedup {headline['speedup']:.2f}x below "
            f"the {FULL_SCALE_SPEEDUP}x acceptance gate at scale {scale}"
        )
