"""Diff fresh ``BENCH_*.json`` results against a committed baseline.

Every bench writes one headline metric to ``BENCH_<name>.json`` at the
repo root; those files are committed, so the performance trajectory is
part of history. This tool compares a freshly-generated set against
the committed baseline and fails (exit 1) when any headline metric
regressed by more than the threshold (default 20%) — CI runs it after
the perf-smoke benches so a regression breaks the build instead of
silently landing.

Comparison rules:

* Benches are matched by their embedded ``bench`` name; files present
  on only one side are reported but never fail the run (new benches
  must be able to land, retired ones to leave).
* Values are compared only when both sides ran at the same ``scale``
  — a 0.05 smoke value against a committed scale-1.0 number would be
  noise, so mismatched scales are skipped, not judged.
* Direction matters: ``overhead_ratio`` regresses upward, every other
  metric (speedups, throughputs, match counts) regresses downward.

Usage::

    python benchmarks/compare_bench.py <baseline-dir-or-file> <fresh-dir-or-file>
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Metrics where a *smaller* value is the better one.
LOWER_IS_BETTER = frozenset({"overhead_ratio"})
DEFAULT_THRESHOLD = 0.20


@dataclass(frozen=True)
class Comparison:
    """The verdict for one bench present in both result sets."""

    bench: str
    metric: str
    baseline: float
    fresh: float
    ratio: float | None  # fresh relative change, signed (+ = improved)
    skipped: str | None  # reason the value comparison was skipped
    regressed: bool


def load_payloads(path: Path) -> dict[str, dict]:
    """Load ``BENCH_*.json`` payloads from a file or directory, keyed
    by embedded bench name."""
    files = [path] if path.is_file() else sorted(path.glob("BENCH_*.json"))
    payloads = {}
    for file in files:
        payload = json.loads(file.read_text())
        payloads[payload["bench"]] = payload
    return payloads


def _relative_change(metric: str, baseline: float, fresh: float) -> float:
    """Signed relative change where positive always means *improved*."""
    if baseline == 0:
        return 0.0
    change = (fresh - baseline) / abs(baseline)
    return -change if metric in LOWER_IS_BETTER else change


def compare(
    baseline: dict[str, dict],
    fresh: dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Comparison]:
    """Compare two payload sets; one :class:`Comparison` per common bench."""
    results = []
    for name in sorted(set(baseline) & set(fresh)):
        base, new = baseline[name], fresh[name]
        metric = new.get("metric", base.get("metric", "value"))
        base_value = float(base["value"])
        new_value = float(new["value"])
        if base.get("scale") != new.get("scale"):
            results.append(Comparison(
                bench=name, metric=metric,
                baseline=base_value, fresh=new_value,
                ratio=None,
                skipped=(
                    f"scale mismatch (baseline {base.get('scale')} "
                    f"vs fresh {new.get('scale')})"
                ),
                regressed=False,
            ))
            continue
        change = _relative_change(metric, base_value, new_value)
        results.append(Comparison(
            bench=name, metric=metric,
            baseline=base_value, fresh=new_value,
            ratio=change, skipped=None,
            regressed=change < -threshold,
        ))
    return results


def render(
    results: list[Comparison],
    only_baseline: set[str],
    only_fresh: set[str],
    threshold: float,
) -> str:
    lines = [
        f"bench comparison (regression threshold {threshold:.0%})",
        f"  {'bench':32s} {'metric':18s} {'baseline':>10s} "
        f"{'fresh':>10s} {'change':>8s}  verdict",
    ]
    for result in results:
        if result.skipped:
            verdict = f"skipped: {result.skipped}"
            change = "-"
        elif result.regressed:
            verdict = "REGRESSED"
            change = f"{result.ratio:+.1%}"
        else:
            verdict = "ok"
            change = f"{result.ratio:+.1%}"
        lines.append(
            f"  {result.bench:32s} {result.metric:18s} "
            f"{result.baseline:10.3f} {result.fresh:10.3f} "
            f"{change:>8s}  {verdict}"
        )
    for name in sorted(only_baseline):
        lines.append(f"  {name:32s} (baseline only — not judged)")
    for name in sorted(only_fresh):
        lines.append(f"  {name:32s} (fresh only — not judged)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh bench results regress vs a baseline",
    )
    parser.add_argument(
        "baseline", type=Path,
        help="directory of committed BENCH_*.json files (or one file)",
    )
    parser.add_argument(
        "fresh", type=Path,
        help="directory of freshly-generated BENCH_*.json files (or one file)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative regression that fails the run (default 0.20)",
    )
    args = parser.parse_args(argv)

    baseline = load_payloads(args.baseline)
    fresh = load_payloads(args.fresh)
    results = compare(baseline, fresh, threshold=args.threshold)
    print(render(
        results,
        only_baseline=set(baseline) - set(fresh),
        only_fresh=set(fresh) - set(baseline),
        threshold=args.threshold,
    ))
    regressed = [result for result in results if result.regressed]
    if regressed:
        names = ", ".join(result.bench for result in regressed)
        print(f"FAIL: {len(regressed)} bench(es) regressed: {names}")
        return 1
    print(f"OK: {len(results)} bench(es) compared, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
