"""Measures the execution engine against the seed's serial loop.

Three timings of the full Table IV matrix at benchmark scale:

* **baseline** — the seed reproduction's path: serial ``run_experiment``
  per cell, regenerating every dataset from scratch each time;
* **engine (cold)** — ``ExperimentEngine`` with dataset caching and
  ``--jobs``-style process dispatch, starting from an empty cache;
* **engine (warm)** — the same engine rerun against the populated
  on-disk cache, the incremental-iteration workflow (re-running the
  matrix after touching one IDS recomputes only affected cells; here
  nothing changed, so every cell is a whole-cell hit).

All three must produce bit-identical metrics; the warm path must be at
least 2x faster than the baseline. Scale/jobs are overridable for CI
smoke runs via the common bench options::

    pytest benchmarks/bench_engine_speedup.py -s --scale 0.05 --jobs 2
"""

import time
from dataclasses import replace

import numpy as np

from repro.core.experiment import (
    DATASET_ORDER,
    EXPERIMENT_MATRIX,
    run_experiment,
)
from repro.runner import ExperimentEngine, plan_cells

from benchmarks.conftest import (jobs_or, save_bench_json, save_result,
                                 scale_or)

DEFAULT_SCALE = 0.35
DEFAULT_JOBS = 2
SEED = 0
IDS_NAMES = ("Kitsune", "HELAD", "DNN", "Slips")


def _run_baseline(scale):
    """The seed's serial path: fresh generation for every cell."""
    results = {}
    for ids_name in IDS_NAMES:
        for dataset_name in DATASET_ORDER:
            config = replace(
                EXPERIMENT_MATRIX[(ids_name, dataset_name)],
                seed=SEED, scale=scale,
            )
            results[(ids_name, dataset_name)] = run_experiment(config)
    return results


def test_engine_speedup(tmp_path, bench_scale, bench_jobs):
    SCALE = scale_or(bench_scale, DEFAULT_SCALE)
    JOBS = jobs_or(bench_jobs, DEFAULT_JOBS)
    cells = plan_cells(IDS_NAMES, DATASET_ORDER, seed=SEED, scale=SCALE)

    start = time.perf_counter()
    baseline = _run_baseline(SCALE)
    t_baseline = time.perf_counter() - start

    cold_engine = ExperimentEngine(jobs=JOBS, cache_dir=tmp_path)
    start = time.perf_counter()
    cold = cold_engine.run(cells)
    t_cold = time.perf_counter() - start

    warm_engine = ExperimentEngine(jobs=JOBS, cache_dir=tmp_path)
    start = time.perf_counter()
    warm = warm_engine.run(cells)
    t_warm = time.perf_counter() - start

    # Identical science first, speed second.
    for key, expected in baseline.items():
        for candidate in (cold, warm):
            np.testing.assert_array_equal(expected.scores, candidate[key].scores)
            assert expected.metrics == candidate[key].metrics, key
            assert expected.threshold == candidate[key].threshold, key

    speedup_cold = t_baseline / t_cold
    speedup_warm = t_baseline / t_warm
    report = "\n".join([
        f"engine speedup @ scale={SCALE} jobs={JOBS} "
        f"({len(cells)} cells, seed={SEED})",
        f"  baseline (serial, uncached): {t_baseline:8.2f}s",
        f"  engine cold (dataset cache): {t_cold:8.2f}s  "
        f"speedup {speedup_cold:5.2f}x",
        f"  engine warm (result reuse):  {t_warm:8.2f}s  "
        f"speedup {speedup_warm:5.2f}x",
        "  cold run:  " + cold_engine.last_telemetry.summary().replace("\n", "\n  "),
        "  warm run:  " + warm_engine.last_telemetry.summary().replace("\n", "\n  "),
    ])
    save_result("engine_speedup", report)
    save_bench_json(
        "engine_speedup", metric="warm_speedup",
        value=round(speedup_warm, 3), scale=SCALE, jobs=JOBS,
        cold_speedup=round(speedup_cold, 3),
        baseline_seconds=round(t_baseline, 3),
        cold_seconds=round(t_cold, 3), warm_seconds=round(t_warm, 3),
    )

    assert warm_engine.last_telemetry.result_cache_hits == len(cells)
    # At benchmark scale the cold engine must at least not lose to the
    # baseline beyond pool-startup noise. At smoke scales (CI) cells are
    # sub-second and pool startup dominates, so the cold timing is
    # reported but not gated — a shared runner's scheduler jitter must
    # not fail unrelated PRs.
    if SCALE >= 0.2:
        assert t_cold <= t_baseline * 1.25, report
    assert speedup_warm >= 2.0, report
