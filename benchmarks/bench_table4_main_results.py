"""Regenerates paper Table IV: the 4 IDS x 5 dataset evaluation.

This is the headline reproduction. Absolute numbers differ from the
paper (synthetic substrate, not the authors' testbed); the assertions
check the qualitative *shape* instead — who wins, where each system
collapses, which dataset flips the ordering. See DESIGN.md section 4.
"""

import pytest

from repro.core.pipeline import IDSAnalysisPipeline
from repro.core.report import render_shape_checks, render_table4

from benchmarks.conftest import (jobs_or, save_bench_json, save_result,
                                 scale_or)

DEFAULT_SCALE = 0.35
SEED = 0


@pytest.fixture(scope="module")
def pipeline(bench_scale, bench_jobs):
    p = IDSAnalysisPipeline(seed=SEED, scale=scale_or(bench_scale, DEFAULT_SCALE),
                            jobs=jobs_or(bench_jobs))
    p.run_all(verbose=True)
    return p


def test_table4_full_matrix(benchmark, pipeline):
    # The pipeline already ran (module fixture); benchmark the cheap
    # aggregation so the heavy work is counted once, not per-round.
    benchmark(lambda: [pipeline.average_for(n) for n in pipeline.ids_names])
    report = render_table4(pipeline) + "\n\n" + render_shape_checks(pipeline)
    report += "\n\n" + pipeline.telemetry.summary()
    save_result("table4_main_results", report)
    checks = pipeline.shape_checks()
    save_bench_json(
        "table4_main_results", metric="shape_checks_passed",
        value=sum(1 for c in checks if c.passed), scale=pipeline.scale,
        total_checks=len(checks),
        cells=len(pipeline.results),
    )
    failed = [c for c in checks if not c.passed]
    assert not failed, "shape checks failed: " + "; ".join(
        f"{c.claim} ({c.detail})" for c in failed
    )


def test_table4_dnn_row_matches_paper_pattern(benchmark, pipeline):
    """The paper's most distinctive artefact: the DNN's all-positive
    collapse (recall 1.0, accuracy == precision == prevalence)."""
    rows = benchmark(
        lambda: {d: pipeline.results[("DNN", d)].metrics
                 for d in pipeline.dataset_names}
    )
    for dataset, metrics in rows.items():
        assert metrics.recall > 0.93, dataset
        assert abs(metrics.accuracy - metrics.precision) < 0.08, dataset


def test_table4_slips_row_matches_paper_pattern(benchmark, pipeline):
    """Slips: zero flow-level detections on UNSW-NB15 and BoT-IoT, and
    its accuracy on BoT-IoT collapses to the benign fraction."""
    rows = benchmark(
        lambda: {d: pipeline.results[("Slips", d)].metrics
                 for d in pipeline.dataset_names}
    )
    for dataset in ("UNSW-NB15", "BoT-IoT"):
        assert rows[dataset].recall == 0.0, dataset
        assert rows[dataset].precision == 0.0, dataset
    assert rows["BoT-IoT"].accuracy < 0.1
    assert rows["Stratosphere"].f1 > 0.4
