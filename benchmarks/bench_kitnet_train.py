"""KitNET training-phase throughput: sequential reference vs engines.

The execute phase went batched in PR 5; profiling then showed the
*training* grace period dominating every cold start (the ``repro-cli
profile`` ``kitnet-train`` stage) — per-row Python dispatch through
every group autoencoder for the whole ad-grace prefix. This bench
replays the Mirai feature stream's training prefix three ways:

* the sequential per-row reference (``KitNET.process`` — the bit-exact
  trajectory),
* the cross-group parallel online engine (``train_workers=...``),
  which must match the reference **bit for bit** — scores and final
  weights — or the bench fails (a fast-but-wrong engine must not pass),
* the stacked mini-batch SGD engine (``train_mode="minibatch"``) at
  several flush sizes — an intentionally different learning trajectory
  (pinned by its own golden fixture in the test suite), so it is only
  sanity-checked for finiteness here.

The feature-mapping prefix (including the one-time correlation
clustering in ``FeatureMapper.finalise``) is replayed untimed on every
detector: it is identical work on every path and not what the training
engines accelerate. Timings cover the ad-grace rows only.

Run the acceptance configuration with::

    PYTHONPATH=src pytest benchmarks/bench_kitnet_train.py -s --scale 1.0

At full scale the best engine must be >= 3x the sequential reference.
Results land in ``BENCH_kitnet_train.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.features.netstat import NetStat
from repro.ids.kitsune.kitnet import KitNET
from repro.utils.rng import SeededRNG

from benchmarks.conftest import save_bench_json, save_result, scale_or

DEFAULT_SCALE = 1.0
SEED = 0
DATASET = "Mirai"
TRAIN_BATCHES = (64, 256, 1024)
#: Acceptance gate for the best training engine at scale >= 1.0.
FULL_SCALE_SPEEDUP = 3.0


def _training_stream(scale: float):
    """The Mirai replay's feature rows split at the grace boundaries.

    Returns ``(dim, fm_grace, ad_grace, fm_rows, train_rows)`` where
    ``train_rows`` are exactly the rows the online reference trains on
    (post-increment count in ``[fm+1, fm+ad-1]``) plus the boundary row
    it executes — i.e. everything up to the grace boundary.
    """
    from repro.core.profiling import kitnet_grace_split
    from repro.datasets.registry import generate_dataset_uncached

    packets = generate_dataset_uncached(
        DATASET, seed=SEED, scale=scale
    ).packets
    extractor = NetStat(engine="vector")
    features = extractor.extract_all(packets)
    fm_grace, ad_grace, boundary = kitnet_grace_split(len(features))
    return (
        extractor.feature_count,
        fm_grace,
        ad_grace,
        features[:fm_grace],
        features[fm_grace:boundary],
    )


def _weights(detector: KitNET) -> list[np.ndarray]:
    layers = []
    for ae in [*detector.ensemble, detector.output_layer]:
        layers += [
            ae.encoder.weights, ae.encoder.bias,
            ae.decoder.weights, ae.decoder.bias,
        ]
    return layers


def test_kitnet_train_throughput(bench_scale):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    dim, fm_grace, ad_grace, fm_rows, train_rows = _training_stream(scale)
    n_rows = len(train_rows)
    assert n_rows > 0, f"no training rows at scale {scale}"

    def fresh(**kwargs) -> KitNET:
        detector = KitNET(
            dim,
            fm_grace=fm_grace,
            ad_grace=ad_grace,
            rng=SeededRNG(SEED, "bench-kitnet-train"),
            **kwargs,
        )
        # Feature-mapping prefix (and the one-time clustering) untimed:
        # identical on every path, and not what the engines accelerate.
        detector.process_batch(fm_rows)
        return detector

    reference = fresh()
    start = time.perf_counter()
    reference_scores = np.array(
        [reference.process(row) for row in train_rows]
    )
    reference_seconds = time.perf_counter() - start
    reference_pps = n_rows / reference_seconds

    # Cross-group parallel online engine: must be bit-identical.
    workers = max(2, min(8, os.cpu_count() or 1))
    parallel = fresh(train_workers=workers)
    start = time.perf_counter()
    parallel_scores = parallel.process_batch(train_rows)
    parallel_seconds = time.perf_counter() - start
    assert np.array_equal(parallel_scores, reference_scores), (
        f"parallel-online (workers={workers}) diverged from the "
        "sequential reference — parity contract broken"
    )
    assert all(
        np.array_equal(a, b)
        for a, b in zip(_weights(reference), _weights(parallel))
    ), "parallel-online final weights diverged from the reference"

    # Mini-batch SGD engine: different trajectory by design, so only
    # sanity-checked (the golden fixture pins its scores in the tests).
    minibatch_rows = {}
    for train_batch in TRAIN_BATCHES:
        detector = fresh(train_mode="minibatch", train_batch=train_batch)
        start = time.perf_counter()
        scores = detector.process_batch(train_rows)
        elapsed = time.perf_counter() - start
        assert np.all(np.isfinite(scores)), (
            f"minibatch train_batch={train_batch} produced "
            "non-finite scores"
        )
        minibatch_rows[train_batch] = {
            "seconds": elapsed,
            "pps": n_rows / elapsed,
        }

    best_batch = max(minibatch_rows, key=lambda b: minibatch_rows[b]["pps"])
    minibatch_speedup = minibatch_rows[best_batch]["pps"] / reference_pps
    parallel_speedup = reference_seconds / parallel_seconds
    speedup = max(minibatch_speedup, parallel_speedup)

    lines = [
        f"kitnet training throughput @ scale={scale} dataset={DATASET} "
        f"seed={SEED} ({n_rows} training rows, "
        f"{len(reference.ensemble)} groups)",
        f"  {'path':26s} {'rows/s':>12s} {'seconds':>9s}",
        f"  {'sequential reference':26s} {reference_pps:12,.0f} "
        f"{reference_seconds:9.3f}",
        f"  {f'parallel-online (w={workers})':26s} "
        f"{n_rows / parallel_seconds:12,.0f} {parallel_seconds:9.3f}",
    ]
    for train_batch, row in minibatch_rows.items():
        lines.append(
            f"  {f'minibatch (tb={train_batch})':26s} "
            f"{row['pps']:12,.0f} {row['seconds']:9.3f}"
        )
    lines.append(
        f"  parallel-online speedup: {parallel_speedup:.2f}x "
        "(bit-for-bit parity verified, scores and weights)"
    )
    lines.append(
        f"  minibatch speedup: {minibatch_speedup:.2f}x "
        f"(best train_batch {best_batch}, different trajectory by design)"
    )
    save_result("kitnet_train", "\n".join(lines))
    save_bench_json(
        "kitnet_train",
        metric="train_speedup",
        value=round(speedup, 3),
        scale=scale,
        dataset=DATASET,
        train_rows=n_rows,
        groups=len(reference.ensemble),
        parallel_workers=workers,
        parallel_backend="thread",
        parallel_parity=True,
        parallel_speedup=round(parallel_speedup, 3),
        minibatch_speedup=round(minibatch_speedup, 3),
        best_train_batch=best_batch,
        reference_rows_per_second=round(reference_pps),
        minibatch_rows_per_second={
            str(batch): round(row["pps"])
            for batch, row in minibatch_rows.items()
        },
    )

    # The best engine must clear the acceptance gate at full scale.
    if scale >= 1.0:
        assert speedup >= FULL_SCALE_SPEEDUP, (
            f"best training speedup {speedup:.2f}x below the "
            f"{FULL_SCALE_SPEEDUP}x acceptance gate at scale {scale}"
        )
