"""Gates the obs layer's hot-path cost: instrumented vs disabled.

The observability contract (``docs/OBSERVABILITY.md``) is that
disabled-by-default instrumentation costs the streaming hot path one
branch. This bench measures it end to end: the same Kitsune capture
session over the Mirai replay, three alternating rounds per arm
(obs disabled / obs enabled), comparing min-of-rounds stream time.
Scores must be bit-identical across arms — instrumentation may never
perturb results — and at calibrated scale the enabled arm must stay
within ``OVERHEAD_CEILING`` (3%) of the disabled arm::

    PYTHONPATH=src pytest benchmarks/bench_obs_overhead.py -s --scale 0.05

Tiny smoke scales run the parity gate but not the overhead ceiling:
sub-second streams are timer-noise-bound, not instrumentation-bound.
The measured ratio always lands in ``BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro import obs
from repro.stream.detector import build_streaming_detector
from repro.stream.service import stream_capture
from repro.stream.sources import DatasetSource

from benchmarks.conftest import save_bench_json, save_result, scale_or

DEFAULT_SCALE = 1.0
SEED = 0
DATASET = "Mirai"
BATCH = 256
ROUNDS = 3
OVERHEAD_CEILING = 0.03
GATE_MIN_SCALE = 1.0


@lru_cache(maxsize=2)
def _packets(scale: float) -> int:
    from repro.datasets.registry import generate_dataset_uncached

    return len(generate_dataset_uncached(DATASET, seed=SEED,
                                         scale=scale).packets)


def _warmup(scale: float) -> int:
    # Cap warmup so the measured execute phase dominates the session.
    return max(200, min(2000, _packets(scale) // 2))


def _one_round(scale: float, *, enabled: bool) -> tuple[float, str]:
    """One full capture session; returns (stream_seconds, score digest)."""
    obs.reset_registry()
    if enabled:
        obs.enable()
    else:
        obs.disable()
    try:
        report = stream_capture(
            DatasetSource(DATASET, seed=SEED, scale=scale),
            build_streaming_detector(
                "Kitsune", seed=SEED, batch_size=BATCH,
                warmup_packets=_warmup(scale),
            ),
            warmup_packets=_warmup(scale),
            window_seconds=30.0,
        )
    finally:
        obs.disable()
    digest = hashlib.sha256(report.scores.tobytes()).hexdigest()
    return report.stream_seconds, digest


def test_obs_overhead(bench_scale):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    _one_round(scale, enabled=False)  # warm caches / first-touch JIT

    off: list[float] = []
    on: list[float] = []
    digests: set[str] = set()
    # Alternate arms so drift (thermal, page cache) hits both equally.
    for _ in range(ROUNDS):
        seconds, digest = _one_round(scale, enabled=False)
        off.append(seconds)
        digests.add(digest)
        seconds, digest = _one_round(scale, enabled=True)
        on.append(seconds)
        digests.add(digest)

    assert len(digests) == 1, (
        "obs instrumentation changed the scores — the observability "
        "layer must be side-effect-free on results"
    )

    best_off, best_on = min(off), min(on)
    ratio = (best_on - best_off) / best_off
    lines = [
        f"obs overhead @ scale={scale} dataset={DATASET} "
        f"batch={BATCH} rounds={ROUNDS}",
        f"  disabled  min {best_off:8.3f}s  rounds "
        + " ".join(f"{s:.3f}" for s in off),
        f"  enabled   min {best_on:8.3f}s  rounds "
        + " ".join(f"{s:.3f}" for s in on),
        f"  overhead  {ratio * 100:+.2f}% (ceiling "
        f"{OVERHEAD_CEILING * 100:.0f}% at scale>={GATE_MIN_SCALE})",
    ]
    save_result("obs_overhead", "\n".join(lines))
    save_bench_json(
        "obs_overhead", metric="overhead_ratio", value=round(ratio, 4),
        scale=scale, dataset=DATASET, batch=BATCH, rounds=ROUNDS,
        disabled_seconds=round(best_off, 4),
        enabled_seconds=round(best_on, 4),
        ceiling=OVERHEAD_CEILING,
        gated=scale >= GATE_MIN_SCALE,
        scores_identical=True,
    )

    if scale >= GATE_MIN_SCALE:
        assert ratio <= OVERHEAD_CEILING, (
            f"enabled obs costs {ratio * 100:.2f}% on the streaming hot "
            f"path, above the {OVERHEAD_CEILING * 100:.0f}% ceiling"
        )
    else:
        # Smoke scales: the arms must at least be the same order.
        assert best_on < 2.0 * best_off, (
            f"enabled obs doubled the smoke-scale stream time "
            f"({best_on:.3f}s vs {best_off:.3f}s)"
        )
