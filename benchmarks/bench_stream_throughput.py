"""Measures online streaming throughput per IDS and micro-batch size.

For every evaluated IDS, the full streaming session (source → detector
→ windows → alerts) runs over the Mirai replay at several micro-batch
sizes, reporting packets/sec and scored items/sec. Micro-batching is a
pure throughput knob — the score digest must be identical across batch
sizes (the streaming parity contract), which this bench cross-checks
while it measures.

Scale/jobs follow the common bench options; ``--jobs N`` fans the
(IDS, batch) grid across a process pool::

    PYTHONPATH=src pytest benchmarks/bench_stream_throughput.py -s --scale 0.05 --jobs 2
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from functools import lru_cache

from repro.core.experiment import EXPERIMENT_MATRIX
from repro.stream.service import stream_experiment

from benchmarks.conftest import (jobs_or, save_bench_json, save_result,
                                 scale_or)

DEFAULT_SCALE = 0.3
SEED = 0
DATASET = "Mirai"
IDS_NAMES = ("Kitsune", "HELAD", "DNN", "Slips")
BATCH_SIZES = (64, 256, 1024)
#: The packet IDSs also run the batch-1 degenerate case, so the batched
#: execute engine's end-to-end win (and any regression to the
#: per-packet fallback) is visible. Flow IDSs skip it: they score
#: encoded feature matrices through BLAS, whose kernel choice varies
#: with matrix height, so the single-flow case is not bit-comparable —
#: their parity contract is defined over the operational batch sizes.
PACKET_IDS_BATCH_SIZES = (1, *BATCH_SIZES)
PACKET_IDS = ("Kitsune", "HELAD")


@lru_cache(maxsize=4)
def _cached_dataset(name: str, seed: int, scale: float):
    from repro.datasets.registry import generate_dataset_uncached

    return generate_dataset_uncached(name, seed=seed, scale=scale)


def _provider(name, *, seed=0, scale=1.0):
    return _cached_dataset(name, seed, scale)


def _stream_point(task):
    """One (IDS, batch size) measurement; runs in a pool worker under
    ``--jobs``, so everything in and out must pickle."""
    ids_name, batch_size, scale = task
    config = replace(
        EXPERIMENT_MATRIX[(ids_name, DATASET)], seed=SEED, scale=scale
    )
    report = stream_experiment(
        config, batch_size=batch_size, window_seconds=30.0,
        dataset_provider=_provider,
    )
    return {
        "ids": ids_name,
        "batch": batch_size,
        "unit": report.unit,
        "path": report.notes.get("scoring_path", "per-packet"),
        "n_scored": report.n_scored,
        "packets": report.packets_streamed,
        "pps": report.packets_per_second,
        "ips": report.items_per_second,
        "stream_seconds": report.stream_seconds,
        "digest": hashlib.sha256(report.scores.tobytes()).hexdigest(),
    }


def test_stream_throughput(bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    jobs = jobs_or(bench_jobs, 1)
    tasks = [
        (ids_name, batch_size, scale)
        for ids_name in IDS_NAMES
        for batch_size in (
            PACKET_IDS_BATCH_SIZES if ids_name in PACKET_IDS
            else BATCH_SIZES
        )
    ]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            rows = list(pool.map(_stream_point, tasks))
    else:
        rows = [_stream_point(task) for task in tasks]

    # Parity gate: per IDS, the same scores at every batch size.
    digests: dict[str, set[str]] = {}
    for row in rows:
        digests.setdefault(row["ids"], set()).add(row["digest"])
    for ids_name, seen in digests.items():
        assert len(seen) == 1, (
            f"{ids_name}: scores depend on micro-batch size — "
            "streaming parity contract broken"
        )

    lines = [
        f"stream throughput @ scale={scale} dataset={DATASET} "
        f"seed={SEED} (jobs={jobs})",
        f"  {'IDS':8s} {'unit':6s} {'path':11s} {'batch':>6s} "
        f"{'scored':>8s} {'pkt/s':>12s} {'items/s':>12s} {'seconds':>9s}",
    ]
    for row in rows:
        lines.append(
            f"  {row['ids']:8s} {row['unit']:6s} {row['path']:11s} "
            f"{row['batch']:6d} {row['n_scored']:8d} {row['pps']:12,.0f} "
            f"{row['ips']:12,.0f} {row['stream_seconds']:9.3f}"
        )
    save_result("stream_throughput", "\n".join(lines))
    best_pps = {}
    scoring_paths = {}
    for row in rows:
        best_pps[row["ids"]] = max(best_pps.get(row["ids"], 0.0), row["pps"])
        scoring_paths[row["ids"]] = row["path"]
    save_bench_json(
        "stream_throughput", metric="best_pps",
        value=round(max(best_pps.values())), scale=scale, jobs=jobs,
        dataset=DATASET, per_ids_best_pps={
            ids_name: round(pps) for ids_name, pps in best_pps.items()
        },
        # A regression to the per-packet fallback shows up here.
        per_ids_scoring_path=scoring_paths,
    )

    for row in rows:
        assert row["n_scored"] > 0, row
        assert row["pps"] > 0, row

    # The packet IDSs must have taken the batched path, and batching
    # must pay end to end: micro-batches beat the batch-1 degenerate
    # case for Kitsune, whose execute phase is KitNET-bound.
    assert scoring_paths["Kitsune"] == "batched"
    assert scoring_paths["HELAD"] == "batched"
    kitsune = {row["batch"]: row["pps"] for row in rows
               if row["ids"] == "Kitsune"}
    assert max(kitsune[b] for b in BATCH_SIZES) > kitsune[1], (
        "micro-batching no longer improves Kitsune's end-to-end pps"
    )
