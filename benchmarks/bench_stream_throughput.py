"""Measures online streaming throughput per IDS and micro-batch size.

For every evaluated IDS, the full streaming session (source → detector
→ windows → alerts) runs over the Mirai replay at several micro-batch
sizes, reporting packets/sec and scored items/sec. Micro-batching is a
pure throughput knob — the score digest must be identical across batch
sizes (the streaming parity contract), which this bench cross-checks
while it measures.

Scale/jobs follow the common bench options; ``--jobs N`` fans the
(IDS, batch) grid across a process pool::

    PYTHONPATH=src pytest benchmarks/bench_stream_throughput.py -s --scale 0.05 --jobs 2

The sharded scaling bench (``test_sharded_stream_scaling``) climbs the
worker ladder ``--workers`` caps (default 1→2→4): the same capture
through ``stream_capture_sharded`` at each count, gated by the
merged-run coverage digest (no packet lost or duplicated by sharding)
and by bit-parity of the single-worker run against the in-process path.
At calibrated scale it asserts the 2-worker run clears 1.7x the
1-worker pps; the measured ladder always lands in
``BENCH_stream_throughput.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from functools import lru_cache

from repro.core.experiment import EXPERIMENT_MATRIX
from repro.stream.detector import build_streaming_detector
from repro.stream.service import stream_capture, stream_experiment
from repro.stream.sharded import stream_capture_sharded
from repro.stream.sources import DatasetSource

from benchmarks.conftest import (REPO_ROOT, jobs_or, save_bench_json,
                                 save_result, scale_or, workers_or)

DEFAULT_SCALE = 0.3
SEED = 0
DATASET = "Mirai"
IDS_NAMES = ("Kitsune", "HELAD", "DNN", "Slips")
BATCH_SIZES = (64, 256, 1024)
#: The packet IDSs also run the batch-1 degenerate case, so the batched
#: execute engine's end-to-end win (and any regression to the
#: per-packet fallback) is visible. Flow IDSs skip it: they score
#: encoded feature matrices through BLAS, whose kernel choice varies
#: with matrix height, so the single-flow case is not bit-comparable —
#: their parity contract is defined over the operational batch sizes.
PACKET_IDS_BATCH_SIZES = (1, *BATCH_SIZES)
PACKET_IDS = ("Kitsune", "HELAD")


@lru_cache(maxsize=4)
def _cached_dataset(name: str, seed: int, scale: float):
    from repro.datasets.registry import generate_dataset_uncached

    return generate_dataset_uncached(name, seed=seed, scale=scale)


def _provider(name, *, seed=0, scale=1.0):
    return _cached_dataset(name, seed, scale)


def _stream_point(task):
    """One (IDS, batch size) measurement; runs in a pool worker under
    ``--jobs``, so everything in and out must pickle."""
    ids_name, batch_size, scale = task
    config = replace(
        EXPERIMENT_MATRIX[(ids_name, DATASET)], seed=SEED, scale=scale
    )
    report = stream_experiment(
        config, batch_size=batch_size, window_seconds=30.0,
        dataset_provider=_provider,
    )
    return {
        "ids": ids_name,
        "batch": batch_size,
        "unit": report.unit,
        "path": report.notes.get("scoring_path", "per-packet"),
        "n_scored": report.n_scored,
        "packets": report.packets_streamed,
        "pps": report.packets_per_second,
        "ips": report.items_per_second,
        "stream_seconds": report.stream_seconds,
        "digest": hashlib.sha256(report.scores.tobytes()).hexdigest(),
    }


def test_stream_throughput(bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    jobs = jobs_or(bench_jobs, 1)
    tasks = [
        (ids_name, batch_size, scale)
        for ids_name in IDS_NAMES
        for batch_size in (
            PACKET_IDS_BATCH_SIZES if ids_name in PACKET_IDS
            else BATCH_SIZES
        )
    ]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            rows = list(pool.map(_stream_point, tasks))
    else:
        rows = [_stream_point(task) for task in tasks]

    # Parity gate: per IDS, the same scores at every batch size.
    digests: dict[str, set[str]] = {}
    for row in rows:
        digests.setdefault(row["ids"], set()).add(row["digest"])
    for ids_name, seen in digests.items():
        assert len(seen) == 1, (
            f"{ids_name}: scores depend on micro-batch size — "
            "streaming parity contract broken"
        )

    lines = [
        f"stream throughput @ scale={scale} dataset={DATASET} "
        f"seed={SEED} (jobs={jobs})",
        f"  {'IDS':8s} {'unit':6s} {'path':11s} {'batch':>6s} "
        f"{'scored':>8s} {'pkt/s':>12s} {'items/s':>12s} {'seconds':>9s}",
    ]
    for row in rows:
        lines.append(
            f"  {row['ids']:8s} {row['unit']:6s} {row['path']:11s} "
            f"{row['batch']:6d} {row['n_scored']:8d} {row['pps']:12,.0f} "
            f"{row['ips']:12,.0f} {row['stream_seconds']:9.3f}"
        )
    save_result("stream_throughput", "\n".join(lines))
    best_pps = {}
    scoring_paths = {}
    for row in rows:
        best_pps[row["ids"]] = max(best_pps.get(row["ids"], 0.0), row["pps"])
        scoring_paths[row["ids"]] = row["path"]
    save_bench_json(
        "stream_throughput", metric="best_pps",
        value=round(max(best_pps.values())), scale=scale, jobs=jobs,
        dataset=DATASET, per_ids_best_pps={
            ids_name: round(pps) for ids_name, pps in best_pps.items()
        },
        # A regression to the per-packet fallback shows up here.
        per_ids_scoring_path=scoring_paths,
    )

    for row in rows:
        assert row["n_scored"] > 0, row
        assert row["pps"] > 0, row

    # The packet IDSs must have taken the batched path, and batching
    # must pay end to end: micro-batches beat the batch-1 degenerate
    # case for Kitsune, whose execute phase is KitNET-bound.
    assert scoring_paths["Kitsune"] == "batched"
    assert scoring_paths["HELAD"] == "batched"
    kitsune = {row["batch"]: row["pps"] for row in rows
               if row["ids"] == "Kitsune"}
    assert max(kitsune[b] for b in BATCH_SIZES) > kitsune[1], (
        "micro-batching no longer improves Kitsune's end-to-end pps"
    )


#: Worker-count ladder; ``--workers N`` caps it. The scaling assertion
#: is calibrated for DEFAULT_SCALE — tiny smoke scales stream too few
#: packets for the per-worker detector time to dominate the supervisor,
#: so there the digest gates still run but the speedup floor does not.
SHARDED_LADDER = (1, 2, 4)
SHARDED_BATCH = 256
SHARDED_WARMUP = 1000
SHARDED_SPEEDUP_FLOOR = 1.7
SHARDED_ASSERT_MIN_SCALE = 0.2
PROBE_DELAY_SECONDS = 2e-4


class _ThrottleProbeDetector:
    """Pure-function scorer with a fixed per-packet cost.

    The sharded engine's *concurrency* (does N workers' detector time
    overlap, or does the supervisor serialise them?) is a property of
    the orchestration, not of the host's core count — a CPU-bound
    detector like Kitsune cannot show wall-clock speedup on a
    single-core runner no matter how good the engine is. This probe
    replaces model math with a fixed ``time.sleep`` per packet, which
    overlaps across processes on any host, so its ladder measures the
    engine itself. Scores are a pure function of the packet, so the
    merged scores are bit-identical at every worker count.
    """

    name = "throttle-probe"
    unit = "packet"
    scoring_path = "probe"

    def __init__(self, delay_seconds: float = PROBE_DELAY_SECONDS):
        self.delay_seconds = delay_seconds
        self.batch_size = 1
        self.items_scored = 0

    def warmup(self, packets) -> None:
        pass

    def process(self, packet):
        import time

        time.sleep(self.delay_seconds)
        index = self.items_scored
        self.items_scored += 1
        from repro.stream.detector import StreamScore

        return [StreamScore(
            index=index,
            timestamp=packet.timestamp,
            score=(packet.timestamp * 7.0) % 1.0,
            label=packet.label,
            attack_type=packet.attack_type,
        )]

    def finish(self):
        return []


def _sharded_detector():
    return build_streaming_detector(
        "Kitsune", seed=SEED, batch_size=SHARDED_BATCH,
        warmup_packets=SHARDED_WARMUP,
    )


def _run_ladder(counts, scale, make_detector):
    rows = []
    for n in counts:
        report = stream_capture_sharded(
            DatasetSource(DATASET, seed=SEED, scale=scale),
            make_detector(), workers=n,
            warmup_packets=SHARDED_WARMUP, window_seconds=30.0,
        )
        rows.append({
            "workers": n,
            "pps": report.packets_per_second,
            "packets": report.packets_streamed,
            "stream_seconds": report.stream_seconds,
            "coverage_digest": report.notes["coverage_digest"],
            "score_digest": report.notes["merged_score_digest"],
            "telemetry": report.notes["workers"],
        })
    return rows


def test_sharded_stream_scaling(bench_scale, bench_workers):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    cap = workers_or(bench_workers, max(SHARDED_LADDER))
    counts = [n for n in SHARDED_LADDER if n <= cap] or [1]

    base = stream_capture(
        DatasetSource(DATASET, seed=SEED, scale=scale),
        _sharded_detector(),
        warmup_packets=SHARDED_WARMUP, window_seconds=30.0,
    )
    base_digest = hashlib.sha256(base.scores.tobytes()).hexdigest()

    kitsune_rows = _run_ladder(counts, scale, _sharded_detector)
    probe_rows = _run_ladder(counts, scale, _ThrottleProbeDetector)

    # Parity digest gate, at every worker count of both ladders:
    # sharding may never lose or duplicate a packet (same coverage
    # everywhere); the degenerate single-worker Kitsune run must
    # reproduce the in-process scores bit for bit; and the probe's
    # pure-function scores must be bit-identical at every count.
    for rows in (kitsune_rows, probe_rows):
        assert len({row["coverage_digest"] for row in rows}) == 1, (
            "sharded coverage depends on worker count — packets were "
            "lost or duplicated by the shard/merge path"
        )
    if kitsune_rows[0]["workers"] == 1:
        assert kitsune_rows[0]["score_digest"] == base_digest, (
            "single-worker sharded run is no longer bit-identical to "
            "the in-process stream"
        )
    assert len({row["score_digest"] for row in probe_rows}) == 1, (
        "probe scores depend on worker count — the merge sink is not "
        "order-stable"
    )

    kitsune_pps = {row["workers"]: row["pps"] for row in kitsune_rows}
    probe_pps = {row["workers"]: row["pps"] for row in probe_rows}
    lines = [
        f"sharded stream scaling @ scale={scale} dataset={DATASET} "
        f"cpus={os.cpu_count()} "
        f"(in-process Kitsune baseline {base.packets_per_second:,.0f} "
        f"pkt/s)",
        f"  {'ladder':10s} {'workers':>7s} {'pkt/s':>12s} "
        f"{'speedup':>8s} {'seconds':>9s}",
    ]
    for label, rows, pps in (("kitsune", kitsune_rows, kitsune_pps),
                             ("probe", probe_rows, probe_pps)):
        for row in rows:
            lines.append(
                f"  {label:10s} {row['workers']:7d} {row['pps']:12,.0f} "
                f"{row['pps'] / pps[1]:8.2f} {row['stream_seconds']:9.3f}"
            )
    save_result("stream_sharded_scaling", "\n".join(lines))

    # Fold the ladders into the shared stream-throughput JSON without
    # clobbering the grid bench's fields (test order is not guaranteed).
    bench_path = REPO_ROOT / "BENCH_stream_throughput.json"
    payload = {}
    if bench_path.exists():
        payload = json.loads(bench_path.read_text())
    payload.setdefault("bench", "stream_throughput")
    payload.setdefault("metric", "best_pps")
    payload.setdefault("value", round(max(kitsune_pps.values())))
    payload["sharded"] = {
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "parity_gate": "coverage digest identical at every worker "
                       "count; workers=1 bit-identical to in-process",
        "coverage_digest": kitsune_rows[0]["coverage_digest"],
        # Engine concurrency, host-independent: fixed per-packet cost,
        # so overlap (not core count) determines the ladder.
        "probe": {
            "detector": f"throttle-probe {PROBE_DELAY_SECONDS * 1e6:.0f}"
                        "us/packet",
            "pps_by_workers": {
                str(n): round(p) for n, p in probe_pps.items()},
            "speedup_by_workers": {
                str(n): round(p / probe_pps[1], 3)
                for n, p in probe_pps.items()},
        },
        # Real detector: wall-clock scaling, bounded by the host's
        # cores (a single-core runner pins this near 1.0x).
        "kitsune": {
            "batch": SHARDED_BATCH,
            "pps_by_workers": {
                str(n): round(p) for n, p in kitsune_pps.items()},
            "speedup_by_workers": {
                str(n): round(p / kitsune_pps[1], 3)
                for n, p in kitsune_pps.items()},
        },
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench-json] {bench_path.name}: sharded probe ladder "
          f"{payload['sharded']['probe']['speedup_by_workers']}, "
          f"kitsune ladder "
          f"{payload['sharded']['kitsune']['speedup_by_workers']}")

    if 2 in probe_pps and scale >= SHARDED_ASSERT_MIN_SCALE:
        assert probe_pps[2] >= SHARDED_SPEEDUP_FLOOR * probe_pps[1], (
            f"2-worker sharded stream is "
            f"{probe_pps[2] / probe_pps[1]:.2f}x the 1-worker run, "
            f"below the {SHARDED_SPEEDUP_FLOOR}x floor — the engine "
            "is serialising its workers"
        )
    if 2 in kitsune_pps and scale >= SHARDED_ASSERT_MIN_SCALE \
            and (os.cpu_count() or 1) >= 4:
        assert kitsune_pps[2] >= SHARDED_SPEEDUP_FLOOR * kitsune_pps[1], (
            f"2-worker Kitsune stream is "
            f"{kitsune_pps[2] / kitsune_pps[1]:.2f}x the 1-worker run, "
            f"below the {SHARDED_SPEEDUP_FLOOR}x floor"
        )
