"""Ablation A4: classical ML vs the DNN, in-distribution.

The DNN study [18] benchmarked classical algorithms against its deep
network. The paper under reproduction ran the DNN *out of the box*
(cross-corpus, KDD-trained) and saw the all-positive collapse; this
bench shows the counterfactual the Discussion (V-B-5) argues for — the
same models trained in-distribution with a proper chronological split
perform genuinely well. The gap between this table and the DNN row of
Table IV is the paper's customisation-matters finding, quantified.

Each model is one engine cell: a custom experiment kind
(:func:`run_classical_point`, named by dotted path so worker processes
can resolve it) dispatched through ``ExperimentEngine.run_configs``.
Every cell re-derives the *same* chronological split (the prep RNG
label is fixed), so all models are compared on identical train/test
flows — while the CICIDS2017 capture itself is generated once via the
engine's dataset provider.
"""

import time

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.metrics import compute_metrics
from repro.core.preprocessing import prepare_flow_experiment
from repro.ids.classical import (
    DecisionTreeIDS,
    GaussianNBIDS,
    KNNIDS,
    LogisticRegressionIDS,
    RandomForestIDS,
)
from repro.ids.dnn import DNNClassifierIDS
from repro.runner import ExperimentEngine
from repro.utils.rng import SeededRNG
from repro.utils.tables import TextTable

from benchmarks.conftest import (bench_seconds, jobs_or,
                                 save_bench_json, save_result, scale_or)

DEFAULT_SCALE = 0.2

MODELS = (
    ("LogisticRegression", LogisticRegressionIDS),
    ("GaussianNB", GaussianNBIDS),
    ("kNN", KNNIDS),
    ("DecisionTree", DecisionTreeIDS),
    ("RandomForest", RandomForestIDS),
    ("DNN (in-distribution)", DNNClassifierIDS),
)

#: Dotted-path experiment kind, resolvable in engine worker processes.
CLASSICAL_KIND = "benchmarks.bench_ablation_classical_ml:run_classical_point"


def run_classical_point(config: ExperimentConfig, provider) -> ExperimentResult:
    """One in-distribution model on the shared chronological split."""
    dataset = provider(config.dataset_name, seed=config.seed,
                       scale=config.scale)
    # Fixed RNG label: every model sees the identical split.
    data = prepare_flow_experiment(
        dataset, SeededRNG(0, "ablation-a4"), schema="cicflow",
        train_fraction=0.6, test_prevalence=0.3,
    )
    model = dict(MODELS)[config.ids_name]()
    fit_score_start = time.perf_counter()
    model.fit(data.train_flows, data.train_features, data.train_labels)
    scores = model.anomaly_scores(data.test_flows, data.test_features)
    fit_score_seconds = time.perf_counter() - fit_score_start
    predictions = (np.asarray(scores) >= 0.5).astype(int)
    return ExperimentResult(
        config=config,
        metrics=compute_metrics(data.y_true, predictions),
        threshold=0.5,
        scores=np.asarray(scores),
        y_true=data.y_true,
        notes=dict(data.notes),
        runtime_seconds=fit_score_seconds,
        attack_types=tuple(f.attack_type for f in data.test_flows),
    )


def test_classical_ml_ablation(benchmark, bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    configs = [
        ExperimentConfig(
            ids_name=name,
            dataset_name="CICIDS2017",
            seed=0,
            scale=scale,
            experiment=CLASSICAL_KIND,
        )
        for name, _ in MODELS
    ]
    engine = ExperimentEngine(jobs=jobs_or(bench_jobs))

    def sweep():
        results = engine.run_configs(configs)
        return [(r.config.ids_name, r.metrics) for r in results]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["Model", "Acc.", "Prec.", "Rec.", "F1"])
    for name, m in rows:
        table.add_row([name, *m.row()])
    save_result("ablation_classical_ml", table.render())

    # Shape: trained in-distribution, at least the tree ensembles and
    # the DNN separate CICIDS2017 attacks well — the out-of-the-box
    # Table IV collapse is a *deployment* failure, not a model one.
    results = dict(rows)
    save_bench_json(
        "ablation_classical_ml", metric="sweep_seconds",
        value=round(bench_seconds(benchmark), 3), scale=scale,
        mean_f1=sum(m.f1 for _, m in rows) / len(rows),
    )
    assert results["RandomForest"].f1 > 0.8
    assert results["DNN (in-distribution)"].f1 > 0.8
