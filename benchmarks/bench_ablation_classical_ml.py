"""Ablation A4: classical ML vs the DNN, in-distribution.

The DNN study [18] benchmarked classical algorithms against its deep
network. The paper under reproduction ran the DNN *out of the box*
(cross-corpus, KDD-trained) and saw the all-positive collapse; this
bench shows the counterfactual the Discussion (V-B-5) argues for — the
same models trained in-distribution with a proper chronological split
perform genuinely well. The gap between this table and the DNN row of
Table IV is the paper's customisation-matters finding, quantified.
"""

import numpy as np
import pytest

from repro.core.metrics import compute_metrics
from repro.core.preprocessing import prepare_flow_experiment
from repro.datasets import generate_dataset
from repro.ids.classical import (
    DecisionTreeIDS,
    GaussianNBIDS,
    KNNIDS,
    LogisticRegressionIDS,
    RandomForestIDS,
)
from repro.ids.dnn import DNNClassifierIDS
from repro.utils.rng import SeededRNG
from repro.utils.tables import TextTable

from benchmarks.conftest import save_result

MODELS = (
    ("LogisticRegression", LogisticRegressionIDS),
    ("GaussianNB", GaussianNBIDS),
    ("kNN", KNNIDS),
    ("DecisionTree", DecisionTreeIDS),
    ("RandomForest", RandomForestIDS),
    ("DNN (in-distribution)", DNNClassifierIDS),
)


@pytest.fixture(scope="module")
def flow_data():
    dataset = generate_dataset("CICIDS2017", seed=0, scale=0.2)
    return prepare_flow_experiment(
        dataset, SeededRNG(0, "ablation-a4"), schema="cicflow",
        train_fraction=0.6, test_prevalence=0.3,
    )


def test_classical_ml_ablation(benchmark, flow_data):
    def sweep():
        rows = []
        for name, cls in MODELS:
            model = cls()
            model.fit(flow_data.train_flows, flow_data.train_features,
                      flow_data.train_labels)
            scores = model.anomaly_scores(flow_data.test_flows,
                                          flow_data.test_features)
            m = compute_metrics(flow_data.y_true,
                                (np.asarray(scores) >= 0.5).astype(int))
            rows.append((name, m))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["Model", "Acc.", "Prec.", "Rec.", "F1"])
    for name, m in rows:
        table.add_row([name, *m.row()])
    save_result("ablation_classical_ml", table.render())

    # Shape: trained in-distribution, at least the tree ensembles and
    # the DNN separate CICIDS2017 attacks well — the out-of-the-box
    # Table IV collapse is a *deployment* failure, not a model one.
    results = dict(rows)
    assert results["RandomForest"].f1 > 0.8
    assert results["DNN (in-distribution)"].f1 > 0.8
