"""Per-IDS-row regeneration benches for Table IV.

Each test regenerates one IDS's row at a reduced scale — the quick
targets for iterating on a single system without re-running the whole
20-cell matrix (bench_table4_main_results.py stays the authoritative
full-scale run).
"""

import pytest

from repro.core.pipeline import IDSAnalysisPipeline
from repro.core.report import render_table4

from benchmarks.conftest import (bench_seconds, jobs_or,
                                 save_bench_json, save_result, scale_or)

DEFAULT_SCALE = 0.2
SEED = 0


@pytest.fixture
def _run_row(bench_scale, bench_jobs):
    def run(ids_name: str) -> IDSAnalysisPipeline:
        pipeline = IDSAnalysisPipeline(
            seed=SEED, scale=scale_or(bench_scale, DEFAULT_SCALE),
            ids_names=(ids_name,), jobs=jobs_or(bench_jobs),
        )
        pipeline.run_all()
        return pipeline
    return run


def test_table4_row_kitsune(benchmark, _run_row):
    pipeline = benchmark.pedantic(lambda: _run_row("Kitsune"),
                                  rounds=1, iterations=1)
    save_result("table4_row_kitsune", render_table4(pipeline))
    save_bench_json(
        "table4_row_kitsune", metric="row_seconds",
        value=round(bench_seconds(benchmark), 3), scale=pipeline.scale,
    )
    f1 = {d: pipeline.f1_of("Kitsune", d) for d in pipeline.dataset_names}
    assert min(f1["BoT-IoT"], f1["Mirai"]) > 0.8
    assert max(f1["UNSW-NB15"], f1["CICIDS2017"]) < 0.35


def test_table4_row_helad(benchmark, _run_row):
    pipeline = benchmark.pedantic(lambda: _run_row("HELAD"),
                                  rounds=1, iterations=1)
    save_result("table4_row_helad", render_table4(pipeline))
    save_bench_json(
        "table4_row_helad", metric="row_seconds",
        value=round(bench_seconds(benchmark), 3), scale=pipeline.scale,
    )
    metrics = pipeline.results[("HELAD", "CICIDS2017")].metrics
    assert metrics.precision >= metrics.recall
    assert pipeline.f1_of("HELAD", "Stratosphere") > 0.6


def test_table4_row_dnn(benchmark, _run_row):
    pipeline = benchmark.pedantic(lambda: _run_row("DNN"),
                                  rounds=1, iterations=1)
    save_result("table4_row_dnn", render_table4(pipeline))
    save_bench_json(
        "table4_row_dnn", metric="row_seconds",
        value=round(bench_seconds(benchmark), 3), scale=pipeline.scale,
    )
    for dataset in pipeline.dataset_names:
        metrics = pipeline.results[("DNN", dataset)].metrics
        assert metrics.recall > 0.9, dataset
    assert pipeline.f1_of("DNN", "Stratosphere") < 0.5


def test_table4_row_slips(benchmark, _run_row):
    pipeline = benchmark.pedantic(lambda: _run_row("Slips"),
                                  rounds=1, iterations=1)
    save_result("table4_row_slips", render_table4(pipeline))
    save_bench_json(
        "table4_row_slips", metric="row_seconds",
        value=round(bench_seconds(benchmark), 3), scale=pipeline.scale,
    )
    assert pipeline.f1_of("Slips", "UNSW-NB15") == 0.0
    assert pipeline.f1_of("Slips", "BoT-IoT") == 0.0
    best = max(pipeline.dataset_names,
               key=lambda d: pipeline.f1_of("Slips", d))
    assert best == "Stratosphere"
