"""Benchmark configuration.

Every bench prints the table it regenerates (run with ``-s`` to see it
live); heavy pipeline benches run exactly once via ``benchmark.pedantic``.
Results also land in ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, content: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")
    print(f"\n{content}\n")
