"""Benchmark configuration.

Every bench prints the table it regenerates (run with ``-s`` to see it
live); heavy pipeline benches run exactly once via ``benchmark.pedantic``.
Results also land in ``benchmarks/results/`` for inspection.

All benches share one ``--scale`` / ``--jobs`` argument pair instead of
hard-coding their own knobs::

    PYTHONPATH=src pytest benchmarks/bench_robustness.py -s --scale 0.05 --jobs 2

``--scale`` overrides each bench's calibrated default (shape assertions
are tuned for the defaults — tiny scales are for smoke runs); ``--jobs``
sets the execution engine's worker-process count. The environment
variables ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_JOBS`` are the
equivalent knobs for CI, with the command line taking precedence.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def pytest_addoption(parser):
    group = parser.getgroup("repro", "reproduction benchmark options")
    group.addoption(
        "--scale", type=float, default=None,
        help="dataset generation scale for all benches "
             "(default: each bench's calibrated scale)",
    )
    group.addoption(
        "--jobs", type=int, default=None,
        help="engine worker processes for all benches (default 1)",
    )
    group.addoption(
        "--workers", type=int, default=None,
        help="max sharded-stream worker count for the scaling benches "
             "(default: each bench's calibrated ladder)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float | None:
    """The common ``--scale`` override, or ``None`` for bench defaults."""
    option = request.config.getoption("--scale")
    if option is not None:
        return option
    env = os.environ.get("REPRO_BENCH_SCALE")
    return float(env) if env else None


@pytest.fixture(scope="session")
def bench_jobs(request) -> int | None:
    """The common ``--jobs`` override, or ``None`` for bench defaults."""
    option = request.config.getoption("--jobs")
    if option is not None:
        return option
    env = os.environ.get("REPRO_BENCH_JOBS")
    return int(env) if env else None


@pytest.fixture(scope="session")
def bench_workers(request) -> int | None:
    """The common ``--workers`` override, or ``None`` for defaults."""
    option = request.config.getoption("--workers")
    if option is not None:
        return option
    env = os.environ.get("REPRO_BENCH_WORKERS")
    return int(env) if env else None


def workers_or(bench_workers: int | None, default: int) -> int:
    """A bench's effective max sharded worker count."""
    return default if bench_workers is None else bench_workers


def scale_or(bench_scale: float | None, default: float) -> float:
    """A bench's effective scale: the common override or its default."""
    return default if bench_scale is None else bench_scale


def jobs_or(bench_jobs: int | None, default: int = 1) -> int:
    """A bench's effective worker count: the common override or its
    default (most benches run the engine serially by default)."""
    return default if bench_jobs is None else bench_jobs


def save_result(name: str, content: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")
    print(f"\n{content}\n")


def _git_rev() -> str:
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return result.stdout.strip() or "unknown"


def save_bench_json(
    name: str,
    metric: str,
    value: float,
    *,
    scale: float | None = None,
    **extra,
) -> None:
    """Write ``BENCH_<name>.json`` at the repo root.

    One headline metric per bench, plus whatever context the bench
    wants to record, makes the performance trajectory machine-readable:
    CI uploads these files as artifacts and any regression tooling can
    diff them across revisions via the embedded git rev.
    """
    from repro import backends, obs
    from repro.features.vector import mt_thread_count

    payload = {
        "bench": name,
        "metric": metric,
        "value": value,
        "scale": scale,
        "git_rev": _git_rev(),
        "run_id": obs.run_id(),
        # Host + backend context: a headline number is only comparable
        # across runs with the same core count and compute backend.
        "cpu_count": os.cpu_count(),
        "feature_backend": backends.default_feature_backend(),
        "native_threads": mt_thread_count(),
        # The bench process's own obs snapshot (cache hit/miss counters,
        # cpu count, ...) — context for interpreting the headline number.
        "obs": obs.process_snapshot(),
        **extra,
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench-json] {path.name}: {metric}={value}")


def bench_seconds(benchmark) -> float:
    """Mean seconds per round of a completed ``benchmark`` fixture run."""
    return float(benchmark.stats.stats.mean)
