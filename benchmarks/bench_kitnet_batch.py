"""KitNET execute-phase throughput: per-packet reference vs batched.

Profiling after the PR 4 feature-path work showed ~97% of per-packet
time inside the KitNET autoencoder ensemble, so its execute loop bounds
every Kitsune/HELAD cell of the Table IV matrix and the streaming
subsystem's packets/second. This bench trains one KitNET over the Mirai
replay's feature stream, then scores the execute-phase rows twice —
the per-packet reference loop and the packed batched engine at several
micro-batch sizes — cross-checking bit-for-bit parity while it
measures (a fast-but-wrong engine must not pass), and records the
speedup in ``BENCH_kitnet_batch.json``.

Run the acceptance configuration with::

    PYTHONPATH=src pytest benchmarks/bench_kitnet_batch.py -s --scale 1.0

The batched engine must always at least match the per-packet reference;
at full scale it must be >= 3x.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.features.netstat import NetStat
from repro.ids.kitsune.kitnet import KitNET
from repro.utils.rng import SeededRNG

from benchmarks.conftest import save_bench_json, save_result, scale_or

DEFAULT_SCALE = 1.0
SEED = 0
DATASET = "Mirai"
BATCH_SIZES = (64, 256, 1024)
#: Acceptance gate for the batched engine at scale >= 1.0.
FULL_SCALE_SPEEDUP = 3.0


def _trained_detector(scale: float):
    """A KitNET trained through its grace periods on the replay's first
    half, plus the remaining (execute-phase) feature rows — the same
    split the profile's ``kitnet-batch`` stage measures."""
    from repro.core.profiling import kitnet_grace_split
    from repro.datasets.registry import generate_dataset_uncached

    packets = generate_dataset_uncached(
        DATASET, seed=SEED, scale=scale
    ).packets
    extractor = NetStat(engine="vector")
    features = extractor.extract_all(packets)
    fm_grace, ad_grace, boundary = kitnet_grace_split(len(features))
    detector = KitNET(
        extractor.feature_count,
        fm_grace=fm_grace,
        ad_grace=ad_grace,
        rng=SeededRNG(SEED, "bench-kitnet-batch"),
    )
    for row in features[:boundary]:
        detector.process(row)
    return detector, features[boundary:]


def test_kitnet_batch_throughput(bench_scale):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    detector, execute_rows = _trained_detector(scale)
    n_rows = len(execute_rows)
    assert n_rows > 0, f"no execute-phase rows at scale {scale}"

    reference = copy.deepcopy(detector)
    start = time.perf_counter()
    reference_scores = np.array(
        [reference.process(row) for row in execute_rows]
    )
    reference_seconds = time.perf_counter() - start

    rows = {}
    for batch_size in BATCH_SIZES:
        scorer = copy.deepcopy(detector)
        start = time.perf_counter()
        chunks = [
            scorer.execute_batch(execute_rows[i : i + batch_size])
            for i in range(0, n_rows, batch_size)
        ]
        elapsed = time.perf_counter() - start
        scores = np.concatenate(chunks)
        # Parity gate: speed must not come from changed semantics.
        assert np.array_equal(scores, reference_scores), (
            f"batch={batch_size} diverged from the per-packet "
            "reference — parity contract broken"
        )
        rows[batch_size] = {"seconds": elapsed, "pps": n_rows / elapsed}

    best_batch = max(rows, key=lambda b: rows[b]["pps"])
    reference_pps = n_rows / reference_seconds
    speedup = rows[best_batch]["pps"] / reference_pps

    lines = [
        f"kitnet execute throughput @ scale={scale} dataset={DATASET} "
        f"seed={SEED} ({n_rows} execute rows, "
        f"{len(detector.ensemble)} groups)",
        f"  {'path':16s} {'rows/s':>12s} {'seconds':>9s}",
        f"  {'per-packet':16s} {reference_pps:12,.0f} "
        f"{reference_seconds:9.3f}",
    ]
    for batch_size, row in rows.items():
        lines.append(
            f"  batch={batch_size:<10d} {row['pps']:12,.0f} "
            f"{row['seconds']:9.3f}"
        )
    lines.append(
        f"  batched speedup over per-packet: {speedup:.2f}x "
        f"(best batch {best_batch}, bit-for-bit parity verified)"
    )
    save_result("kitnet_batch", "\n".join(lines))
    save_bench_json(
        "kitnet_batch",
        metric="batched_speedup",
        value=round(speedup, 3),
        scale=scale,
        dataset=DATASET,
        execute_rows=n_rows,
        groups=len(detector.ensemble),
        parity=True,
        best_batch=best_batch,
        per_packet_rows_per_second=round(reference_pps),
        batched_rows_per_second={
            str(batch): round(row["pps"]) for batch, row in rows.items()
        },
    )

    # The batched engine must never lose to the reference; at full
    # scale it must clear the acceptance gate.
    assert speedup >= 1.0, f"batched slower than per-packet: {speedup:.2f}x"
    if scale >= 1.0:
        assert speedup >= FULL_SCALE_SPEEDUP, (
            f"batched speedup {speedup:.2f}x below the "
            f"{FULL_SCALE_SPEEDUP}x acceptance gate at scale {scale}"
        )
