"""Seed-stability bench: how reproducible are the Table IV cells?

Sweeps the cheap rows (DNN, Slips) across three seeds and reports
mean ± std per metric. The expensive packet-IDS rows are covered by the
seed-pinned main bench; their stability was verified manually (see
EXPERIMENTS.md).

The sweep runs through ``ExperimentEngine.run_configs`` (via
:func:`repro.core.robustness.stability_report`): both IDS rows share
one engine, so every ``(dataset, seed)`` substrate is generated exactly
once for the whole bench, and ``--jobs N`` parallelises the cells.
"""

import pytest

from repro.core.robustness import stability_report
from repro.runner import ExperimentEngine
from repro.utils.tables import TextTable

from benchmarks.conftest import (bench_seconds, jobs_or,
                                 save_bench_json, save_result, scale_or)

SEEDS = (0, 1, 2)
DEFAULT_SCALE = 0.12


def test_seed_stability(benchmark, bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    engine = ExperimentEngine(jobs=jobs_or(bench_jobs))

    def sweep():
        return {
            ids_name: stability_report(ids_name, seeds=SEEDS, scale=scale,
                                       engine=engine)
            for ids_name in ("DNN", "Slips")
        }

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["IDS", "Dataset", "Acc.", "Prec.", "Rec.", "F1",
                       "F1 CV"])
    for ids_name, rows in reports.items():
        for cell in rows:
            table.add_row([
                ids_name, cell.dataset_name, str(cell.accuracy),
                str(cell.precision), str(cell.recall), str(cell.f1),
                f"{cell.f1_coefficient_of_variation:.3f}",
            ])
    save_result("robustness_seed_stability", table.render())
    save_bench_json(
        "robustness_seed_stability", metric="sweep_seconds",
        value=round(bench_seconds(benchmark), 3), scale=scale,
        seeds=len(SEEDS),
    )

    # The DNN's Stratosphere collapse is structural, not seed luck.
    dnn = {cell.dataset_name: cell for cell in reports["DNN"]}
    assert dnn["Stratosphere"].f1.mean < 0.5
    assert dnn["Stratosphere"].recall.mean > 0.95
    # Slips' zero rows are zero at every seed.
    slips = {cell.dataset_name: cell for cell in reports["Slips"]}
    assert slips["UNSW-NB15"].f1.mean == 0.0
    assert slips["UNSW-NB15"].f1.std == 0.0
