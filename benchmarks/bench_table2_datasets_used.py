"""Regenerates paper Table II: datasets used for evaluation.

Benchmarks generation of every evaluated dataset at a small scale and
verifies the compositions the paper's analysis relies on, then saves
the rendered inventory.
"""

from repro.core.report import render_table2
from repro.datasets import USED_DATASETS, generate_dataset

from benchmarks.conftest import bench_seconds, save_bench_json, save_result


def _generate_all():
    return {
        name: generate_dataset(name, seed=0, scale=0.1)
        for name in USED_DATASETS
    }


def test_table2_datasets_used(benchmark):
    datasets = benchmark.pedantic(_generate_all, rounds=1, iterations=1)
    assert len(datasets) == 5
    # Composition sanity: BoT-IoT is attack-dominated, the enterprise
    # sets are not (Section III-B).
    assert datasets["BoT-IoT"].attack_prevalence > 0.8
    assert datasets["CICIDS2017"].attack_prevalence < 0.6
    lines = [render_table2(), "", "Generated compositions:"]
    for name, dataset in datasets.items():
        lines.append(
            f"  {name:13s} packets={len(dataset):7d} "
            f"attack-prevalence={dataset.attack_prevalence:.3f} "
            f"duration={dataset.duration:8.0f}s"
        )
    save_result("table2_datasets_used", "\n".join(lines))
    save_bench_json(
        "table2_datasets_used", metric="generation_seconds",
        value=round(bench_seconds(benchmark), 3), scale=0.1,
        total_packets=sum(len(dataset) for dataset in datasets.values()),
    )
