"""Ablation A2: random flow sampling vs packet sampling (Section IV-A-1/2).

The paper samples *flows* and re-sorts by timestamp so per-flow and
temporal statistics survive. This bench quantifies what packet-level
sampling would have destroyed: the flow-size distribution collapses and
assembled flow counts explode (flows fragment).

Each sampling fraction is one engine cell: a custom experiment kind
(:func:`run_sampling_point`, named by dotted path so worker processes
can resolve it) dispatched through ``ExperimentEngine.run_configs``.
The capture is requested through the engine's dataset provider, so all
four fractions share one generated dataset — and cache identically to
Table IV cells.
"""

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.metrics import MetricReport
from repro.flows.assembler import FlowAssembler
from repro.flows.sampling import random_flow_sample, random_packet_sample
from repro.runner import ExperimentEngine
from repro.utils.rng import SeededRNG
from repro.utils.tables import TextTable

from benchmarks.conftest import (bench_seconds, jobs_or,
                                 save_bench_json, save_result, scale_or)

FRACTIONS = (1.0, 0.5, 0.25, 0.1)
DEFAULT_SCALE = 0.15

#: Dotted-path experiment kind, resolvable in engine worker processes.
SAMPLING_KIND = "benchmarks.bench_ablation_sampling:run_sampling_point"


def _mean_flow_size(packets):
    flows = FlowAssembler().assemble(packets)
    if not flows:
        return 0.0, 0
    return float(np.mean([f.total_packets for f in flows])), len(flows)


def run_sampling_point(config: ExperimentConfig, provider) -> ExperimentResult:
    """One sampling fraction: flow-sampled vs packet-sampled statistics.

    There is no IDS in this cell; the interesting output lands in
    ``notes`` and the metric block is zeroed. Determinism: the RNG
    labels are fixed, so the result depends only on the config.
    """
    capture = provider(config.dataset_name, seed=config.seed,
                       scale=config.scale)
    fraction = config.experiment_params["fraction"]
    flow_sampled = random_flow_sample(
        capture.packets, fraction, SeededRNG(1, "flow")
    )
    packet_sampled = random_packet_sample(
        capture.packets, fraction, SeededRNG(1, "pkt")
    )
    flow_mean, flow_count = _mean_flow_size(flow_sampled)
    packet_mean, packet_count = _mean_flow_size(packet_sampled)
    return ExperimentResult(
        config=config,
        metrics=MetricReport(0.0, 0.0, 0.0, 0.0),
        threshold=0.0,
        scores=np.empty(0),
        y_true=np.empty(0, dtype=int),
        notes={
            "fraction": fraction,
            "flow_sampled_mean_pkts": flow_mean,
            "flow_sampled_flows": flow_count,
            "packet_sampled_mean_pkts": packet_mean,
            "packet_sampled_flows": packet_count,
        },
        runtime_seconds=0.0,
    )


def test_sampling_ablation(benchmark, bench_scale, bench_jobs):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    configs = [
        ExperimentConfig(
            ids_name="FlowSampling",
            dataset_name="CICIDS2017",
            seed=0,
            scale=scale,
            experiment=SAMPLING_KIND,
            experiment_params={"fraction": fraction},
        )
        for fraction in FRACTIONS
    ]
    engine = ExperimentEngine(jobs=jobs_or(bench_jobs))

    def sweep():
        results = engine.run_configs(configs)
        return [
            (r.notes["fraction"],
             (r.notes["flow_sampled_mean_pkts"], r.notes["flow_sampled_flows"]),
             (r.notes["packet_sampled_mean_pkts"],
              r.notes["packet_sampled_flows"]))
            for r in results
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable([
        "Fraction", "flow-sampled mean pkts/flow", "flows",
        "packet-sampled mean pkts/flow", "flows",
    ])
    baseline_mean = rows[0][1][0]
    for fraction, (fmean, fcount), (pmean, pcount) in rows:
        table.add_row([f"{fraction:.2f}", f"{fmean:.2f}", fcount,
                       f"{pmean:.2f}", pcount])
    save_result("ablation_sampling", table.render())
    save_bench_json(
        "ablation_sampling", metric="sweep_seconds",
        value=round(bench_seconds(benchmark), 3), scale=scale,
        baseline_mean_pkts_per_flow=baseline_mean,
    )

    # Shape: flow sampling preserves the per-flow packet distribution at
    # every fraction; packet sampling shreds it.
    for fraction, (fmean, _), (pmean, _) in rows[1:]:
        assert abs(fmean - baseline_mean) / baseline_mean < 0.5
    _, (_, _), (pmean_small, _) = rows[-1]
    assert pmean_small < 0.5 * baseline_mean
