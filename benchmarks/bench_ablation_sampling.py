"""Ablation A2: random flow sampling vs packet sampling (Section IV-A-1/2).

The paper samples *flows* and re-sorts by timestamp so per-flow and
temporal statistics survive. This bench quantifies what packet-level
sampling would have destroyed: the flow-size distribution collapses and
assembled flow counts explode (flows fragment).
"""

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.flows.assembler import FlowAssembler
from repro.flows.sampling import random_flow_sample, random_packet_sample
from repro.utils.rng import SeededRNG
from repro.utils.tables import TextTable

from benchmarks.conftest import save_result

FRACTIONS = (1.0, 0.5, 0.25, 0.1)


@pytest.fixture(scope="module")
def capture():
    return generate_dataset("CICIDS2017", seed=0, scale=0.15)


def _mean_flow_size(packets):
    flows = FlowAssembler().assemble(packets)
    if not flows:
        return 0.0, 0
    return float(np.mean([f.total_packets for f in flows])), len(flows)


def test_sampling_ablation(benchmark, capture):
    def sweep():
        rows = []
        for fraction in FRACTIONS:
            flow_sampled = random_flow_sample(
                capture.packets, fraction, SeededRNG(1, "flow")
            )
            packet_sampled = random_packet_sample(
                capture.packets, fraction, SeededRNG(1, "pkt")
            )
            rows.append((fraction, _mean_flow_size(flow_sampled),
                         _mean_flow_size(packet_sampled)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable([
        "Fraction", "flow-sampled mean pkts/flow", "flows",
        "packet-sampled mean pkts/flow", "flows",
    ])
    baseline_mean = rows[0][1][0]
    for fraction, (fmean, fcount), (pmean, pcount) in rows:
        table.add_row([f"{fraction:.2f}", f"{fmean:.2f}", fcount,
                       f"{pmean:.2f}", pcount])
    save_result("ablation_sampling", table.render())

    # Shape: flow sampling preserves the per-flow packet distribution at
    # every fraction; packet sampling shreds it.
    for fraction, (fmean, _), (pmean, _) in rows[1:]:
        assert abs(fmean - baseline_mean) / baseline_mean < 0.5
    _, (_, _), (pmean_small, _) = rows[-1]
    assert pmean_small < 0.5 * baseline_mean
