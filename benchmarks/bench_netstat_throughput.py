"""AfterImage feature-path throughput: scalar reference vs vectorized.

The NetStat hot loop sits under every Kitsune/HELAD cell of the Table
IV matrix *and* under ``repro.stream``'s live packet path, so its
features/sec bound both batch reproduction time and online pps. This
bench extracts the full Mirai replay through each engine, cross-checks
bit-for-bit parity while it measures (a fast-but-wrong engine must not
pass), and records the speedup in ``BENCH_netstat_throughput.json``.

Run the acceptance configuration with::

    PYTHONPATH=src pytest benchmarks/bench_netstat_throughput.py -s --scale 1.0

The default vector engine must beat the scalar reference wherever a
C compiler is available (the native kernel); at full scale it must be
>= 3x. Without a compiler the NumPy fallback kernel is roughly
scalar-speed per packet and the speedup gates are skipped.
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np

from repro.features.netstat import NetStat

from benchmarks.conftest import save_bench_json, save_result, scale_or

DEFAULT_SCALE = 1.0
SEED = 0
DATASET = "Mirai"
#: Engines measured; "vector" resolves to the native kernel when a C
#: compiler is available and the NumPy kernel otherwise.
ENGINES = ("scalar", "vector", "vector-numpy")
#: Acceptance gate for the default vector engine at scale >= 1.0.
FULL_SCALE_SPEEDUP = 3.0


@lru_cache(maxsize=2)
def _packets(scale: float):
    from repro.datasets.registry import generate_dataset_uncached

    return generate_dataset_uncached(DATASET, seed=SEED, scale=scale).packets


def _measure(engine: str, packets) -> tuple[float, np.ndarray, str]:
    extractor = NetStat(engine=engine)
    kernel = "objects" if engine == "scalar" else extractor._db.kernel_name
    start = time.perf_counter()
    matrix = extractor.extract_all(packets)
    elapsed = time.perf_counter() - start
    return elapsed, matrix, kernel


def test_netstat_throughput(bench_scale):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    packets = _packets(scale)
    n_packets = len(packets)
    feature_count = NetStat().feature_count

    rows = {}
    reference = None
    for engine in ENGINES:
        elapsed, matrix, kernel = _measure(engine, packets)
        rows[engine] = {
            "kernel": kernel,
            "seconds": elapsed,
            "pps": n_packets / elapsed,
            "features_per_second": n_packets * feature_count / elapsed,
        }
        # Parity gate: speed must not come from changed semantics.
        if reference is None:
            reference = matrix
        else:
            assert np.array_equal(reference, matrix), (
                f"{engine} diverged from the scalar reference — "
                "parity contract broken"
            )

    speedup = rows["vector"]["pps"] / rows["scalar"]["pps"]
    native_active = rows["vector"]["kernel"] == "native"

    lines = [
        f"netstat throughput @ scale={scale} dataset={DATASET} seed={SEED} "
        f"({n_packets} packets, {feature_count} features)",
        f"  {'engine':14s} {'kernel':8s} {'pkt/s':>12s} "
        f"{'features/s':>14s} {'seconds':>9s}",
    ]
    for engine, row in rows.items():
        lines.append(
            f"  {engine:14s} {row['kernel']:8s} {row['pps']:12,.0f} "
            f"{row['features_per_second']:14,.0f} {row['seconds']:9.3f}"
        )
    lines.append(f"  vector speedup over scalar: {speedup:.2f}x "
                 f"(native kernel: {native_active})")
    save_result("netstat_throughput", "\n".join(lines))
    save_bench_json(
        "netstat_throughput",
        metric="vector_speedup",
        value=round(speedup, 3),
        scale=scale,
        dataset=DATASET,
        packets=n_packets,
        native_kernel=native_active,
        scalar_pps=round(rows["scalar"]["pps"]),
        vector_pps=round(rows["vector"]["pps"]),
        vector_features_per_second=round(
            rows["vector"]["features_per_second"]
        ),
        numpy_kernel_pps=round(rows["vector-numpy"]["pps"]),
    )

    assert rows["scalar"]["pps"] > 0
    if native_active:
        # The native kernel must always win; at full scale by >= 3x.
        assert speedup >= 1.0, f"vector slower than scalar: {speedup:.2f}x"
        if scale >= 1.0:
            assert speedup >= FULL_SCALE_SPEEDUP, (
                f"vector speedup {speedup:.2f}x below the "
                f"{FULL_SCALE_SPEEDUP}x acceptance gate at scale {scale}"
            )
