"""AfterImage feature-path throughput across every registered backend.

The NetStat hot loop sits under every Kitsune/HELAD cell of the Table
IV matrix *and* under ``repro.stream``'s live packet path, so its
features/sec bound both batch reproduction time and online pps. This
bench extracts the full Mirai replay through each backend registered
in ``repro.backends`` (scalar reference, NumPy kernel, native C
kernel, multithreaded native kernel), cross-checks bit-for-bit parity
while it measures (a fast-but-wrong engine must not pass), times the
batched ``update_batch`` path against per-packet dispatch, and records
one row per backend in ``BENCH_netstat_throughput.json``.

Run the acceptance configuration with::

    PYTHONPATH=src pytest benchmarks/bench_netstat_throughput.py -s --scale 1.0

The default vector backend must beat the scalar reference wherever a
C compiler is available (the native kernel); at full scale it must be
>= 3x, and ``update_batch`` must beat per-packet dispatch. The
multithreaded kernel carries a >= 1.5x gate over the single-threaded
native kernel on 2+ core hosts; on single-core CI a ``probe_sleep``
concurrency probe proves the worker pool genuinely overlaps instead
(the same laddering idiom as the sharded stream bench). Without a
compiler the NumPy fallback kernel is roughly scalar-speed per packet
and the speedup gates are skipped.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache

import numpy as np

from repro import backends
from repro.features import _native
from repro.features.netstat import NetStat
from repro.features.vector import _mt_pool, mt_thread_count

from benchmarks.conftest import save_bench_json, save_result, scale_or

DEFAULT_SCALE = 1.0
SEED = 0
DATASET = "Mirai"
#: Acceptance gate for the default vector backend at scale >= 1.0.
FULL_SCALE_SPEEDUP = 3.0
#: ``update_batch`` must beat per-packet dispatch by this at scale >= 1.0.
BATCH_SPEEDUP_FLOOR = 1.1
#: The multithreaded kernel's gate over single-threaded native, applied
#: only on hosts with 2+ cores (a 1-core runner cannot honour it).
MT_SPEEDUP_FLOOR = 1.5
#: The pool-concurrency probe gate: 4 sleeps through the worker pool
#: must take well under 4x one sleep, proving the GIL is released and
#: the pool genuinely overlaps — checkable even on single-core CI.
PROBE_SPEEDUP_FLOOR = 1.5
_PROBE_SLEEP = 0.05


@lru_cache(maxsize=2)
def _packets(scale: float):
    from repro.datasets.registry import generate_dataset_uncached

    return generate_dataset_uncached(DATASET, seed=SEED, scale=scale).packets


def _measure_batch(backend: str, packets) -> dict:
    """One ``extract_all`` pass through ``backend``; returns its row."""
    extractor = NetStat(engine=backend)
    kernel = "objects" if backend == "scalar" else extractor._db.kernel_name
    start = time.perf_counter()
    matrix = extractor.extract_all(packets)
    elapsed = time.perf_counter() - start
    return {"kernel": kernel, "seconds": elapsed, "matrix": matrix}


def _measure_per_packet(backend: str, packets) -> float:
    """Per-packet dispatch seconds for ``backend`` (the pre-batch path)."""
    extractor = NetStat(engine=backend)
    start = time.perf_counter()
    for packet in packets:
        extractor.update(packet)
    return time.perf_counter() - start


def _probe_pool_speedup() -> float:
    """Wall-clock speedup of ``mt_thread_count()`` concurrent C sleeps
    over the same sleeps run serially.

    ``probe_sleep`` releases the GIL exactly like the feature kernel,
    so pooled sleeps overlap on any host — including the 1-core CI
    runners where a compute-bound MT gate would be meaningless."""
    library = _native.load_kernel()
    assert library is not None
    threads = mt_thread_count()

    start = time.perf_counter()
    for _ in range(threads):
        library.probe_sleep(_PROBE_SLEEP)
    serial = time.perf_counter() - start

    pool = _mt_pool()
    start = time.perf_counter()
    futures = [
        pool.submit(library.probe_sleep, _PROBE_SLEEP) for _ in range(threads)
    ]
    for future in futures:
        future.result()
    pooled = time.perf_counter() - start
    return serial / pooled


def test_netstat_throughput(bench_scale):
    scale = scale_or(bench_scale, DEFAULT_SCALE)
    packets = _packets(scale)
    n_packets = len(packets)
    feature_count = NetStat().feature_count

    available = [
        spec.name
        for spec in backends.available_backends(backends.FEATURE_ENGINE)
    ]
    assert available[0] == "scalar"

    rows = {}
    reference = None
    for backend in available:
        row = _measure_batch(backend, packets)
        matrix = row.pop("matrix")
        row["pps"] = n_packets / row["seconds"]
        row["features_per_second"] = n_packets * feature_count / row["seconds"]
        rows[backend] = row
        # Parity gate: speed must not come from changed semantics.
        if reference is None:
            reference = matrix
        else:
            assert np.array_equal(reference, matrix), (
                f"{backend} diverged from the scalar reference — "
                "parity contract broken"
            )

    default_backend = backends.default_feature_backend()
    native_active = rows[default_backend]["kernel"].startswith("native")
    speedup = rows[default_backend]["pps"] / rows["scalar"]["pps"]

    # Batched dispatch vs the per-packet loop, on the default backend:
    # the win the batch path must deliver over Python-level dispatch.
    per_packet_seconds = _measure_per_packet(default_backend, packets)
    per_packet_pps = n_packets / per_packet_seconds
    batch_speedup = rows[default_backend]["pps"] / per_packet_pps

    mt_speedup = None
    probe_speedup = None
    if "vector-native-mt" in rows:
        mt_speedup = rows["vector-native-mt"]["pps"] / rows["vector-native"]["pps"]
        probe_speedup = _probe_pool_speedup()

    lines = [
        f"netstat throughput @ scale={scale} dataset={DATASET} seed={SEED} "
        f"({n_packets} packets, {feature_count} features)",
        f"  {'backend':18s} {'kernel':10s} {'pkt/s':>12s} "
        f"{'features/s':>14s} {'seconds':>9s}",
    ]
    for backend, row in rows.items():
        lines.append(
            f"  {backend:18s} {row['kernel']:10s} {row['pps']:12,.0f} "
            f"{row['features_per_second']:14,.0f} {row['seconds']:9.3f}"
        )
    lines.append(
        f"  default backend {default_backend}: {speedup:.2f}x over scalar "
        f"(native kernel: {native_active})"
    )
    lines.append(
        f"  update_batch over per-packet dispatch: {batch_speedup:.2f}x "
        f"({per_packet_pps:,.0f} -> {rows[default_backend]['pps']:,.0f} pkt/s)"
    )
    if mt_speedup is not None:
        lines.append(
            f"  native-mt over native: {mt_speedup:.2f}x on "
            f"{os.cpu_count()} core(s); pool concurrency probe "
            f"{probe_speedup:.2f}x over serial"
        )
    save_result("netstat_throughput", "\n".join(lines))

    save_bench_json(
        "netstat_throughput",
        metric="vector_speedup",
        value=round(speedup, 3),
        scale=scale,
        dataset=DATASET,
        packets=n_packets,
        native_kernel=native_active,
        backend=default_backend,
        backends={
            name: {
                "kernel": row["kernel"],
                "pps": round(row["pps"]),
                "features_per_second": round(row["features_per_second"]),
            }
            for name, row in rows.items()
        },
        scalar_pps=round(rows["scalar"]["pps"]),
        vector_pps=round(rows[default_backend]["pps"]),
        vector_features_per_second=round(
            rows[default_backend]["features_per_second"]
        ),
        numpy_kernel_pps=round(rows["vector-numpy"]["pps"]),
        per_packet_pps=round(per_packet_pps),
        batch_speedup=round(batch_speedup, 3),
        mt_speedup=None if mt_speedup is None else round(mt_speedup, 3),
        pool_probe_speedup=(
            None if probe_speedup is None else round(probe_speedup, 3)
        ),
    )

    assert rows["scalar"]["pps"] > 0
    if native_active:
        # The native kernel must always win; at full scale by >= 3x.
        assert speedup >= 1.0, f"vector slower than scalar: {speedup:.2f}x"
        if scale >= 1.0:
            assert speedup >= FULL_SCALE_SPEEDUP, (
                f"vector speedup {speedup:.2f}x below the "
                f"{FULL_SCALE_SPEEDUP}x acceptance gate at scale {scale}"
            )
            assert batch_speedup >= BATCH_SPEEDUP_FLOOR, (
                f"update_batch speedup {batch_speedup:.2f}x below the "
                f"{BATCH_SPEEDUP_FLOOR}x gate over per-packet dispatch"
            )
    if probe_speedup is not None:
        # The pool must genuinely overlap GIL-releasing kernel calls;
        # this holds on any host, unlike the compute-bound MT gate.
        assert probe_speedup >= PROBE_SPEEDUP_FLOOR, (
            f"worker pool concurrency probe {probe_speedup:.2f}x below "
            f"{PROBE_SPEEDUP_FLOOR}x — kernel calls are serialising"
        )
    if mt_speedup is not None and scale >= 1.0 and (os.cpu_count() or 1) >= 2:
        assert mt_speedup >= MT_SPEEDUP_FLOOR, (
            f"native-mt speedup {mt_speedup:.2f}x over native below the "
            f"{MT_SPEEDUP_FLOOR}x gate on a {os.cpu_count()}-core host"
        )
