"""Regenerates paper Table III: datasets considered but excluded."""

from repro.core.report import render_table3
from repro.datasets import EXCLUDED_DATASETS, all_dataset_infos

from benchmarks.conftest import bench_seconds, save_bench_json, save_result


def test_table3_datasets_excluded(benchmark):
    infos = benchmark(all_dataset_infos)
    assert len(infos) == 18
    assert len(EXCLUDED_DATASETS) == 13
    assert all(info.exclusion_reason for info in EXCLUDED_DATASETS)
    save_result("table3_datasets_excluded", render_table3())
    save_bench_json(
        "table3_datasets_excluded", metric="inventory_seconds",
        value=round(bench_seconds(benchmark), 6), datasets=len(infos),
    )
