"""Regenerates paper Table I: the IDS selection outcome.

Benchmarks the selection procedure itself (criteria evaluation over the
fifteen investigated systems) and saves the rendered table.
"""

from repro.core.report import render_table1
from repro.core.selection import run_selection, selected_names

from benchmarks.conftest import bench_seconds, save_bench_json, save_result


def test_table1_ids_selection(benchmark):
    outcomes = benchmark(run_selection)
    assert len(outcomes) == 15
    # The paper's outcome: exactly these four survive.
    assert set(selected_names()) == {
        "Deep Neural Network (DNN)",
        "Kitsune",
        "HELAD",
        "StratosphereIPS (Slips)",
    }
    save_result("table1_ids_selection", render_table1())
    save_bench_json(
        "table1_ids_selection", metric="selection_seconds",
        value=round(bench_seconds(benchmark), 6), systems=len(outcomes),
    )
