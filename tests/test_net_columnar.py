"""Columnar zero-copy ingest: decode parity, flow tables, hydration,
pcap edge cases over both ingest backends, and the batch reshaping
(slice/take) contracts that sharded column-slice IPC relies on."""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest

from repro.net.arp import ARPHeader
from repro.net.columnar import (
    ColumnBatch,
    ColumnarPcapReader,
    iter_column_batches,
)
from repro.net.ethernet import ETHERTYPE_ARP, EthernetHeader
from repro.net.icmp import ICMPHeader
from repro.net.ipv4 import IPv4Header, PROTO_ICMP
from repro.net.packet import Packet
from repro.net.pcap import (
    PcapFormatError,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)

from tests.conftest import make_tcp_packet, make_udp_packet

INGEST_BACKENDS = ("packet-objects", "columnar-mmap")


def _mixed_packets() -> list[Packet]:
    """TCP/UDP/ICMP/ARP across a handful of conversations, both
    directions, with revisits — the shapes NetStat actually keys on."""
    packets = []
    t = 1000.0
    for i in range(40):
        a, b = f"10.0.0.{1 + i % 4}", f"10.0.1.{1 + i % 3}"
        packets.append(make_tcp_packet(
            ts=t, src=a, dst=b, sport=40000 + i % 5, dport=80,
            payload=b"x" * (i % 7),
        ))
        t += 0.01
        if i % 4 == 0:
            packets.append(make_udp_packet(
                ts=t, src=b, dst=a, sport=53, dport=40000 + i % 5,
                payload=b"q" * (i % 3),
            ))
            t += 0.01
        if i % 7 == 0:
            packets.append(Packet(
                timestamp=t,
                ether=EthernetHeader(ethertype=ETHERTYPE_ARP),
                arp=ARPHeader(sender_ip=a, target_ip=b),
            ))
            t += 0.01
        if i % 9 == 0:
            packets.append(Packet(
                timestamp=t,
                ether=EthernetHeader(),
                ip=IPv4Header(src_ip=a, dst_ip=b, protocol=PROTO_ICMP),
                transport=ICMPHeader(),
            ))
            t += 0.01
    return packets


@pytest.fixture
def capture(tmp_path):
    path = tmp_path / "mixed.pcap"
    write_pcap(path, _mixed_packets())
    return path


def _one_batch(path, **kwargs) -> ColumnBatch:
    batches = list(ColumnarPcapReader(path, **kwargs))
    assert len(batches) == 1
    return batches[0]


def _read_packets(path, backend, batch_size=7):
    """The same capture through either ingest backend, as packets."""
    if backend == "packet-objects":
        return read_pcap(path)
    return [
        batch.hydrate(i)
        for batch in ColumnarPcapReader(path, batch_size=batch_size)
        for i in range(len(batch))
    ]


def _collect_until_error(path, backend, batch_size=4):
    """Packets successfully decoded before the first error, plus the
    error message (None for a clean read)."""
    got = []
    try:
        if backend == "packet-objects":
            for packet in PcapReader(path):
                got.append(packet)
        else:
            for batch in ColumnarPcapReader(path, batch_size=batch_size):
                got.extend(batch.hydrate(i) for i in range(len(batch)))
    except (PcapFormatError, ValueError) as error:
        return got, f"{type(error).__name__}: {error}"
    return got, None


class TestColumnDecodeParity:
    def test_columns_match_object_reader(self, capture):
        objects = read_pcap(capture)
        batch = _one_batch(capture)
        assert len(batch) == len(objects)
        assert batch.timestamps.tolist() == [p.timestamp for p in objects]
        assert batch.wire_len.tolist() == [
            float(p.wire_len) for p in objects
        ]
        assert batch.src_port.tolist() == [
            p.src_port or 0 for p in objects
        ]
        assert batch.dst_port.tolist() == [
            p.dst_port or 0 for p in objects
        ]
        assert batch.ip_present.tolist() == [
            (p.src_ip is not None or p.dst_ip is not None)
            for p in objects
        ]

    def test_flow_strings_match_packet_accessors(self, capture):
        objects = read_pcap(capture)
        batch = _one_batch(capture)
        inverse, flows = batch.flow_table()
        for i, packet in enumerate(objects):
            flow = flows[inverse[i]]
            assert flow.src_ip == (packet.src_ip or "0.0.0.0")
            assert flow.dst_ip == (packet.dst_ip or "0.0.0.0")
            assert flow.src_mac == packet.ether.src_mac
            assert flow.dst_mac == packet.ether.dst_mac
            assert flow.src_port == (packet.src_port or 0)
            assert flow.dst_port == (packet.dst_port or 0)

    def test_flow_table_first_occurrence_order(self, capture):
        batch = _one_batch(capture)
        inverse, flows = batch.flow_table()
        first_rows = batch.flow_first_rows()
        assert len(first_rows) == len(flows)
        # Flow j's first row must be the first row mapping to j, and
        # flow numbering must follow first-occurrence order.
        seen = {}
        for row, flow_id in enumerate(inverse.tolist()):
            seen.setdefault(flow_id, row)
        assert [seen[j] for j in range(len(flows))] == first_rows
        assert first_rows == sorted(first_rows)

    def test_features_bit_identical_across_engines(self, capture):
        from repro.features.netstat import NetStat

        objects = read_pcap(capture)
        reference = NetStat(engine="vector").extract_all(objects)
        for engine in ("vector", "vector-numpy", "scalar"):
            batch = _one_batch(capture)
            columnar = NetStat(engine=engine).extract_all(batch)
            assert np.array_equal(columnar, reference), engine

    def test_features_bit_identical_across_batch_sizes(self, capture):
        from repro.features.netstat import NetStat

        reference = NetStat(engine="vector").extract_all(
            read_pcap(capture)
        )
        for batch_size in (3, 17, 8192):
            extractor = NetStat(engine="vector")
            chunks = [
                extractor.extract_all(batch)
                for batch in ColumnarPcapReader(
                    capture, batch_size=batch_size
                )
            ]
            assert np.array_equal(np.vstack(chunks), reference), batch_size

    def test_shard_ids_match_object_path(self, capture):
        from repro.stream.shard import shard_for_packet, shard_ids_for_batch

        objects = read_pcap(capture)
        batch = _one_batch(capture)
        for n_shards in (1, 2, 3, 7):
            expected = [shard_for_packet(p, n_shards) for p in objects]
            assert shard_ids_for_batch(batch, n_shards).tolist() == expected


class TestHydrationAndReshaping:
    def test_hydrate_matches_object_reader(self, capture):
        objects = read_pcap(capture)
        batch = _one_batch(capture)
        assert batch.can_hydrate
        for i, expected in enumerate(objects):
            packet = batch.hydrate(i)
            assert packet.timestamp == expected.timestamp
            assert packet.to_bytes() == expected.to_bytes()
            assert packet.meta["orig_len"] == expected.meta["orig_len"]

    def test_slice_views_keep_hydration(self, capture):
        batch = _one_batch(capture)
        part = batch.slice(5, 12)
        assert len(part) == 7
        assert part.can_hydrate
        assert part.hydrate(0).to_bytes() == batch.hydrate(5).to_bytes()
        # Views, not copies.
        assert part.timestamps.base is not None

    def test_take_drops_hydration_and_pickles_as_columns(self, capture):
        batch = _one_batch(capture)
        taken = batch.take(np.array([2, 5, 11]))
        assert len(taken) == 3
        assert not taken.can_hydrate
        with pytest.raises(RuntimeError, match="cannot hydrate"):
            taken.hydrate(0)
        assert taken.timestamps.tolist() == [
            batch.timestamps[i] for i in (2, 5, 11)
        ]
        clone = pickle.loads(pickle.dumps(taken))
        assert clone.timestamps.tolist() == taken.timestamps.tolist()
        assert clone.wire_len.tolist() == taken.wire_len.tolist()
        assert not clone.can_hydrate
        # A mmap-backed batch pickles without dragging the capture
        # through: the payload must be near the bare column size, not
        # the file size.
        assert len(pickle.dumps(taken)) < 4096

    def test_row_labels_default_for_unlabelled_captures(self, capture):
        batch = _one_batch(capture)
        assert batch.row_labels() == [0] * len(batch)
        assert batch.row_attack_types() == [""] * len(batch)

    def test_from_packets_round_trip(self):
        packets = _mixed_packets()[:20]
        packets[3].label = 1
        packets[3].attack_type = "probe"
        batch = ColumnBatch.from_packets(packets)
        assert len(batch) == 20
        assert batch.row_labels()[3] == 1
        assert batch.row_attack_types()[3] == "probe"
        assert batch.hydrate(3) is packets[3]
        assert batch.timestamps.tolist() == [p.timestamp for p in packets]
        assert batch.wire_len.tolist() == [
            float(p.wire_len) for p in packets
        ]

    def test_iter_column_batches_buffers_plain_sources(self):
        from repro.stream.sources import ListSource

        packets = _mixed_packets()[:10]
        batches = list(iter_column_batches(ListSource(packets), 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert batches[2].timestamps.tolist() == [
            p.timestamp for p in packets[8:]
        ]

    def test_empty_flow_table(self):
        batch = ColumnBatch.from_packets([])
        inverse, flows = batch.flow_table()
        assert len(batch) == 0
        assert inverse.size == 0 and flows == []


class TestPcapEdgeCases:
    """The same malformed/exotic captures through both ingest backends
    must yield identical packets and identical failures."""

    @pytest.mark.parametrize("backend", INGEST_BACKENDS)
    def test_nanosecond_magic_preserves_sub_microsecond(
        self, tmp_path, backend
    ):
        packets = [
            make_tcp_packet(ts=1000.0 + i + 250e-9) for i in range(5)
        ]
        path = tmp_path / "ns.pcap"
        write_pcap(path, packets, nanosecond=True)
        loaded = _read_packets(path, backend)
        for i, packet in enumerate(loaded):
            # 250ns survives; a microsecond file would round it away.
            assert packet.timestamp == pytest.approx(
                1000.0 + i + 250e-9, abs=1e-10
            )

    def test_nanosecond_timestamps_identical_across_backends(
        self, tmp_path
    ):
        path = tmp_path / "ns2.pcap"
        write_pcap(
            path,
            [make_tcp_packet(ts=1.5 + i * 1e-7) for i in range(9)],
            nanosecond=True,
        )
        objects = _read_packets(path, "packet-objects")
        columns = _one_batch(path)
        assert columns.timestamps.tolist() == [
            p.timestamp for p in objects
        ]

    @pytest.mark.parametrize("backend", INGEST_BACKENDS)
    def test_big_endian_capture(self, tmp_path, backend):
        frames = [make_tcp_packet(sport=1111 + i).to_bytes()
                  for i in range(4)]
        path = tmp_path / "be.pcap"
        with open(path, "wb") as fh:
            fh.write(struct.pack(
                ">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1
            ))
            for i, frame in enumerate(frames):
                fh.write(struct.pack(
                    ">IIII", 100 + i, 2500, len(frame), len(frame)
                ))
                fh.write(frame)
        loaded = _read_packets(path, backend)
        assert [p.src_port for p in loaded] == [1111, 1112, 1113, 1114]
        assert [p.timestamp for p in loaded] == [
            100 + i + 0.0025 for i in range(4)
        ]

    @pytest.mark.parametrize("truncate_in", ("header", "body"))
    def test_truncated_final_record_parity(self, tmp_path, truncate_in):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, [make_tcp_packet(ts=float(i)) for i in range(3)])
        data = path.read_bytes()
        # Cut into the last record's body, or into its 16-byte header.
        cut = 5 if truncate_in == "body" else len(make_tcp_packet().to_bytes()) + 5
        path.write_bytes(data[: len(data) - cut])
        results = {
            backend: _collect_until_error(path, backend)
            for backend in INGEST_BACKENDS
        }
        obj_got, obj_err = results["packet-objects"]
        col_got, col_err = results["columnar-mmap"]
        # Both yield the complete records, then the same error.
        assert len(obj_got) == len(col_got) == 2
        assert obj_err is not None and obj_err == col_err
        assert [p.timestamp for p in obj_got] == [
            p.timestamp for p in col_got
        ]

    def test_snaplen_clipped_frames_parity(self, tmp_path):
        # 100-byte snaplen clips the payload but leaves whole headers:
        # both backends must decode the clipped frame identically and
        # keep the original length in meta.
        packet = make_tcp_packet(payload=b"z" * 500)
        path = tmp_path / "snap.pcap"
        with PcapWriter(path, snaplen=100) as writer:
            writer.write(packet)
        loaded = {
            backend: _read_packets(path, backend)[0]
            for backend in INGEST_BACKENDS
        }
        obj, col = loaded["packet-objects"], loaded["columnar-mmap"]
        assert obj.meta["orig_len"] == col.meta["orig_len"] == packet.wire_len
        assert obj.to_bytes() == col.to_bytes()
        assert obj.wire_len == col.wire_len
        batch = _one_batch(path)
        assert batch.wire_len[0] == float(obj.wire_len)

    def test_snaplen_clipped_mid_header_error_parity(self, tmp_path):
        # A 20-byte snaplen cuts into the IPv4 header: the object
        # decoder raises ValueError; the columnar decode must fire the
        # same message at the same record.
        path = tmp_path / "snap-bad.pcap"
        with PcapWriter(path, snaplen=20) as writer:
            writer.write(make_tcp_packet(ts=0.0))
        results = {
            backend: _collect_until_error(path, backend)
            for backend in INGEST_BACKENDS
        }
        obj_got, obj_err = results["packet-objects"]
        col_got, col_err = results["columnar-mmap"]
        assert obj_got == [] and col_got == []
        assert obj_err is not None and obj_err == col_err
        assert "IPv4 header too short" in obj_err

    def test_malformed_mid_batch_yields_prefix_first(self, tmp_path):
        # Records before a malformed one must still come out, in
        # order, from the same batch that contains the bad row.
        good = [make_tcp_packet(ts=float(i)) for i in range(5)]
        path = tmp_path / "midbad.pcap"
        frames = [p.to_bytes() for p in good]
        with open(path, "wb") as fh:
            fh.write(struct.pack(
                "<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1
            ))
            for i, frame in enumerate(frames):
                body = frame if i != 3 else frame[:20]  # clip record 3
                fh.write(struct.pack(
                    "<IIII", i, 0, len(body), len(frame)
                ))
                fh.write(body)
        results = {
            backend: _collect_until_error(path, backend, batch_size=8192)
            for backend in INGEST_BACKENDS
        }
        obj_got, obj_err = results["packet-objects"]
        col_got, col_err = results["columnar-mmap"]
        assert len(obj_got) == len(col_got) == 3
        assert obj_err == col_err and "IPv4" in obj_err
        assert [p.timestamp for p in col_got] == [0.0, 1.0, 2.0]

    @pytest.mark.parametrize("backend", INGEST_BACKENDS)
    def test_header_only_file_is_empty(self, tmp_path, backend):
        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert _read_packets(path, backend) == []

    def test_bad_magic_parity(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        for backend in INGEST_BACKENDS:
            _, err = _collect_until_error(path, backend)
            assert err is not None and "magic" in err
