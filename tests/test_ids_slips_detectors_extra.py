"""Additional detector coverage: long connections, anomalous flags,
behaviour-model guards."""

import numpy as np

from repro.flows.assembler import FlowAssembler
from repro.ids.slips.detectors import (
    detect_anomalous_flags,
    detect_long_connections,
    detect_malicious_behaviour,
)
from repro.ids.slips.evidence import EvidenceKind
from repro.ids.slips.markov import default_c2_model
from repro.ids.slips.profiles import build_profile_windows
from repro.net.tcp import TCPFlags

from tests.conftest import make_tcp_packet, make_udp_packet


def _window(packets):
    packets.sort(key=lambda p: p.timestamp)
    flows = FlowAssembler(idle_timeout=5000.0).assemble(packets)
    windows = build_profile_windows(flows, window_width=36000.0)
    return next(iter(windows.values()))


class TestLongConnections:
    def test_fires_on_long_flow(self):
        packets = [make_udp_packet(0.0), make_udp_packet(2000.0)]
        window = _window(packets)
        evidence = list(detect_long_connections(window))
        assert len(evidence) == 1
        assert evidence[0].kind is EvidenceKind.LONG_CONNECTION

    def test_quiet_on_short_flow(self):
        packets = [make_udp_packet(0.0), make_udp_packet(10.0)]
        assert list(detect_long_connections(_window(packets))) == []

    def test_count_cap(self):
        packets = []
        for i in range(12):
            packets.append(make_udp_packet(0.0, sport=2000 + i))
            packets.append(make_udp_packet(2000.0, sport=2000 + i))
        evidence = list(detect_long_connections(_window(packets)))
        assert len(evidence) == 5  # capped


class TestAnomalousFlags:
    def test_fires_on_null_probes(self):
        packets = [
            make_tcp_packet(float(i), sport=3000 + i, flags=TCPFlags(0))
            for i in range(4)
        ]
        evidence = list(detect_anomalous_flags(_window(packets)))
        assert len(evidence) == 1
        assert evidence[0].kind is EvidenceKind.ANOMALOUS_FLAGS

    def test_fires_on_xmas_probes(self):
        xmas = TCPFlags.FIN | TCPFlags.PSH | TCPFlags.URG
        packets = [
            make_tcp_packet(float(i), sport=3000 + i, flags=xmas)
            for i in range(4)
        ]
        assert list(detect_anomalous_flags(_window(packets)))

    def test_quiet_on_normal_traffic(self):
        packets = [
            make_tcp_packet(float(i), sport=3000 + i,
                            flags=TCPFlags.SYN if i % 2 else TCPFlags.ACK)
            for i in range(6)
        ]
        assert list(detect_anomalous_flags(_window(packets))) == []


class TestBehaviourModelGuards:
    def test_volumetric_group_excluded_by_min_period(self):
        """Sub-second 'beacon-looking' flows are floods, not C2."""
        packets = []
        for i in range(40):
            t = i * 0.05
            packets.append(make_tcp_packet(t, sport=20000 + i, dport=80,
                                           payload=b"x" * 30))
            packets.append(make_tcp_packet(t + 0.01, sport=20000 + i,
                                           dport=80, flags=TCPFlags.FIN))
        window = _window(packets)
        evidence = list(
            detect_malicious_behaviour(window, default_c2_model())
        )
        assert evidence == []

    def test_slow_periodic_group_matches(self):
        packets = []
        for i in range(15):
            t = i * 30.0
            packets.append(make_tcp_packet(t, sport=20000 + i, dport=6667,
                                           payload=b"x" * 30))
            packets.append(make_tcp_packet(t + 0.1, sport=20000 + i,
                                           dport=6667, flags=TCPFlags.FIN))
        window = _window(packets)
        evidence = list(
            detect_malicious_behaviour(window, default_c2_model())
        )
        assert evidence
        assert evidence[0].kind is EvidenceKind.MALICIOUS_BEHAVIOUR_MODEL
