"""Tests for the five dataset emulations and the registry."""

import pytest

from repro.datasets import (
    EXCLUDED_DATASETS,
    USED_DATASETS,
    USED_DATASET_INFO,
    all_dataset_infos,
    generate_dataset,
)
from repro.datasets import kddcup
from repro.datasets.base import SyntheticDataset, merge_streams

from tests.conftest import make_udp_packet

SMALL = 0.05


class TestRegistry:
    def test_five_used_datasets(self):
        assert set(USED_DATASETS) == {
            "CICIDS2017", "UNSW-NB15", "BoT-IoT", "Stratosphere", "Mirai"
        }

    def test_thirteen_excluded(self):
        assert len(EXCLUDED_DATASETS) == 13
        assert all(not info.used for info in EXCLUDED_DATASETS)

    def test_all_infos(self):
        infos = all_dataset_infos()
        assert len(infos) == 18
        assert sum(info.used for info in infos) == 5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            generate_dataset("NoSuchSet")

    def test_exclusion_reasons_recorded(self):
        kdd = next(i for i in EXCLUDED_DATASETS if i.name == "KDD-Cup99")
        assert "pcap" in kdd.exclusion_reason
        assert not kdd.has_pcap


@pytest.mark.parametrize("name", sorted(USED_DATASETS))
class TestEachDataset:
    def test_generates_ordered_labelled_packets(self, name):
        dataset = generate_dataset(name, seed=1, scale=SMALL)
        assert len(dataset) > 200
        stamps = [p.timestamp for p in dataset.packets]
        assert stamps == sorted(stamps)
        assert 0.0 < dataset.attack_prevalence < 1.0

    def test_deterministic(self, name):
        a = generate_dataset(name, seed=5, scale=SMALL)
        b = generate_dataset(name, seed=5, scale=SMALL)
        assert len(a) == len(b)
        assert [p.timestamp for p in a.packets[:50]] == [
            p.timestamp for p in b.packets[:50]
        ]
        assert a.labels[:200] == b.labels[:200]

    def test_seed_changes_traffic(self, name):
        a = generate_dataset(name, seed=1, scale=SMALL)
        b = generate_dataset(name, seed=2, scale=SMALL)
        assert [p.timestamp for p in a.packets[:100]] != [
            p.timestamp for p in b.packets[:100]
        ]

    def test_attack_families_match_info(self, name):
        dataset = generate_dataset(name, seed=3, scale=SMALL)
        observed = set(dataset.attack_type_counts())
        declared = set(dataset.info.attack_families)
        # Every observed family was declared (generators may drop some
        # minor families at tiny scales, hence subset not equality).
        assert observed <= declared | {"mirai-infection", "generic",
                                       "backdoor", "shellcode", "fuzzers",
                                       "exploits", "web-attack"}

    def test_flows_exportable(self, name):
        dataset = generate_dataset(name, seed=4, scale=SMALL)
        flows = dataset.flows()
        assert flows
        assert sum(f.label for f in flows) > 0


class TestDatasetProfiles:
    """The distributional contrasts the paper's analysis rests on."""

    def test_bot_iot_is_attack_dominated(self):
        dataset = generate_dataset("BoT-IoT", seed=1, scale=SMALL)
        assert dataset.attack_prevalence > 0.8

    def test_enterprise_sets_are_benign_majority_or_mixed(self):
        for name in ("CICIDS2017", "UNSW-NB15"):
            dataset = generate_dataset(name, seed=1, scale=SMALL)
            assert dataset.attack_prevalence < 0.6

    def test_mirai_has_clean_benign_prefix(self):
        dataset = generate_dataset("Mirai", seed=1, scale=SMALL)
        prefix = dataset.benign_prefix()
        assert len(prefix) > 100
        assert all(p.label == 0 for p in prefix)

    def test_stratosphere_provides_conn_log_schema_only(self):
        dataset = generate_dataset("Stratosphere", seed=1, scale=SMALL)
        from repro.flows.netflow import NETFLOW_FEATURE_NAMES

        provided = set(dataset.provided_flow_features)
        assert "sload" not in provided  # rich Argus features absent
        assert "dur" in provided
        assert provided < set(NETFLOW_FEATURE_NAMES) | provided

    def test_cicids_provides_full_cicflow_schema(self):
        from repro.flows.cicflow import CICFLOW_FEATURE_NAMES

        dataset = generate_dataset("CICIDS2017", seed=1, scale=SMALL)
        assert set(dataset.provided_flow_features) == set(CICFLOW_FEATURE_NAMES)


class TestKDDReference:
    def test_attack_dominated(self):
        dataset = kddcup.generate(seed=1, scale=0.2)
        assert dataset.attack_prevalence > 0.6

    def test_never_marked_used(self):
        assert not kddcup.INFO.used


class TestSyntheticDatasetHelpers:
    def _tiny(self):
        packets = [make_udp_packet(float(i), label=int(i >= 5))
                   for i in range(10)]
        info = USED_DATASET_INFO["Mirai"]
        return SyntheticDataset(name="tiny", packets=packets, info=info)

    def test_rejects_unsorted(self):
        packets = [make_udp_packet(2.0), make_udp_packet(1.0)]
        with pytest.raises(ValueError, match="ordered"):
            SyntheticDataset(name="bad", packets=packets,
                             info=USED_DATASET_INFO["Mirai"])

    def test_split_by_time(self):
        train, test = self._tiny().split_by_time(0.3)
        assert len(train) == 3 and len(test) == 7

    def test_benign_prefix_stops_at_first_attack(self):
        prefix = self._tiny().benign_prefix()
        assert len(prefix) == 5

    def test_benign_prefix_cap(self):
        prefix = self._tiny().benign_prefix(max_packets=2)
        assert len(prefix) == 2

    def test_prevalence_and_duration(self):
        dataset = self._tiny()
        assert dataset.attack_prevalence == 0.5
        assert dataset.duration == 9.0

    def test_pcap_roundtrip_count(self, tmp_path):
        dataset = self._tiny()
        path = tmp_path / "tiny.pcap"
        assert dataset.to_pcap(path) == 10
        from repro.net.pcap import read_pcap

        assert len(read_pcap(path)) == 10

    def test_merge_streams(self):
        a = [make_udp_packet(3.0)]
        b = [make_udp_packet(1.0), make_udp_packet(2.0)]
        merged = merge_streams([a, b])
        assert [p.timestamp for p in merged] == [1.0, 2.0, 3.0]
