"""Unit tests for the repro.obs layer.

Registry semantics (types, fixed buckets, merge determinism), span
nesting, the snapshot exporter, Prometheus rendering, the report/diff
renderers, and the run-id contract.
"""

from __future__ import annotations

import json

import pytest

from repro import obs


# -- registry ---------------------------------------------------------------

class TestRegistry:
    def test_counter_accumulates(self):
        registry = obs.MetricsRegistry()
        metric = registry.counter("a.b")
        metric.inc()
        metric.inc(2.5)
        assert registry.counter("a.b") is metric
        assert registry.snapshot()["counters"]["a.b"] == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            obs.MetricsRegistry().counter("a").inc(-1)

    def test_gauge_none_until_set_and_omitted(self):
        registry = obs.MetricsRegistry()
        registry.gauge("level")
        assert registry.snapshot()["gauges"] == {}
        registry.gauge("level").set(7)
        assert registry.snapshot()["gauges"] == {"level": 7.0}

    def test_type_clash_raises(self):
        registry = obs.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already a counter"):
            registry.histogram("x")

    def test_histogram_fixed_bucket_labels(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(0.5)   # lands in the 0.5 bucket (le semantics)
        hist.observe(0.75)  # lands in the 1 bucket
        hist.observe(3.0)   # lands in the 4 bucket
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(4.25)
        assert snap["min"] == 0.5 and snap["max"] == 3.0
        assert snap["buckets"] == {"0.5": 1, "1": 1, "4": 1}

    def test_histogram_overflow_goes_to_inf(self):
        registry = obs.MetricsRegistry()
        registry.histogram("h").observe(2.0 ** 40)
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["buckets"] == {"+Inf": 1}

    def test_snapshot_keys_sorted(self):
        registry = obs.MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        assert list(registry.snapshot()["counters"]) == ["a", "z"]

    def test_clear(self):
        registry = obs.MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert registry.snapshot()["counters"] == {}


class TestMerge:
    def _snap(self, **counters):
        registry = obs.MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        return registry.snapshot()

    def test_counters_add_gauges_max(self):
        a = obs.MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("depth").set(2)
        b = obs.MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("depth").set(5)
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 7
        assert merged["gauges"]["depth"] == 5.0

    def test_histograms_merge_exactly(self):
        a = obs.MetricsRegistry()
        b = obs.MetricsRegistry()
        for value in (0.1, 0.9, 17.0):
            a.histogram("h").observe(value)
            b.histogram("h").observe(value)
        both = obs.MetricsRegistry()
        for value in (0.1, 0.9, 17.0) * 2:
            both.histogram("h").observe(value)
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["histograms"]["h"] == (
            both.snapshot()["histograms"]["h"]
        )

    def test_merge_order_independent_bytewise(self):
        a = self._snap(x=1, y=2)
        b = self._snap(y=5, z=1)
        ab = json.dumps(obs.merge_snapshots([a, b]), sort_keys=True)
        ba = json.dumps(obs.merge_snapshots([b, a]), sort_keys=True)
        assert ab == ba

    def test_merge_ignores_context_keys(self):
        merged = obs.merge_snapshots([
            {"run_id": "aa", "pid": 1, "counters": {"n": 1}},
            {"run_id": "aa", "pid": 2, "counters": {"n": 1}},
        ])
        assert merged["counters"] == {"n": 2}
        assert "pid" not in merged

    def test_spans_add(self):
        a = obs.MetricsRegistry()
        a.record_span("outer/inner", 0.5)
        b = obs.MetricsRegistry()
        b.record_span("outer/inner", 0.25)
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["spans"]["outer/inner"]["count"] == 2
        assert merged["spans"]["outer/inner"]["seconds"] == 0.75


# -- spans ------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_is_null_singleton(self):
        assert not obs.is_enabled()
        assert obs.span("anything") is obs.NULL_SPAN

    def test_enabled_span_records_nested_paths(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = obs.get_registry().snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 1
        assert spans["outer"]["seconds"] >= spans["outer/inner"]["seconds"]

    def test_span_pops_on_exception(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("broken"):
                raise RuntimeError("boom")
        with obs.span("after"):
            pass
        spans = obs.get_registry().snapshot()["spans"]
        assert "after" in spans  # not "broken/after": stack unwound

    def test_traced_decorator(self):
        obs.enable()

        @obs.traced("worker")
        def job():
            return 42

        assert job() == 42
        assert obs.get_registry().snapshot()["spans"]["worker"]["count"] == 1


# -- process state ----------------------------------------------------------

class TestProcessState:
    def test_run_id_stable_8_hex(self):
        rid = obs.run_id()
        assert len(rid) == 8
        int(rid, 16)
        assert obs.run_id() == rid

    def test_reset_registry_swaps_and_keeps_run_id(self):
        rid = obs.run_id()
        obs.counter("stale").inc()
        fresh = obs.reset_registry()
        assert obs.get_registry() is fresh
        assert obs.get_registry().snapshot()["counters"] == {}
        assert obs.run_id() == rid

    def test_process_snapshot_context(self):
        obs.counter("n").inc(2)
        snap = obs.process_snapshot()
        assert snap["run_id"] == obs.run_id()
        assert snap["pid"] > 0
        assert snap["cpu_count"] >= 1
        assert snap["counters"] == {"n": 2}


# -- exporter ---------------------------------------------------------------

class TestExporter:
    def test_jsonl_roundtrip_with_final_export(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with obs.SnapshotExporter(path, interval_seconds=3600,
                                  source="test") as exporter:
            obs.counter("n").inc()
            assert exporter.maybe_export() is False  # interval not up
            exporter.export({"extra_key": 1})
        snapshots = obs.read_snapshots(path)
        assert len(snapshots) == 1
        assert snapshots[0]["counters"]["n"] == 1
        assert snapshots[0]["seq"] == 0
        assert snapshots[0]["source"] == "test"
        assert snapshots[0]["extra_key"] == 1
        assert snapshots[0]["run_id"] == obs.run_id()

    def test_callable_extra_only_invoked_on_export(self, tmp_path):
        calls = []

        def extra():
            calls.append(1)
            return {"tree": True}

        with obs.SnapshotExporter(tmp_path / "m.jsonl",
                                  interval_seconds=3600) as exporter:
            exporter.maybe_export(extra)
            assert calls == []  # suppressed export never built the tree
            snapshot = exporter.export(extra)
        assert calls == [1]
        assert snapshot["tree"] is True

    def test_callback_sink(self):
        seen = []
        exporter = obs.SnapshotExporter(seen.append, interval_seconds=3600)
        exporter.export()
        exporter.export()
        assert [snap["seq"] for snap in seen] == [0, 1]
        assert exporter.path is None

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_seconds"):
            obs.SnapshotExporter("x.jsonl", interval_seconds=0)

    def test_read_snapshots_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            obs.read_snapshots(path)


# -- rendering --------------------------------------------------------------

class TestRendering:
    def _sample_snapshot(self):
        registry = obs.MetricsRegistry()
        registry.counter("stream.packets_streamed").inc(10)
        registry.gauge("stream.warmup_items").set(4)
        registry.histogram("stream.detector.score_seconds").observe(0.25)
        registry.record_span("stream.warmup", 1.5)
        snap = obs.process_snapshot(registry)
        snap["seq"] = 0
        snap["source"] = "test"
        return snap

    def test_prometheus_text(self):
        text = obs.render_prometheus(self._sample_snapshot())
        assert "# TYPE repro_stream_packets_streamed counter" in text
        assert "repro_stream_packets_streamed 10" in text
        assert "repro_stream_warmup_items 4" in text
        assert ('repro_stream_detector_score_seconds_bucket{le="0.25"} 1'
                in text)
        assert ('repro_stream_detector_score_seconds_bucket{le="+Inf"} 1'
                in text)
        assert 'repro_span_seconds_total{span="stream.warmup"} 1.5' in text

    def test_render_snapshot_sections(self):
        text = obs.render_snapshot(self._sample_snapshot())
        assert "stream.packets_streamed" in text
        assert "stream.warmup_items" in text
        assert "count=1" in text
        assert "stream.warmup" in text

    def test_render_snapshot_worker_tree(self):
        registry = obs.MetricsRegistry()
        registry.counter("stream.worker.packets").inc(5)
        worker = obs.process_snapshot(registry)
        snap = self._sample_snapshot()
        snap["workers"] = {"0": worker, "1": worker}
        snap["merged"] = obs.merge_snapshots([worker, worker])
        text = obs.render_snapshot(snap)
        assert "worker 0" in text and "worker 1" in text
        assert "merged across workers" in text

    def test_diff_snapshots(self):
        before = self._sample_snapshot()
        registry = obs.MetricsRegistry()
        registry.counter("stream.packets_streamed").inc(25)
        after = obs.process_snapshot(registry)
        after["seq"] = 1
        text = obs.diff_snapshots(before, after)
        assert "stream.packets_streamed" in text
        assert "(+15)" in text

    def test_diff_no_changes(self):
        snap = self._sample_snapshot()
        assert "(no metric differences)" in obs.diff_snapshots(snap, snap)
