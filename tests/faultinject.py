"""Reusable fault-injection harness for the sharded streaming engine.

The product-side seam is :class:`repro.stream.sharded.FaultInjection`
(workers honour it deterministically: kill/stall/slow at an exact shard
packet count). This module adds what tests need around that seam:

* :class:`ChannelMeanDetector` — a picklable stub detector whose state
  is keyed by canonical channel, so its per-packet scores are
  *bit-identical at any worker count* (unlike the NetStat IDSs, whose
  source-keyed aggregations make scores shard-layout-dependent). With
  it, full-report parity — scores, windows, alert episodes — can be
  asserted between faulted, unfaulted, sharded and in-process runs.
* :func:`conversation_packets` — multi-channel labelled traffic whose
  channels spread across shards, with an anomalous burst so alert
  episodes actually open.
* :func:`run_sharded` / :func:`assert_stream_reports_match` — one-call
  capture under a fault spec and strict report comparison.

Kill/stall/slow semantics (``FaultInjection(action=...)``):

``kill``
    SIGKILL the target worker just before it scores shard packet
    ``at_packets``. Crash-resume path: the supervisor respawns it from
    its newest on-disk checkpoint and replays retained packets.
``stall``
    One ``seconds``-long sleep at the trigger — exercises backpressure
    (bounded queues fill; the supervisor blocks rather than buffering
    unboundedly) without killing anything.
``slow``
    ``per_packet_delay`` seconds before every packet from the trigger
    on — a persistently slow shard.
"""

from __future__ import annotations

import numpy as np

from repro.net.packet import Packet
from repro.stream.detector import StreamScore
from repro.stream.shard import shard_key_for_packet
from repro.stream.sharded import FaultInjection, stream_capture_sharded
from repro.stream.sources import ListSource

from tests.conftest import make_tcp_packet

__all__ = [
    "ChannelMeanDetector",
    "FaultInjection",
    "assert_stream_reports_match",
    "conversation_packets",
    "run_sharded",
]


class ChannelMeanDetector:
    """Channel-keyed stub detector: sharding-invariant by construction.

    Scores each packet by its size's deviation from the running mean of
    its *channel* (the shard key), so a worker seeing only its shard's
    channels computes exactly what a single process would. Works on
    IP-bearing packets (the harness traffic); picklable, so it rides
    the genesis/periodic checkpoint path unchanged.
    """

    name = "channel-mean"
    unit = "packet"
    scoring_path = "per-packet"

    def __init__(self, batch_size: int = 1):
        self.batch_size = batch_size
        self.items_scored = 0
        self._state: dict[tuple, tuple[int, float]] = {}

    def _observe(self, packet) -> float:
        key = shard_key_for_packet(packet)
        count, mean = self._state.get(key, (0, 0.0))
        count += 1
        mean += (packet.wire_len - mean) / count
        self._state[key] = (count, mean)
        return mean

    def warmup(self, packets) -> None:
        for packet in packets:
            self._observe(packet)

    def process(self, packet) -> list[StreamScore]:
        mean = self._observe(packet)
        index = self.items_scored
        self.items_scored += 1
        return [StreamScore(
            index=index,
            timestamp=packet.timestamp,
            score=abs(packet.wire_len - mean) / (1.0 + mean),
            label=packet.label,
            attack_type=packet.attack_type,
        )]

    def finish(self) -> list[StreamScore]:
        return []


def conversation_packets(
    *,
    channels: int = 8,
    packets_per_channel: int = 60,
    anomaly_channel: int = 0,
    anomaly_from: int = 40,
    spacing: float = 0.05,
) -> list[Packet]:
    """Interleaved TCP conversations across ``channels`` host pairs.

    Channel ``anomaly_channel`` switches to oversized labelled packets
    from its ``anomaly_from``-th packet on, so thresholds, windows and
    alert episodes all have something to find.
    """
    packets: list[Packet] = []
    for step in range(packets_per_channel):
        for channel in range(channels):
            anomalous = (channel == anomaly_channel
                         and step >= anomaly_from)
            packets.append(make_tcp_packet(
                ts=step * spacing * channels + channel * spacing,
                src=f"10.0.{channel}.1",
                dst=f"10.0.{channel}.2",
                sport=40000 + channel,
                dport=80,
                payload=b"x" * (900 if anomalous else 40 + channel),
                label=1 if anomalous else 0,
                attack_type="oversize" if anomalous else "",
            ))
    return packets


def run_sharded(
    packets: list[Packet],
    *,
    workers: int,
    fault: FaultInjection | None = None,
    warmup_packets: int = 64,
    checkpoint_every: int = 50,
    chunk_packets: int = 16,
    batch_size: int = 1,
    window_seconds: float = 5.0,
    **kwargs,
):
    """One sharded capture of ``packets`` with the harness detector.

    Small chunks and a short checkpoint cadence by default, so kills
    land between checkpoints and retention/replay paths actually run.
    """
    return stream_capture_sharded(
        ListSource(packets),
        ChannelMeanDetector(batch_size=batch_size),
        workers=workers,
        warmup_packets=warmup_packets,
        window_seconds=window_seconds,
        checkpoint_every=checkpoint_every,
        chunk_packets=chunk_packets,
        fault=fault,
        **kwargs,
    )


def assert_stream_reports_match(actual, expected) -> None:
    """Strict parity: scores, threshold, windows and alert episodes."""
    assert actual.n_scored == expected.n_scored
    assert np.array_equal(actual.scores, expected.scores), (
        "per-item scores diverge"
    )
    assert actual.threshold == expected.threshold
    assert actual.alerts == expected.alerts, "alert episodes diverge"
    assert len(actual.windows) == len(expected.windows)
    for left, right in zip(actual.windows, expected.windows):
        assert left.start == right.start
        assert left.items == right.items
        assert left.alerts == right.alerts
    assert (actual.notes["coverage_digest"]
            == expected.notes["coverage_digest"])
