"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_inclusive_accepts_bounds(self, value):
        assert check_fraction("f", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_fraction("f", value)

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_exclusive_rejects_bounds(self, value):
        with pytest.raises(ValueError):
            check_fraction("f", value, inclusive=False)


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range("x", 5, 0, 10) == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)


class TestCheckProbabilityVector:
    def test_normalises(self):
        out = check_probability_vector("p", [1, 1, 2])
        np.testing.assert_allclose(out.sum(), 1.0)
        np.testing.assert_allclose(out, [0.25, 0.25, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.5, -0.5, 1.0])

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [[0.5, 0.5]])
