"""Tests for the multi-seed robustness module."""

import pytest

from repro.core.robustness import CellStability, MetricSummary, seed_sweep


class TestSeedSweep:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            seed_sweep("Slips", "Mirai", seeds=())

    def test_summary_statistics(self):
        stability = seed_sweep("Slips", "Mirai", seeds=(0, 1), scale=0.05)
        assert isinstance(stability, CellStability)
        assert stability.seeds == (0, 1)
        assert 0.0 <= stability.accuracy.mean <= 1.0
        assert stability.accuracy.std >= 0.0

    def test_single_seed_zero_std(self):
        stability = seed_sweep("Slips", "Stratosphere", seeds=(0,),
                               scale=0.05)
        assert stability.f1.std == 0.0

    def test_cv_handles_zero_mean(self):
        summary = MetricSummary(0.0, 0.0)
        cell = CellStability("Slips", "UNSW-NB15", (0,), summary, summary,
                             summary, summary)
        assert cell.f1_coefficient_of_variation == 0.0
